//! End-to-end integration: calibrate a multi-voltage plan, screen dies
//! with injected defects, and verify detection and classification —
//! the complete flow the paper proposes, exercised across every crate
//! in the workspace (simulator → cells → TSVs → ring → ΔT → verdicts).

use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::{Die, MultiVoltagePlan, TestBench, Verdict};

fn plan() -> MultiVoltagePlan {
    MultiVoltagePlan::calibrate(
        TestBench::fast(2),
        &[1.1, 0.9],
        ProcessSpread::paper(),
        31,
        8,
        25e-12,
    )
    .expect("calibration succeeds")
}

#[test]
fn clean_dies_pass_at_all_voltages() {
    let plan = plan();
    for seed in [100, 101, 102] {
        let die = Die::new(ProcessSpread::paper(), seed);
        let r = plan
            .screen(&[TsvFault::None, TsvFault::None], 0, &die)
            .unwrap();
        assert_eq!(r.verdict, Verdict::Pass, "die {seed}: {r:?}");
        assert_eq!(r.per_voltage.len(), 2);
    }
}

#[test]
fn strong_open_is_detected_and_classified() {
    let plan = plan();
    let die = Die::new(ProcessSpread::paper(), 200);
    let faults = [
        TsvFault::ResistiveOpen {
            x: 0.3,
            r: Ohms(20e3),
        },
        TsvFault::None,
    ];
    let r = plan.screen(&faults, 0, &die).unwrap();
    assert_eq!(r.verdict, Verdict::ResistiveOpen, "{r:?}");
}

#[test]
fn leakage_is_detected_and_classified() {
    let plan = plan();
    let die = Die::new(ProcessSpread::paper(), 300);
    let faults = [TsvFault::Leakage { r: Ohms(2.5e3) }, TsvFault::None];
    let r = plan.screen(&faults, 0, &die).unwrap();
    assert!(
        matches!(r.verdict, Verdict::Leakage | Verdict::StuckAt0),
        "{r:?}"
    );
}

#[test]
fn dead_short_reports_stuck() {
    let plan = plan();
    let die = Die::new(ProcessSpread::paper(), 400);
    let faults = [TsvFault::Leakage { r: Ohms(200.0) }, TsvFault::None];
    let r = plan.screen(&faults, 0, &die).unwrap();
    assert_eq!(r.verdict, Verdict::StuckAt0, "{r:?}");
}

#[test]
fn fault_on_non_tested_segment_is_invisible() {
    // The bypass isolation: a defect in segment 1 must not fail segment 0.
    let plan = plan();
    let die = Die::new(ProcessSpread::paper(), 500);
    let faults = [TsvFault::None, TsvFault::Leakage { r: Ohms(2e3) }];
    let r = plan.screen(&faults, 0, &die).unwrap();
    assert_eq!(r.verdict, Verdict::Pass, "{r:?}");
    // …and screening segment 1 itself does catch it.
    let r1 = plan.screen(&faults, 1, &die).unwrap();
    assert!(r1.verdict.is_fault(), "{r1:?}");
}

/// The multi-voltage value proposition: a leak sized to sit just above
/// the low-voltage stop threshold is blatant at 0.9 V (huge ΔT or stuck)
/// even when the nominal-voltage measurement alone would look mild.
#[test]
fn low_voltage_amplifies_weak_leakage() {
    let bench = TestBench::fast(2);
    let die = Die::nominal();
    let faults = [TsvFault::Leakage { r: Ohms(4e3) }, TsvFault::None];
    let ff = [TsvFault::None, TsvFault::None];

    let shift_at = |vdd: f64| -> f64 {
        let dt_ff = bench
            .measure_delta_t(vdd, &ff, &[0], &die)
            .unwrap()
            .delta()
            .unwrap();
        match bench
            .measure_delta_t(vdd, &faults, &[0], &die)
            .unwrap()
            .delta()
        {
            Some(dt) => dt - dt_ff,
            None => f64::INFINITY, // stuck: unmissable
        }
    };
    let shift_nominal = shift_at(1.1);
    let shift_low = shift_at(0.85);
    assert!(
        shift_low > 2.0 * shift_nominal,
        "low-voltage shift {shift_low} should dwarf nominal {shift_nominal}"
    );
}
