//! Cross-crate consistency checks: the same physical facts must agree
//! whether computed through the high-level API or the underlying crates.

use rotsv::dft::DftAreaModel;
use rotsv::mosfet::model::Nominal;
use rotsv::num::units::Ohms;
use rotsv::ro::{MeasureOpts, RingOscillator, RoConfig};
use rotsv::stdcell::{cell_area, CellKind};
use rotsv::tsv::{TsvFault, TsvModel};
use rotsv::{Die, TestBench};

/// The area model's default cell areas are the standard-cell library's.
#[test]
fn area_model_matches_cell_library() {
    let model = DftAreaModel::default();
    assert_eq!(model.mux_area.value(), cell_area(CellKind::Mux2X1).value());
    assert_eq!(model.inv_area.value(), cell_area(CellKind::InvX1).value());
}

/// TestBench::measure_delta_t is exactly the two RingOscillator runs.
#[test]
fn bench_delta_matches_manual_two_run_procedure() {
    let bench = TestBench::fast(2);
    let die = Die::nominal();
    let faults = [
        TsvFault::ResistiveOpen {
            x: 0.5,
            r: Ohms(2e3),
        },
        TsvFault::None,
    ];
    let m = bench.measure_delta_t(1.1, &faults, &[0], &die).unwrap();

    let opts = bench.opts_for(1.1);
    let config = RoConfig {
        n_segments: 2,
        vdd: 1.1,
        tech: bench.tech,
        tsv_model: bench.tsv_model,
        faults: faults.to_vec(),
        enabled: vec![false, false],
    };
    let t1 = RingOscillator::build(&config.clone().enable_only(&[0]), &mut die.variation())
        .measure(&opts)
        .unwrap();
    let t2 = RingOscillator::build(&config, &mut die.variation())
        .measure(&opts)
        .unwrap();
    assert_eq!(m.t1, t1);
    assert_eq!(m.t2, t2);
}

/// The lumped and distributed TSV models agree inside the full ring, not
/// just on a bare charge curve (the paper's §III-A claim, end to end).
#[test]
fn ring_period_agrees_between_tsv_models() {
    let period_with = |model: TsvModel| -> f64 {
        let config = RoConfig {
            tsv_model: model,
            ..RoConfig::new(2, 1.1).enable_only(&[0])
        };
        RingOscillator::build(&config, &mut Nominal)
            .measure(&MeasureOpts::fast())
            .unwrap()
            .period()
            .expect("oscillates")
    };
    let lumped = period_with(TsvModel::Lumped);
    let distributed = period_with(TsvModel::Distributed(10));
    assert!(
        (lumped - distributed).abs() < 1e-12,
        "lumped {lumped} vs distributed {distributed}"
    );
}

/// Identical dies are electrically identical across independent builds:
/// the foundation of the two-run subtraction.
#[test]
fn die_identity_survives_rebuilds() {
    let bench = TestBench::fast(2);
    let die = Die::new(rotsv::variation::ProcessSpread::paper(), 77);
    let faults = [TsvFault::None, TsvFault::None];
    let a = bench.measure_delta_t(1.1, &faults, &[0], &die).unwrap();
    let b = bench.measure_delta_t(1.1, &faults, &[0], &die).unwrap();
    assert_eq!(a, b);
    // A different die really is different.
    let other = Die::new(rotsv::variation::ProcessSpread::paper(), 78);
    let c = bench.measure_delta_t(1.1, &faults, &[0], &other).unwrap();
    assert_ne!(a.delta(), c.delta());
}

/// ΔT of the same die is (approximately) additive: enabling two healthy
/// TSVs costs about twice the delay of one. Uses the nominal die so the
/// comparison is exact up to simulation noise.
#[test]
fn delta_t_is_roughly_additive_in_enabled_segments() {
    let bench = TestBench::fast(2);
    let die = Die::nominal();
    let faults = [TsvFault::None, TsvFault::None];
    let one = bench
        .measure_delta_t(1.1, &faults, &[0], &die)
        .unwrap()
        .delta()
        .unwrap();
    let two = bench
        .measure_delta_t(1.1, &faults, &[0, 1], &die)
        .unwrap()
        .delta()
        .unwrap();
    let ratio = two / one;
    assert!(
        (1.7..2.3).contains(&ratio),
        "two segments should cost ≈2x one: ratio {ratio}"
    );
}
