//! Cross-check of the lockstep batched Monte-Carlo engine against the
//! scalar reference. The batched engine shares one time grid across all
//! lanes of a batch (dt = the worst active lane's LTE proposal), so it
//! is not bit-identical to per-die scalar transients — but every
//! per-fault-point ΔT must agree to well under 0.5 %, stuck dies must
//! classify identically, and the whole population must cost
//! O(topologies) symbolic analyses rather than one per transient.

use rotsv::mc::delta_t_population_with_engine;
use rotsv::num::units::Ohms;
use rotsv::ro::{MeasureOpts, OscillationOutcome, RingOscillator, RoConfig};
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::{McEngine, TestBench};

const SAMPLES: usize = 4;
const LANES: usize = 4;

fn population(faults: &[TsvFault], engine: McEngine) -> rotsv::McDeltaT {
    let bench = TestBench::fast(1);
    delta_t_population_with_engine(
        &bench,
        1.1,
        faults,
        &[0],
        ProcessSpread::paper(),
        23,
        SAMPLES,
        engine,
    )
    .unwrap()
}

fn assert_populations_agree(label: &str, faults: &[TsvFault]) {
    let scalar = population(faults, McEngine::Scalar);
    let batched = population(faults, McEngine::Batched { lanes: LANES });
    assert_eq!(
        scalar.deltas.len(),
        batched.deltas.len(),
        "{label}: population sizes differ"
    );
    assert_eq!(scalar.stuck_count, batched.stuck_count, "{label}: stuck");
    assert_eq!(
        scalar.reference_failures, batched.reference_failures,
        "{label}: reference failures"
    );
    for (i, (s, b)) in scalar.deltas.iter().zip(&batched.deltas).enumerate() {
        let rel = (s - b).abs() / s.abs();
        assert!(
            rel < 5e-3,
            "{label} sample {i}: scalar ΔT {s} vs batched {b} (rel {rel})"
        );
    }
}

#[test]
fn fault_free_population_agrees() {
    assert_populations_agree("fault-free", &[TsvFault::None]);
}

#[test]
fn resistive_open_population_agrees() {
    assert_populations_agree(
        "open-3k",
        &[TsvFault::ResistiveOpen {
            x: 0.5,
            r: Ohms(3e3),
        }],
    );
}

#[test]
fn leakage_population_agrees() {
    assert_populations_agree("leak-3k", &[TsvFault::Leakage { r: Ohms(3e3) }]);
}

/// Strong leakage sticks every die: the batched engine must classify
/// them exactly as the scalar engine does (stuck, not errors, not
/// deltas) even though no lane ever reaches its crossing count.
#[test]
fn stuck_population_classifies_identically() {
    let faults = [TsvFault::Leakage { r: Ohms(300.0) }];
    let scalar = population(&faults, McEngine::Scalar);
    let batched = population(&faults, McEngine::Batched { lanes: LANES });
    assert_eq!(scalar.stuck_count, SAMPLES);
    assert_eq!(batched.stuck_count, SAMPLES);
    assert!(batched.deltas.is_empty());
    assert_eq!(batched.reference_failures, 0);
}

/// A mixed batch where one lane sticks (strong leakage) while the other
/// oscillates and retires early: the stuck lane must not disturb the
/// finished lane's period, and both outcomes must match their scalar
/// runs. Lanes differ only in the leakage resistor's *value*, so they
/// are topology-identical and batchable.
#[test]
fn stuck_lane_retirement_leaves_other_lanes_intact() {
    use rotsv::mosfet::model::Nominal;

    let opts = MeasureOpts::fast();
    let configs: Vec<RoConfig> = [300.0, 3000.0]
        .iter()
        .map(|&r| {
            RoConfig::new(1, 1.1)
                .enable_only(&[0])
                .with_fault(0, TsvFault::Leakage { r: Ohms(r) })
        })
        .collect();
    let ros: Vec<RingOscillator> = configs
        .iter()
        .map(|c| RingOscillator::build(c, &mut Nominal))
        .collect();
    let refs: Vec<&RingOscillator> = ros.iter().collect();
    let batched = RingOscillator::measure_batch_with_stats(&refs, &opts).unwrap();

    // Lane 0: strong leakage — stuck, exactly as the scalar run says.
    let (stuck_outcome, _) = &batched[0];
    assert!(
        !stuck_outcome.is_oscillating(),
        "300 Ω leakage lane must stick"
    );
    assert!(!ros[0].measure(&opts).unwrap().is_oscillating());

    // Lane 1: mild leakage — oscillates; period within 0.5 % of scalar.
    let (osc_outcome, _) = &batched[1];
    let t_batched = match osc_outcome {
        OscillationOutcome::Oscillating(m) => m.mean,
        OscillationOutcome::Stuck { .. } => panic!("3 kΩ leakage lane must oscillate"),
    };
    let t_scalar = ros[1].measure(&opts).unwrap().period().unwrap();
    let rel = (t_batched - t_scalar).abs() / t_scalar;
    assert!(
        rel < 5e-3,
        "batched period {t_batched} vs scalar {t_scalar} (rel {rel})"
    );
}

/// The cost contract of the batched engine: one symbolic analysis per
/// topology for the whole population (the population-wide cache spans
/// batches and both runs of each batch), not one per transient. The
/// scalar engine performs one per *measurement* (its cache spans the
/// two runs of one die), i.e. O(samples).
#[test]
fn symbolic_analyses_are_per_topology_not_per_sample() {
    let faults = [TsvFault::None];
    let batched = population(&faults, McEngine::Batched { lanes: 2 });
    assert_eq!(
        batched.stats.symbolic_analyses, 1,
        "population-wide cache must reduce analyses to O(topologies)"
    );
    let scalar = population(&faults, McEngine::Scalar);
    assert_eq!(
        scalar.stats.symbolic_analyses, SAMPLES as u64,
        "scalar path shares analyses only within a measurement"
    );
}

/// Diagnostic (run with `-- --ignored probe_spans --nocapture`): span
/// tree of a batched k=4 population next to the scalar one, for finding
/// where batch time goes without an external profiler.
#[test]
#[ignore]
fn probe_spans() {
    rotsv_obs::set_tracing(true);
    let faults = [TsvFault::None];
    let _b4 = population(&faults, McEngine::Batched { lanes: 4 });
    eprintln!("{}", rotsv_obs::span_report().render_text());
    rotsv_obs::reset();
    let _s = population(&faults, McEngine::Scalar);
    eprintln!("{}", rotsv_obs::span_report().render_text());
    rotsv_obs::set_tracing(false);
}

/// Diagnostic (run with `-- --ignored probe_counters --nocapture`):
/// work counters of scalar vs batched runs — the lockstep step/Newton
/// inflation numbers quoted in PERFORMANCE.md come from here.
#[test]
#[ignore]
fn probe_counters() {
    let faults = [TsvFault::None];
    let scalar = population(&faults, McEngine::Scalar);
    let b1 = population(&faults, McEngine::Batched { lanes: 1 });
    let b4 = population(&faults, McEngine::Batched { lanes: 4 });
    for (name, p) in [
        ("scalar", &scalar),
        ("batched k=1", &b1),
        ("batched k=4", &b4),
    ] {
        let s = &p.stats;
        eprintln!(
            "{name}: steps {}+{}r newton {} factor {} solves {} analyses {} wall {:.3}",
            s.steps_accepted,
            s.steps_rejected,
            s.newton_iterations,
            s.factorizations,
            s.solves,
            s.symbolic_analyses,
            s.wall_seconds
        );
    }
}
