//! Cross-check of the batched Monte-Carlo engine against the scalar
//! reference. The v2 engine steps every lane asynchronously by the
//! scalar policies, so per-die results are bit-identical across lane
//! counts, refill scheduling, and the chunked cross-check engine; the
//! remaining scalar gap (shared first-iterate factorization within a
//! batch, identical assembly in a different association order) stays
//! well under 0.5 % per ΔT. Stuck dies must classify identically, and
//! the whole population must cost O(topologies) symbolic analyses
//! rather than one per transient.

use rotsv::mc::delta_t_population_with_engine;
use rotsv::num::units::Ohms;
use rotsv::ro::{MeasureOpts, OscillationOutcome, RingOscillator, RoConfig};
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::{McEngine, TestBench};

const SAMPLES: usize = 4;
const LANES: usize = 4;

fn population(faults: &[TsvFault], engine: McEngine) -> rotsv::McDeltaT {
    let bench = TestBench::fast(1);
    delta_t_population_with_engine(
        &bench,
        1.1,
        faults,
        &[0],
        ProcessSpread::paper(),
        23,
        SAMPLES,
        engine,
    )
    .unwrap()
}

fn assert_populations_agree(label: &str, faults: &[TsvFault]) {
    let scalar = population(faults, McEngine::Scalar);
    let batched = population(faults, McEngine::Batched { lanes: LANES });
    assert_eq!(
        scalar.deltas.len(),
        batched.deltas.len(),
        "{label}: population sizes differ"
    );
    assert_eq!(scalar.stuck_count, batched.stuck_count, "{label}: stuck");
    assert_eq!(
        scalar.reference_failures, batched.reference_failures,
        "{label}: reference failures"
    );
    for (i, (s, b)) in scalar.deltas.iter().zip(&batched.deltas).enumerate() {
        let rel = (s - b).abs() / s.abs();
        assert!(
            rel < 5e-3,
            "{label} sample {i}: scalar ΔT {s} vs batched {b} (rel {rel})"
        );
    }
}

#[test]
fn fault_free_population_agrees() {
    assert_populations_agree("fault-free", &[TsvFault::None]);
}

#[test]
fn resistive_open_population_agrees() {
    assert_populations_agree(
        "open-3k",
        &[TsvFault::ResistiveOpen {
            x: 0.5,
            r: Ohms(3e3),
        }],
    );
}

#[test]
fn leakage_population_agrees() {
    assert_populations_agree("leak-3k", &[TsvFault::Leakage { r: Ohms(3e3) }]);
}

/// Strong leakage sticks every die: the batched engine must classify
/// them exactly as the scalar engine does (stuck, not errors, not
/// deltas) even though no lane ever reaches its crossing count.
#[test]
fn stuck_population_classifies_identically() {
    let faults = [TsvFault::Leakage { r: Ohms(300.0) }];
    let scalar = population(&faults, McEngine::Scalar);
    let batched = population(&faults, McEngine::Batched { lanes: LANES });
    assert_eq!(scalar.stuck_count, SAMPLES);
    assert_eq!(batched.stuck_count, SAMPLES);
    assert!(batched.deltas.is_empty());
    assert_eq!(batched.reference_failures, 0);
}

/// A mixed batch where one lane sticks (strong leakage) while the other
/// oscillates and retires early: the stuck lane must not disturb the
/// finished lane's period, and both outcomes must match their scalar
/// runs. Lanes differ only in the leakage resistor's *value*, so they
/// are topology-identical and batchable.
#[test]
fn stuck_lane_retirement_leaves_other_lanes_intact() {
    use rotsv::mosfet::model::Nominal;

    let opts = MeasureOpts::fast();
    let configs: Vec<RoConfig> = [300.0, 3000.0]
        .iter()
        .map(|&r| {
            RoConfig::new(1, 1.1)
                .enable_only(&[0])
                .with_fault(0, TsvFault::Leakage { r: Ohms(r) })
        })
        .collect();
    let ros: Vec<RingOscillator> = configs
        .iter()
        .map(|c| RingOscillator::build(c, &mut Nominal))
        .collect();
    let refs: Vec<&RingOscillator> = ros.iter().collect();
    let batched = RingOscillator::measure_batch_with_stats(&refs, &opts).unwrap();

    // Lane 0: strong leakage — stuck, exactly as the scalar run says.
    let (stuck_outcome, _) = &batched[0];
    assert!(
        !stuck_outcome.is_oscillating(),
        "300 Ω leakage lane must stick"
    );
    assert!(!ros[0].measure(&opts).unwrap().is_oscillating());

    // Lane 1: mild leakage — oscillates; period within 0.5 % of scalar.
    let (osc_outcome, _) = &batched[1];
    let t_batched = match osc_outcome {
        OscillationOutcome::Oscillating(m) => m.mean,
        OscillationOutcome::Stuck { .. } => panic!("3 kΩ leakage lane must oscillate"),
    };
    let t_scalar = ros[1].measure(&opts).unwrap().period().unwrap();
    let rel = (t_batched - t_scalar).abs() / t_scalar;
    assert!(
        rel < 5e-3,
        "batched period {t_batched} vs scalar {t_scalar} (rel {rel})"
    );
}

/// The refill scheduler's determinism contract, exercised at the ring
/// level with a *stuck* lane in the mix: streaming [300 Ω (stuck),
/// 3 kΩ, 5 kΩ] through two lanes makes the 3 kΩ ring retire early and
/// the 5 kΩ ring seat into its lane mid-transient, while the stuck ring
/// grinds to its time budget in the other lane. Every ring's outcome —
/// period bits included — must equal its solo (k = 1) run.
#[test]
fn refill_with_stuck_lane_is_bit_identical_to_solo_runs() {
    use rotsv::mosfet::model::Nominal;

    let opts = MeasureOpts::fast();
    let configs: Vec<RoConfig> = [300.0, 3000.0, 5000.0]
        .iter()
        .map(|&r| {
            RoConfig::new(1, 1.1)
                .enable_only(&[0])
                .with_fault(0, TsvFault::Leakage { r: Ohms(r) })
        })
        .collect();
    let ros: Vec<RingOscillator> = configs
        .iter()
        .map(|c| RingOscillator::build(c, &mut Nominal))
        .collect();
    let refs: Vec<&RingOscillator> = ros.iter().collect();
    let queued = RingOscillator::measure_queue_with_stats(&refs, 2, &opts).unwrap();
    assert!(
        !queued[0].0.is_oscillating(),
        "300 Ω leakage ring must stick"
    );
    assert!(queued[1].0.is_oscillating(), "3 kΩ leakage ring oscillates");
    assert!(queued[2].0.is_oscillating(), "5 kΩ leakage ring oscillates");
    for (i, (ro, (outcome, _))) in ros.iter().zip(&queued).enumerate() {
        // Bit-identity is an engine property: the solo reference is the
        // same engine at k = 1 (the scalar engine assembles in a
        // different association order and agrees only to ~1e-15).
        let solo = &RingOscillator::measure_batch_with_stats(&[ro], &opts).unwrap()[0].0;
        assert_eq!(
            solo, outcome,
            "ring {i}: queued outcome must be bit-identical to its solo k=1 run"
        );
        let scalar = ro.measure(&opts).unwrap();
        match (&scalar, outcome) {
            (OscillationOutcome::Oscillating(s), OscillationOutcome::Oscillating(q)) => {
                let rel = (s.mean - q.mean).abs() / s.mean;
                assert!(
                    rel < 5e-3,
                    "ring {i}: scalar {} vs queued {} ({rel})",
                    s.mean,
                    q.mean
                );
            }
            (a, b) => assert_eq!(
                a.is_oscillating(),
                b.is_oscillating(),
                "ring {i}: stuck classification must match the scalar run"
            ),
        }
    }
}

/// `--engine auto` resolves to the refill queue for figure-sized
/// populations; its results must be exactly the explicit batched run
/// and agree with the scalar reference like any batched run.
#[test]
fn auto_engine_agrees_with_scalar_and_matches_batched() {
    let faults = [TsvFault::None];
    let auto = population(&faults, McEngine::Auto);
    let batched = population(&faults, McEngine::Batched { lanes: SAMPLES });
    assert_eq!(auto, batched, "auto must resolve to the refill queue");
    let scalar = population(&faults, McEngine::Scalar);
    assert_eq!(scalar.deltas.len(), auto.deltas.len());
    for (i, (s, a)) in scalar.deltas.iter().zip(&auto.deltas).enumerate() {
        let rel = (s - a).abs() / s.abs();
        assert!(rel < 5e-3, "sample {i}: scalar {s} vs auto {a} ({rel})");
    }
}

/// The cost contract of the batched engine: one symbolic analysis per
/// topology for the whole population (the population-wide cache spans
/// batches and both runs of each batch), not one per transient. The
/// scalar engine performs one per *measurement* (its cache spans the
/// two runs of one die), i.e. O(samples).
#[test]
fn symbolic_analyses_are_per_topology_not_per_sample() {
    let faults = [TsvFault::None];
    let batched = population(&faults, McEngine::Batched { lanes: 2 });
    assert_eq!(
        batched.stats.symbolic_analyses, 1,
        "population-wide cache must reduce analyses to O(topologies)"
    );
    let scalar = population(&faults, McEngine::Scalar);
    assert_eq!(
        scalar.stats.symbolic_analyses, SAMPLES as u64,
        "scalar path shares analyses only within a measurement"
    );
}

/// Diagnostic (run with `-- --ignored probe_spans --nocapture`): span
/// tree of a batched k=4 population next to the scalar one, for finding
/// where batch time goes without an external profiler.
#[test]
#[ignore]
fn probe_spans() {
    rotsv_obs::set_tracing(true);
    let faults = [TsvFault::None];
    let _b4 = population(&faults, McEngine::Batched { lanes: 4 });
    eprintln!("{}", rotsv_obs::span_report().render_text());
    rotsv_obs::reset();
    let _s = population(&faults, McEngine::Scalar);
    eprintln!("{}", rotsv_obs::span_report().render_text());
    rotsv_obs::set_tracing(false);
}

/// Diagnostic (run with `-- --ignored probe_counters --nocapture`):
/// work counters of scalar vs batched runs — the lockstep step/Newton
/// inflation numbers quoted in PERFORMANCE.md come from here.
#[test]
#[ignore]
fn probe_counters() {
    let faults = [TsvFault::None];
    let scalar = population(&faults, McEngine::Scalar);
    let b1 = population(&faults, McEngine::Batched { lanes: 1 });
    let b4 = population(&faults, McEngine::Batched { lanes: 4 });
    for (name, p) in [
        ("scalar", &scalar),
        ("batched k=1", &b1),
        ("batched k=4", &b4),
    ] {
        let s = &p.stats;
        eprintln!(
            "{name}: steps {}+{}r newton {} factor {} solves {} analyses {} wall {:.3}",
            s.steps_accepted,
            s.steps_rejected,
            s.newton_iterations,
            s.factorizations,
            s.solves,
            s.symbolic_analyses,
            s.wall_seconds
        );
    }
}
