//! Wide-lane (K = 32/64) bit-identity tests for the batched engine.
//!
//! The batched engine's contract is that per-die results are a pure
//! function of the die, independent of lane count, scheduling, and the
//! SIMD dispatch level. These tests pin that contract at the new wide
//! lane widths:
//!
//! * the `K = 32` and `K = 64` monomorphized arms agree bit-for-bit
//!   (`f64::to_bits`) with the dyn-K fallback (exercised via lane
//!   counts like 31/63 that are outside the const-K set) and with the
//!   chunked scheduler,
//! * a population larger than the lane count with hard-stuck dies in
//!   the mix forces mid-transient lane retirement and refill, i.e. the
//!   masked-refactor reseat path at `K = 32`,
//! * forcing the dispatch level to Scalar / AVX2 / AVX-512 (clamped to
//!   what the host supports) does not change a single bit.
//!
//! Level flips in the ISA test are safe to run concurrently with the
//! other tests in this binary precisely *because* of the bit-identity
//! contract: whichever level a racing population observes, it must
//! produce the same bits.

use proptest::prelude::*;
use rotsv::mc::delta_t_fault_sweep_with_engine;
use rotsv::num::simd::{self, Level};
use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::{McDeltaT, McEngine, TestBench};

/// Leakage ladder cycled over the population: two hard-stuck rungs
/// (300/500 Ω) scattered among oscillating ones so that lanes retire
/// early and the queue reseats mid-transient.
const LADDER: [f64; 8] = [300.0, 1e5, 1e6, 500.0, 1e7, 1e8, 1e9, 5e6];

fn ladder_population(dies: usize) -> Vec<Vec<TsvFault>> {
    (0..dies)
        .map(|i| {
            vec![TsvFault::Leakage {
                r: Ohms(LADDER[i % LADDER.len()]),
            }]
        })
        .collect()
}

fn sweep(per_die_faults: &[Vec<TsvFault>], seed: u64, engine: McEngine) -> McDeltaT {
    let bench = TestBench::fast(1);
    delta_t_fault_sweep_with_engine(
        &bench,
        1.1,
        per_die_faults,
        &[0],
        ProcessSpread::paper(),
        seed,
        engine,
    )
    .unwrap()
}

/// `f64::to_bits` equality on the whole population, not `==` (which
/// would accept -0.0 vs +0.0).
fn assert_bits_identical(label: &str, a: &McDeltaT, b: &McDeltaT) {
    assert_eq!(a.stuck_count, b.stuck_count, "{label}: stuck_count");
    assert_eq!(
        a.reference_failures, b.reference_failures,
        "{label}: reference_failures"
    );
    assert_eq!(a.deltas.len(), b.deltas.len(), "{label}: population size");
    for (i, (x, y)) in a.deltas.iter().zip(&b.deltas).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: die {i} differs ({x:e} vs {y:e})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// K = 32 const arm vs the chunked scheduler vs the dyn-K fallback
    /// (31 lanes is outside the monomorphized set {1..8, 16, 32, 64}).
    /// The population (36 dies) exceeds the lane count and contains
    /// stuck rungs, so the queued runs exercise lane retirement and the
    /// masked-refactor reseat mid-transient at K = 32.
    #[test]
    fn k32_arms_and_dyn_fallback_are_bit_identical(seed in 0u64..1 << 32) {
        let faults = ladder_population(36);
        let queued = sweep(&faults, seed, McEngine::Batched { lanes: 32 });
        let chunked = sweep(&faults, seed, McEngine::BatchedChunked { lanes: 32 });
        let dyn_k = sweep(&faults, seed, McEngine::Batched { lanes: 31 });
        prop_assert!(queued.stuck_count >= 2, "stuck rungs must retire lanes");
        assert_bits_identical("k32 queued vs chunked", &queued, &chunked);
        assert_bits_identical("k32 queued vs dyn-31", &queued, &dyn_k);
    }
}

/// K = 64 const arm vs the chunked scheduler and the dyn-K fallback at
/// 63 lanes (one refill step).
#[test]
fn k64_arm_matches_chunked_and_dyn_fallback() {
    let faults = ladder_population(64);
    let queued = sweep(&faults, 23, McEngine::Batched { lanes: 64 });
    let chunked = sweep(&faults, 23, McEngine::BatchedChunked { lanes: 64 });
    let dyn_k = sweep(&faults, 23, McEngine::Batched { lanes: 63 });
    assert!(queued.stuck_count >= 2, "stuck rungs must be detected");
    assert_bits_identical("k64 queued vs chunked", &queued, &chunked);
    assert_bits_identical("k64 queued vs dyn-63", &queued, &dyn_k);
}

/// The same K = 32 population produces identical bits at every dispatch
/// level the host supports. `set_level` clamps to `detected()`, so on a
/// scalar-only host all three runs use the portable path and the test
/// degenerates to reproducibility — still a valid (if weaker) check.
#[test]
fn wide_lane_results_are_isa_invariant() {
    let faults = ladder_population(36);
    let run_at = |want: Level| {
        let got = simd::set_level(want);
        assert!(got <= simd::detected());
        sweep(&faults, 23, McEngine::Batched { lanes: 32 })
    };
    let scalar = run_at(Level::Scalar);
    let avx2 = run_at(Level::Avx2);
    let avx512 = run_at(Level::Avx512);
    simd::set_level(simd::detected());
    assert_bits_identical("scalar vs avx2", &scalar, &avx2);
    assert_bits_identical("scalar vs avx512", &scalar, &avx512);
}
