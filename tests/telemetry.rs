//! End-to-end telemetry acceptance: one batched Monte-Carlo population
//! with tracing, metrics and the event ring all enabled must (a) shed
//! zero events under the default agreement configuration, (b) render a
//! Chrome trace that parses back with `mc_sample` lane slices and
//! counter tracks, and (c) leave the per-stage `lu.*` histograms behind
//! for the run manifest.
//!
//! This lives in its own test binary deliberately: the obs switches,
//! metrics registry and event ring are process-global, so the test must
//! not share a process with tests that reset them concurrently.

use rotsv::mc::delta_t_population_with_engine;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::{McEngine, TestBench};
use rotsv_obs::Json;

const SAMPLES: usize = 4;
const LANES: usize = 4;

#[test]
fn batched_population_telemetry_round_trips() {
    rotsv_obs::set_tracing(true);
    rotsv_obs::set_metrics(true);
    rotsv_obs::set_events(true);
    rotsv_obs::reset();

    {
        let _root = rotsv_obs::SpanGuard::enter("telemetry");
        let bench = TestBench::fast(1);
        delta_t_population_with_engine(
            &bench,
            1.1,
            &[TsvFault::None],
            &[0],
            ProcessSpread::paper(),
            23,
            SAMPLES,
            McEngine::Batched { lanes: LANES },
        )
        .expect("population succeeds");
    }

    // The agreement suite's default configuration must not shed a
    // single event — `mc.ring_dropped_events` is the first-class
    // witness of that contract.
    assert_eq!(
        rotsv_obs::event_ring().dropped(),
        0,
        "event ring overflowed"
    );
    assert_eq!(
        rotsv_obs::counter("mc.ring_dropped_events").get(),
        0,
        "mc.ring_dropped_events must stay zero in the default configuration"
    );

    // Staged-solver attribution: every lu.* stage histogram observed at
    // least once (this is what `manifest_<id>.json` serializes).
    for stage in [
        "lu.btf",
        "lu.order",
        "lu.scale",
        "lu.symbolic",
        "lu.numeric",
    ] {
        assert!(
            rotsv_obs::histogram(stage).summary().count > 0,
            "{stage} histogram is empty after a staged-solver run"
        );
    }

    let doc = rotsv_obs::render_chrome_trace();
    rotsv_obs::set_tracing(false);
    rotsv_obs::set_metrics(false);
    rotsv_obs::set_events(false);

    // Acceptance is parse-back, not string inspection: the written
    // document must round-trip through the JSON parser.
    let parsed = rotsv_obs::json::parse(&doc.render_pretty()).expect("trace parses back");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let named = |name: &str| -> Vec<&Json> {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .collect()
    };

    // Every seated die renders as a complete-event lane slice; the ΔT
    // measurement runs each die through at least one transient, so
    // there are at least SAMPLES of them, all retired (none closed as
    // unfinished) and each carrying step/Newton attribution.
    let samples: Vec<&Json> = named("mc_sample")
        .into_iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert!(
        samples.len() >= SAMPLES,
        "expected at least {SAMPLES} mc_sample slices, got {}",
        samples.len()
    );
    assert!(
        samples
            .iter()
            .all(|s| s.get("args").and_then(|a| a.get("unfinished")).is_none()),
        "every lane interval must retire cleanly"
    );
    assert!(
        samples.iter().all(|s| {
            s.get("args")
                .and_then(|a| a.get("steps"))
                .and_then(Json::as_f64)
                .is_some_and(|v| v >= 1.0)
        }),
        "every lane slice must attribute at least one accepted step"
    );

    // Counter tracks: per-lane 0/1 occupancy and the engine-sampled
    // population occupancy.
    assert!(
        !named("lane0 busy").is_empty(),
        "missing per-lane busy counter track"
    );
    assert!(
        !named("lanes busy").is_empty(),
        "missing lanes-busy counter track"
    );

    // The mirrored shallow span renders on the spans process.
    assert_eq!(named("telemetry").len(), 1, "root span slice");

    assert_eq!(
        parsed
            .get("otherData")
            .and_then(|o| o.get("ring_dropped"))
            .and_then(Json::as_f64),
        Some(0.0),
        "trace metadata must agree the ring never overflowed"
    );
}
