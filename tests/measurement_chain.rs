//! Analog-to-digital chain: the period extracted from the transistor-level
//! ring feeds the cycle-accurate counter/LFSR models — verifying that the
//! on-chip measurement logic can actually resolve the ΔT signatures the
//! analog experiments rely on.

use rotsv::dft::counter::GatedCounter;
use rotsv::dft::lfsr::Lfsr;
use rotsv::dft::measure::{max_error, required_bits, required_window};
use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

/// Measure two analog periods (fault-free and open), then push both
/// through the gated counter and check the *digital* estimates still
/// separate the fault.
#[test]
fn counter_resolves_the_open_signature() {
    let bench = TestBench::fast(2);
    let die = Die::nominal();
    let ff = bench
        .measure_delta_t(1.1, &[TsvFault::None; 2], &[0], &die)
        .unwrap();
    let open_faults = [
        TsvFault::ResistiveOpen {
            x: 0.5,
            r: Ohms(3e3),
        },
        TsvFault::None,
    ];
    let open = bench
        .measure_delta_t(1.1, &open_faults, &[0], &die)
        .unwrap();

    let t1_ff = ff.t1.period().unwrap();
    let t1_open = open.t1.period().unwrap();
    let signature = t1_ff - t1_open;
    assert!(signature > 10e-12, "open signature {signature}");

    // Size the window so quantization error is far below the signature.
    let window = required_window(t1_ff, signature / 10.0);
    let bits = required_bits(window, t1_open);
    let counter = GatedCounter::new(window, bits);

    // Worst case over phases for both periods.
    let worst = |period: f64| -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for k in 0..50 {
            let est = counter
                .measure(period, period * k as f64 / 50.0)
                .expect("oscillating");
            min = min.min(est);
            max = max.max(est);
        }
        (min, max)
    };
    let (_, ff_max_under) = (0.0, worst(t1_open).1);
    let (ff_min, _) = worst(t1_ff);
    assert!(
        ff_min > ff_max_under,
        "digital estimates must keep the fault-free and open periods apart: \
         ff_min {ff_min} vs open_max {ff_max_under}"
    );
    // And the error stays within the analytic bound.
    assert!(max_error(t1_ff, window) <= signature / 10.0 * 1.001);
}

/// The stuck ring produces a zero count — the digital side flags it
/// without any analog post-processing.
#[test]
fn stuck_ring_yields_zero_count() {
    let bench = TestBench::fast(2);
    let die = Die::nominal();
    let faults = [TsvFault::Leakage { r: Ohms(300.0) }, TsvFault::None];
    let m = bench.measure_delta_t(1.1, &faults, &[0], &die).unwrap();
    assert!(m.is_stuck());
    let counter = GatedCounter::new(5e-6, 12);
    // No oscillation -> no edges -> estimate_period(None).
    assert_eq!(counter.estimate_period(0), None);
}

/// LFSR signatures decode to the same counts the binary counter reports,
/// for counts derived from real simulated periods.
#[test]
fn lfsr_decodes_to_counter_counts() {
    let bench = TestBench::fast(2);
    let die = Die::nominal();
    let m = bench
        .measure_delta_t(1.1, &[TsvFault::None; 2], &[0], &die)
        .unwrap();
    let period = m.t1.period().unwrap();
    let window = 0.2e-6;
    let counter = GatedCounter::new(window, 12);
    let count = counter.count_edges(period, 0.0);
    assert!(count > 10, "window should span many cycles, got {count}");

    // Clock an LFSR the same number of times and decode its state.
    let mut lfsr = Lfsr::new(12);
    for _ in 0..count {
        lfsr.tick();
    }
    let table = lfsr.decode_table();
    assert_eq!(table[&lfsr.state()], count);
}
