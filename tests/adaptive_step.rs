//! Cross-check of the adaptive LTE step controller against the fixed
//! uniform grid on the Fig. 4 single-cell setup: one I/O cell segment
//! with its TSV in the loop. Adaptive stepping is the default engine, so
//! its ΔT must agree with the fixed-step reference to well under the
//! measurement resolution the paper relies on.

use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

/// Measures ΔT with both step controllers and returns
/// `(adaptive, fixed, accepted_adaptive, accepted_fixed)`.
fn both(faults: &[TsvFault]) -> (f64, f64, u64, u64) {
    let bench = TestBench::fast(1);
    let die = Die::nominal();
    let adaptive_opts = bench.opts_for(1.1);
    let fixed_opts = adaptive_opts.fixed_step();

    let a = bench
        .measure_delta_t_with(1.1, faults, &[0], &die, &adaptive_opts)
        .unwrap();
    let f = bench
        .measure_delta_t_with(1.1, faults, &[0], &die, &fixed_opts)
        .unwrap();
    (
        a.delta().expect("adaptive run oscillates"),
        f.delta().expect("fixed run oscillates"),
        a.stats.steps_accepted,
        f.stats.steps_accepted,
    )
}

#[test]
fn adaptive_delta_t_matches_fixed_within_half_percent() {
    let (d_adaptive, d_fixed, steps_adaptive, steps_fixed) = both(&[TsvFault::None]);
    let rel = (d_adaptive - d_fixed).abs() / d_fixed.abs();
    assert!(
        rel < 5e-3,
        "adaptive ΔT {d_adaptive} vs fixed {d_fixed}: rel err {rel}"
    );
    // The point of the controller: spend steps on the switching edges
    // only. It must not take *more* steps than the uniform grid.
    assert!(
        steps_adaptive < steps_fixed,
        "adaptive took {steps_adaptive} steps, fixed {steps_fixed}"
    );
}

#[test]
fn adaptive_delta_t_matches_fixed_under_fault() {
    // The Fig. 4 faulty case: 3 kΩ resistive open at mid-TSV.
    let fault = [TsvFault::ResistiveOpen {
        x: 0.5,
        r: Ohms(3e3),
    }];
    let (d_adaptive, d_fixed, _, _) = both(&fault);
    let rel = (d_adaptive - d_fixed).abs() / d_fixed.abs();
    assert!(
        rel < 5e-3,
        "adaptive ΔT {d_adaptive} vs fixed {d_fixed}: rel err {rel}"
    );
}
