#!/usr/bin/env bash
# Repo CI gate, split into stages so the workflow can run them as a
# job matrix:
#
#   ./ci.sh lint    # fmt, clippy, rustdoc — all warnings denied
#   ./ci.sh test    # release build + full test suite
#   ./ci.sh gate    # smokes, golden regression, bench + server gates
#   ./ci.sh portable # RUSTFLAGS-cleared build, scalar-dispatch agreement
#   ./ci.sh         # all four, in order
#
# Run from the repo root; exits nonzero on the first failure.
# Artifacts (run manifest, traces, golden diff, server smoke logs)
# land in target/ci-artifacts for the workflow to upload.
set -euo pipefail
cd "$(dirname "$0")"

# Toolchain pin: rust-toolchain.toml tracks "stable" (offline
# environments cannot resolve a versioned channel), so the exact
# version is single-sourced in ci/rust-pin; the workflow reads the
# same file. A literal pin anywhere else is a mismatch bug.
PINNED_RUST="$(tr -d '[:space:]' < ci/rust-pin)"
if grep -qE 'RUSTUP_TOOLCHAIN: *"?[0-9]' .github/workflows/ci.yml; then
  echo "ci.yml hard-codes a toolchain version; the pin lives in ci/rust-pin only" >&2
  exit 1
fi
have_rust="$(rustc --version | awk '{print $2}')"
if [ "$have_rust" != "$PINNED_RUST" ]; then
  if [ "${CI:-false}" = "true" ]; then
    echo "CI requires rustc $PINNED_RUST, found $have_rust" >&2
    exit 1
  fi
  echo "warning: rustc $have_rust differs from the pinned $PINNED_RUST" >&2
fi

stage="${1:-all}"
case "$stage" in
  lint|test|gate|portable|all) ;;
  *) echo "usage: ci.sh [lint|test|gate|portable|all]" >&2; exit 2 ;;
esac

artifacts="target/ci-artifacts"
mkdir -p "$artifacts"

# Runs a fast-fidelity experiments smoke, accepting exit 0 (all shape
# checks pass) and exit 3 (the harness completed but known
# fast-fidelity shape checks failed — an expected outcome at smoke
# settings). Any other exit code is a crash and fails CI.
run_smoke() {
  local rc=0
  "$@" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
    echo "smoke crashed (exit $rc, not a shape-check failure): $*" >&2
    exit "$rc"
  fi
}

lint_stage() {
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check

  echo "==> cargo clippy (warnings denied)"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "==> cargo doc (warnings denied)"
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
}

test_stage() {
  echo "==> cargo build --release"
  cargo build --release

  echo "==> cargo test"
  cargo test -q
}

# Kills a smoke daemon left behind by a failed check so neither a
# local run nor a CI job leaks the process.
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then
    kill "$server_pid" 2>/dev/null || true
  fi
}
trap cleanup EXIT

server_smoke() {
  echo "==> server smoke (daemon, two-topology job mix, metrics, drain)"
  rm -f "$artifacts/server.port"
  ./target/release/rotsv-server --lanes 4 --workers 2 \
    --metrics-out "$artifacts/server-metrics.prom" \
    --port-file "$artifacts/server.port" \
    > "$artifacts/server-log.txt" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$artifacts/server.port" ] && break
    sleep 0.1
  done
  if ! [ -s "$artifacts/server.port" ]; then
    echo "server never wrote its port file" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
  fi
  local addr
  addr="$(tr -d '[:space:]' < "$artifacts/server.port")"

  # Two jobs with different ring topologies: they land in different
  # engine groups, so this exercises cross-group scheduling, streamed
  # verdicts, and the per-job manifest trailer in one session.
  ./target/release/rotsv-client submit "$addr" \
    '{"type":"submit","id":1,"n_segments":1,"dies":2,"seed":7}' \
    '{"type":"submit","id":2,"n_segments":2,"dies":2,"seed":8}' \
    > "$artifacts/server-smoke.txt"
  [ "$(grep -cE '"type": ?"verdict"' "$artifacts/server-smoke.txt")" -eq 4 ]
  [ "$(grep -cE '"type": ?"done"' "$artifacts/server-smoke.txt")" -eq 2 ]
  grep -q '"manifest"' "$artifacts/server-smoke.txt"

  # Live metrics exposition must already report the completed dies.
  ./target/release/rotsv-client metrics "$addr" > "$artifacts/server-metrics-live.txt"
  grep -q 'rotsv_server_dies_completed 4' "$artifacts/server-metrics-live.txt"

  # Clean drain: the daemon must exit 0 and leave a final snapshot.
  ./target/release/rotsv-client shutdown "$addr" >/dev/null
  wait "$server_pid"
  server_pid=""
  test -s "$artifacts/server-metrics.prom" \
    || { echo "missing server Prometheus snapshot" >&2; exit 1; }
}

gate_stage() {
  # The gate drives the release binaries; build is a no-op when the
  # test stage (or the CI cache) already produced them.
  echo "==> cargo build --release (gate binaries)"
  cargo build --release

  echo "==> observability smoke (e1 --fast --metrics-out)"
  ./target/release/experiments e1 --fast --metrics-out --out "$artifacts"
  ./target/release/experiments validate-manifest "$artifacts/manifest_e1.json"
  test -s "$artifacts/metrics.prom" || { echo "missing Prometheus snapshot" >&2; exit 1; }

  # Telemetry smoke: one MC experiment with the event ring on must emit
  # a Chrome trace that parses and carries at least one mc_sample slice
  # and one counter track (validate-trace enforces exactly that
  # contract). run_smoke accepts the harness's exit 3 ("completed, but
  # known fast-fidelity shape checks failed") and fails on anything
  # else — a crashed run can no longer hide behind the smoke.
  echo "==> telemetry smoke (e3 --fast --trace-out)"
  run_smoke ./target/release/experiments e3 --fast \
    --trace-out "$artifacts/trace_e3.json" --out "$artifacts/mc-trace" >/dev/null
  ./target/release/experiments validate-trace "$artifacts/trace_e3.json"

  echo "==> batched engine cross-check (agreement with the scalar engine)"
  cargo test -q -p rotsv --release --test batched_engine

  # The batched MC smoke: one real MC experiment on each engine at fast
  # fidelity. Fast fidelity intentionally misses some paper shape
  # checks (on both engines), so the gate is that the default engine
  # (auto, which resolves to the batched refill queue at figure
  # population sizes) reaches the same verdict on every check as the
  # pinned scalar cross-check engine — engine selection must never
  # change a conclusion. run_smoke classifies exit codes: 3 (shape
  # checks failed) is expected, a crash fails here rather than
  # producing an empty verdict file.
  echo "==> batched MC engine smoke (e3/e5 --fast, scalar vs default-auto verdicts)"
  for exp in e3 e5; do
    run_smoke ./target/release/experiments "$exp" --fast --engine scalar \
      --out "$artifacts/mc-scalar" > "$artifacts/mc-scalar-out-$exp.txt"
    run_smoke ./target/release/experiments "$exp" --fast \
      --out "$artifacts/mc-auto" > "$artifacts/mc-auto-out-$exp.txt"
    grep -E '✅|❌' "$artifacts/mc-scalar-out-$exp.txt" | sed 's/ (.*//' \
      > "$artifacts/mc-scalar-checks-$exp.txt"
    grep -E '✅|❌' "$artifacts/mc-auto-out-$exp.txt" | sed 's/ (.*//' \
      > "$artifacts/mc-auto-checks-$exp.txt"
    diff "$artifacts/mc-scalar-checks-$exp.txt" "$artifacts/mc-auto-checks-$exp.txt"
  done

  # Golden signatures are pinned to the scalar engine: no --engine flag
  # here (the golden subcommand does not take one, and its per-sample
  # measurements bypass engine selection entirely), so this check holds
  # under the auto default by construction — and proves it by running
  # in the same binary whose figure default is auto.
  echo "==> golden regression check (experiments golden --check)"
  ./target/release/experiments golden --check 2>&1 | tee "$artifacts/golden-check.txt"

  server_smoke

  echo "==> bench_solver --check (fail beyond 25 %, warn beyond 15 %)"
  ./target/release/bench_solver --check
}

portable_stage() {
  # The tree carries no target-cpu pin (runtime dispatch covers the
  # wide vectors), so "portable" here means: any ambient RUSTFLAGS
  # cleared, and the runtime dispatch forced down to the scalar
  # fallback via ROTSV_SIMD=scalar — the configuration a machine
  # without AVX lands on. The agreement suites then prove that path
  # produces the same bits as the vectorised arms (the wide-lane suite
  # re-raises the level internally, so on an AVX host it compares
  # scalar against AVX2/AVX-512 output directly).
  echo "==> portable build (RUSTFLAGS cleared, ROTSV_SIMD=scalar)"
  RUSTFLAGS="" cargo build --release -p rotsv

  echo "==> scalar-dispatch agreement suites (batched_engine, simd_wide_lanes)"
  RUSTFLAGS="" ROTSV_SIMD=scalar cargo test -q -p rotsv --release \
    --test batched_engine --test simd_wide_lanes
}

case "$stage" in
  lint) lint_stage ;;
  test) test_stage ;;
  gate) gate_stage ;;
  portable) portable_stage ;;
  all)
    lint_stage
    test_stage
    gate_stage
    portable_stage
    ;;
esac

echo "CI stage '$stage' green."
