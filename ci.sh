#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, tests, docs — all warnings
# denied. Run from the repo root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> observability smoke (e1 --fast --metrics-out)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/experiments e1 --fast --metrics-out --out "$smoke_dir"
./target/release/experiments validate-manifest "$smoke_dir/manifest_e1.json"

echo "==> bench_solver --check (warn-only)"
./target/release/bench_solver --check --warn

echo "CI green."
