#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, tests, docs — all warnings
# denied — plus the golden-result regression check and the solver
# wall-time gate. Run from the repo root; exits nonzero on the first
# failure. Artifacts (run manifest, golden diff) land in
# target/ci-artifacts for the workflow to upload.
set -euo pipefail
cd "$(dirname "$0")"

# Toolchain pin: rust-toolchain.toml tracks "stable" (offline
# environments cannot resolve a versioned channel), so the exact
# version lives here and in .github/workflows/ci.yml (RUSTUP_TOOLCHAIN).
PINNED_RUST="1.95.0"
have_rust="$(rustc --version | awk '{print $2}')"
if [ "$have_rust" != "$PINNED_RUST" ]; then
  if [ "${CI:-false}" = "true" ]; then
    echo "CI requires rustc $PINNED_RUST, found $have_rust" >&2
    exit 1
  fi
  echo "warning: rustc $have_rust differs from the pinned $PINNED_RUST" >&2
fi

artifacts="target/ci-artifacts"
mkdir -p "$artifacts"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> observability smoke (e1 --fast --metrics-out)"
./target/release/experiments e1 --fast --metrics-out --out "$artifacts"
./target/release/experiments validate-manifest "$artifacts/manifest_e1.json"
test -s "$artifacts/metrics.prom" || { echo "missing Prometheus snapshot" >&2; exit 1; }

# Telemetry smoke: one MC experiment with the event ring on must emit a
# Chrome trace that parses and carries at least one mc_sample slice and
# one counter track (validate-trace enforces exactly that contract).
# `|| true` tolerates the known fast-fidelity shape-check failures; a
# crashed run writes no trace and fails validate-trace.
echo "==> telemetry smoke (e3 --fast --trace-out)"
./target/release/experiments e3 --fast --trace-out "$artifacts/trace_e3.json" \
  --out "$artifacts/mc-trace" >/dev/null || true
./target/release/experiments validate-trace "$artifacts/trace_e3.json"

echo "==> batched engine cross-check (agreement with the scalar engine)"
cargo test -q -p rotsv --release --test batched_engine

# The batched MC smoke: one real MC experiment on each engine at fast
# fidelity. Fast fidelity intentionally misses some paper shape checks
# (on both engines), so the gate is that the default engine (auto,
# which resolves to the batched refill queue at figure population
# sizes) reaches the same verdict on every check as the pinned scalar
# cross-check engine — engine selection must never change a conclusion.
# `|| true` tolerates the known fast-fidelity check failures; a crashed
# run produces no verdict lines and fails the diff.
echo "==> batched MC engine smoke (e3/e5 --fast, scalar vs default-auto verdicts)"
for exp in e3 e5; do
  ./target/release/experiments "$exp" --fast --engine scalar --out "$artifacts/mc-scalar" \
    | grep -E '✅|❌' | sed 's/ (.*//' > "$artifacts/mc-scalar-checks-$exp.txt" || true
  ./target/release/experiments "$exp" --fast --out "$artifacts/mc-auto" \
    | grep -E '✅|❌' | sed 's/ (.*//' > "$artifacts/mc-auto-checks-$exp.txt" || true
  diff "$artifacts/mc-scalar-checks-$exp.txt" "$artifacts/mc-auto-checks-$exp.txt"
done

# Golden signatures are pinned to the scalar engine: no --engine flag
# here (the golden subcommand does not take one, and its per-sample
# measurements bypass engine selection entirely), so this check holds
# under the new auto default by construction — and proves it by running
# in the same binary whose figure default is auto.
echo "==> golden regression check (experiments golden --check)"
./target/release/experiments golden --check 2>&1 | tee "$artifacts/golden-check.txt"

echo "==> bench_solver --check (fail beyond 25 %, warn beyond 15 %)"
./target/release/bench_solver --check

echo "CI green."
