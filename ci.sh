#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, tests, docs — all warnings
# denied. Run from the repo root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "CI green."
