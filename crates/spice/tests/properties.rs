//! Property-based tests of the simulator against closed-form circuit
//! theory: arbitrary dividers, RC time constants, superposition, and
//! energy sanity.

use proptest::prelude::*;
use rotsv_spice::{Circuit, DcOpSpec, SourceWaveform, TransientSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A two-resistor divider matches v·r2/(r1+r2) for any positive values.
    #[test]
    fn divider_matches_theory(
        v in 0.1..10.0f64,
        r1 in 10.0..1e6f64,
        r2 in 10.0..1e6f64,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(v));
        ckt.add_resistor(a, b, r1);
        ckt.add_resistor(b, Circuit::GROUND, r2);
        let sol = ckt.dcop(&DcOpSpec::default()).unwrap();
        let expect = v * r2 / (r1 + r2);
        // gmin adds a parallel 1e-12 S path; tolerance covers it.
        prop_assert!((sol.voltage(b) - expect).abs() < 1e-3 * expect.max(1.0));
    }

    /// Series resistor chains divide linearly: node k of an n-chain sits
    /// at v·(n−k)/n.
    #[test]
    fn resistor_chain_is_linear(
        v in 0.5..5.0f64,
        r in 100.0..10e3f64,
        n in 2usize..8,
    ) {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.add_vsource(top, Circuit::GROUND, SourceWaveform::dc(v));
        let mut prev = top;
        let mut nodes = vec![top];
        for k in 0..n {
            let node = if k + 1 == n {
                Circuit::GROUND
            } else {
                ckt.node(&format!("n{k}"))
            };
            ckt.add_resistor(prev, node, r);
            nodes.push(node);
            prev = node;
        }
        let sol = ckt.dcop(&DcOpSpec::default()).unwrap();
        for (k, &node) in nodes.iter().enumerate() {
            let expect = v * (n - k) as f64 / n as f64;
            prop_assert!(
                (sol.voltage(node) - expect).abs() < 1e-6 + 1e-4 * expect,
                "node {k}: {} vs {expect}", sol.voltage(node)
            );
        }
    }

    /// Superposition: the response to two DC current sources equals the
    /// sum of the individual responses (linear network).
    #[test]
    fn superposition_holds(
        i1 in -1e-3..1e-3f64,
        i2 in -1e-3..1e-3f64,
        r in 100.0..10e3f64,
    ) {
        let solve = |ia: f64, ib: f64| -> f64 {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add_resistor(a, Circuit::GROUND, r);
            ckt.add_resistor(a, b, r);
            ckt.add_resistor(b, Circuit::GROUND, r);
            ckt.add_isource(Circuit::GROUND, a, SourceWaveform::dc(ia));
            ckt.add_isource(Circuit::GROUND, b, SourceWaveform::dc(ib));
            ckt.dcop(&DcOpSpec::default()).unwrap().voltage(b)
        };
        let both = solve(i1, i2);
        let sum = solve(i1, 0.0) + solve(0.0, i2);
        prop_assert!((both - sum).abs() < 1e-9 + 1e-6 * both.abs());
    }

    /// RC charging hits 1 − 1/e of the swing at t = τ for random R and C.
    #[test]
    fn rc_time_constant(
        r in 100.0..100e3f64,
        c_ff in 10.0..1000.0f64,
    ) {
        let c = c_ff * 1e-15;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(vin, out, r);
        ckt.add_capacitor(out, Circuit::GROUND, c);
        let spec = TransientSpec::new(3.0 * tau, tau / 400.0).record(&[out]);
        let res = ckt.transient(&spec).unwrap();
        let v_tau = res.waveform(out).value_at(tau);
        let expect = 1.0 - (-1.0f64).exp();
        prop_assert!((v_tau - expect).abs() < 5e-3, "v(tau) = {v_tau}");
    }

    /// Capacitor voltage never overshoots the source in a passive RC
    /// charge (no numerical energy creation with trapezoidal + BE start).
    #[test]
    fn passive_rc_never_overshoots(
        r in 100.0..10e3f64,
        c_ff in 10.0..500.0f64,
        dt_frac in 0.001..0.1f64,
    ) {
        let c = c_ff * 1e-15;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(vin, out, r);
        ckt.add_capacitor(out, Circuit::GROUND, c);
        let spec = TransientSpec::new(5.0 * tau, tau * dt_frac).record(&[out]);
        let res = ckt.transient(&spec).unwrap();
        let w = res.waveform(out);
        prop_assert!(w.max() <= 1.0 + 1e-9, "overshoot to {}", w.max());
        prop_assert!(w.min() >= -1e-9);
    }
}
