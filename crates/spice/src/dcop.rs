//! DC operating-point analysis.
//!
//! Solves the circuit with capacitors open. If plain Newton fails, two
//! classic homotopies are attempted in order: **gmin stepping** (start with
//! a large shunt conductance and relax it) and **source stepping** (ramp
//! all independent sources from zero).

use std::time::Instant;

use rotsv_num::sparse::SolverStats;

use crate::circuit::{Circuit, VSourceId};
use crate::error::SpiceError;
use crate::mna::{newton_solve, node_voltage, CapMode, MnaWorkspace, NewtonOpts};
use crate::node::NodeId;

/// Options for the DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcOpSpec {
    /// Maximum Newton iterations per solve attempt.
    pub max_iterations: usize,
    /// Initial guess applied to specific nodes (helps bistable circuits
    /// settle into an intended state).
    pub initial_voltages: Vec<(NodeId, f64)>,
}

impl Default for DcOpSpec {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            initial_voltages: Vec::new(),
        }
    }
}

/// A converged DC solution.
#[derive(Debug, Clone)]
pub struct DcSolution {
    x: Vec<f64>,
    n_nodes: usize,
    stats: SolverStats,
}

impl DcSolution {
    /// Numerical-work counters of the analysis that produced this
    /// solution. (Solutions taken from a [`crate::dcsweep`] carry zeroed
    /// counters; the sweep aggregate lives on the sweep result.)
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
    /// Voltage of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the solved circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        assert!(node.index() < self.n_nodes, "node out of range");
        node_voltage(&self.x, node)
    }

    /// Branch current of voltage source `vs`, positive flowing from the
    /// positive terminal *through the source* to the negative terminal.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to the solved circuit.
    pub fn source_current(&self, vs: VSourceId) -> f64 {
        let idx = self.n_nodes - 1 + vs.0;
        assert!(idx < self.x.len(), "voltage source out of range");
        self.x[idx]
    }

    /// The raw solution vector (node voltages then branch currents).
    pub fn as_slice(&self) -> &[f64] {
        &self.x
    }

    pub(crate) fn into_vec(self) -> Vec<f64> {
        self.x
    }

    pub(crate) fn from_raw(x: Vec<f64>, n_nodes: usize) -> Self {
        Self {
            x,
            n_nodes,
            stats: SolverStats::default(),
        }
    }
}

/// Stamps the final wall time into the workspace counters and wraps the
/// solution.
fn finish(x: Vec<f64>, n_nodes: usize, ws: &MnaWorkspace, start: Instant) -> DcSolution {
    let mut stats = ws.stats;
    stats.wall_seconds = start.elapsed().as_secs_f64();
    DcSolution { x, n_nodes, stats }
}

impl Circuit {
    /// Computes the DC operating point.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NoConvergence`] if Newton, gmin stepping and
    /// source stepping all fail, or [`SpiceError::SingularSystem`] if the
    /// MNA matrix is structurally singular.
    pub fn dcop(&self, spec: &DcOpSpec) -> Result<DcSolution, SpiceError> {
        let _span = rotsv_obs::span!("dcop");
        let wall_start = Instant::now();
        let mut ws = MnaWorkspace::new(self);
        // DC solves start far from the solution (zero vector, homotopy
        // ramps), where a stale Jacobian can cycle instead of converge.
        // Full Newton here costs nothing measurable — DC is a negligible
        // slice of every experiment — and matches the robustness of the
        // dense engine this replaced. Linear circuits still factor once
        // thanks to the unchanged-values skip in the workspace.
        let opts = NewtonOpts {
            max_iterations: spec.max_iterations,
            max_stale: 0,
            ..NewtonOpts::default()
        };
        let mut x0 = vec![0.0; self.unknown_count()];
        for &(node, v) in &spec.initial_voltages {
            if !node.is_ground() {
                x0[node.index() - 1] = v;
            }
        }

        // 1. Plain Newton.
        match newton_solve(
            &mut ws,
            self,
            x0.clone(),
            0.0,
            1.0,
            self.gmin(),
            CapMode::Open,
            &opts,
        ) {
            Ok(x) => return Ok(finish(x, self.node_count(), &ws, wall_start)),
            Err(fail) => {
                if let Some(err @ SpiceError::SingularSystem { .. }) = fail.error {
                    return Err(err);
                }
            }
        }

        // 2. Gmin stepping: relax a large shunt conductance decade by decade.
        let mut x = x0.clone();
        let mut ok = true;
        let mut g = 1e-2;
        while g >= self.gmin() {
            match newton_solve(&mut ws, self, x.clone(), 0.0, 1.0, g, CapMode::Open, &opts) {
                Ok(sol) => x = sol,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            g /= 10.0;
        }
        if ok {
            if let Ok(sol) = newton_solve(
                &mut ws,
                self,
                x.clone(),
                0.0,
                1.0,
                self.gmin(),
                CapMode::Open,
                &opts,
            ) {
                return Ok(finish(sol, self.node_count(), &ws, wall_start));
            }
        }

        // 3. Adaptive source stepping: ramp sources from 0 to full value,
        // bisecting the continuation step whenever Newton stalls (high-gain
        // stages near their switching point need very fine alpha steps).
        let mut x = x0;
        let mut alpha = 0.0f64;
        let mut step = 0.05f64;
        const MIN_STEP: f64 = 1e-5;
        while alpha < 1.0 {
            let target = (alpha + step).min(1.0);
            match newton_solve(
                &mut ws,
                self,
                x.clone(),
                0.0,
                target,
                self.gmin(),
                CapMode::Open,
                &opts,
            ) {
                Ok(sol) => {
                    x = sol;
                    alpha = target;
                    // Grow the step back after success.
                    step = (step * 2.0).min(0.05);
                }
                Err(fail) => {
                    step /= 2.0;
                    if step < MIN_STEP {
                        return Err(SpiceError::NoConvergence {
                            analysis: "dcop",
                            time: 0.0,
                            iterations: fail.iterations,
                        });
                    }
                }
            }
        }
        Ok(finish(x, self.node_count(), &ws, wall_start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    #[test]
    fn divider_voltages_and_current() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let vs = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(3.0));
        ckt.add_resistor(a, b, 2e3);
        ckt.add_resistor(b, Circuit::GROUND, 1e3);
        let sol = ckt.dcop(&DcOpSpec::default()).unwrap();
        assert!((sol.voltage(a) - 3.0).abs() < 1e-9);
        assert!((sol.voltage(b) - 1.0).abs() < 1e-6);
        assert!((sol.source_current(vs) + 1e-3).abs() < 1e-8);
        assert_eq!(sol.voltage(Circuit::GROUND), 0.0);
    }

    #[test]
    fn series_vsources_stack() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_vsource(b, a, SourceWaveform::dc(0.5));
        ckt.add_resistor(b, Circuit::GROUND, 1e3);
        let sol = ckt.dcop(&DcOpSpec::default()).unwrap();
        assert!((sol.voltage(b) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn diode_chain_converges_via_stepping_if_needed() {
        use crate::device::test_devices::Diode;
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.add_vsource(top, Circuit::GROUND, SourceWaveform::dc(3.0));
        ckt.add_resistor(top, mid, 100.0);
        for _ in 0..2 {
            ckt.add_device(Box::new(Diode {
                nodes: [mid, Circuit::GROUND],
                i_sat: 1e-15,
                v_t: 0.02585,
            }));
        }
        let sol = ckt.dcop(&DcOpSpec::default()).unwrap();
        let v = sol.voltage(mid);
        assert!((0.6..0.95).contains(&v), "v = {v}");
    }

    #[test]
    fn initial_voltage_hint_is_respected_for_latch() {
        // Two cross-coupled "inverters" built from diodes would be overkill;
        // instead verify the hint lands in the start vector via a linear
        // circuit where the answer is unique (hint must not change it).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(2.0));
        let spec = DcOpSpec {
            initial_voltages: vec![(a, -5.0)],
            ..DcOpSpec::default()
        };
        let sol = ckt.dcop(&spec).unwrap();
        assert!((sol.voltage(a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let ckt = Circuit::new();
        let sol = ckt.dcop(&DcOpSpec::default()).unwrap();
        assert!(sol.as_slice().is_empty());
    }
}
