//! Waveform post-processing.
//!
//! The paper's measurements are all waveform-derived: propagation delay of
//! an I/O cell driving a TSV (Fig. 4) and the oscillation period of the
//! ring (everything else). Crossing times are interpolated between samples,
//! so period resolution is far finer than the integration step.

use rotsv_num::interp::{crossing_on_segment, lerp_at};
use rotsv_num::stats::Summary;

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Upward through the threshold.
    Rising,
    /// Downward through the threshold.
    Falling,
}

/// Statistics of an extracted oscillation period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodMeasurement {
    /// Mean period over the analyzed cycles, seconds.
    pub mean: f64,
    /// Cycle-to-cycle standard deviation, seconds.
    pub jitter: f64,
    /// Number of full cycles analyzed.
    pub cycles: usize,
}

/// A sampled voltage waveform on a (possibly non-uniform) time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    time: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from matching time and value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, are empty, or time is not
    /// strictly increasing.
    pub fn new(time: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(time.len(), values.len(), "time/value length mismatch");
        assert!(!time.is_empty(), "waveform must not be empty");
        assert!(
            time.windows(2).all(|w| w[0] < w[1]),
            "time must be strictly increasing"
        );
        Self { time, values }
    }

    /// Time samples, seconds.
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// Voltage samples, volts.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the waveform holds no samples (never true for a constructed
    /// waveform; included for API completeness).
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Linearly interpolated value at time `t` (clamped at the ends).
    pub fn value_at(&self, t: f64) -> f64 {
        lerp_at(&self.time, &self.values, t)
    }

    /// Final sampled value.
    pub fn final_value(&self) -> f64 {
        *self.values.last().expect("waveform is non-empty")
    }

    /// Minimum sampled value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sampled value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// All interpolated times at which the waveform crosses `threshold`
    /// with the given `edge` direction.
    pub fn crossings(&self, threshold: f64, edge: Edge) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 1..self.values.len() {
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            let hit = match edge {
                Edge::Rising => v0 < threshold && v1 >= threshold,
                Edge::Falling => v0 > threshold && v1 <= threshold,
            };
            if hit {
                out.push(crossing_on_segment(
                    self.time[i - 1],
                    v0,
                    self.time[i],
                    v1,
                    threshold,
                ));
            }
        }
        out
    }

    /// First crossing of `threshold` in direction `edge` at or after `t0`.
    pub fn first_crossing_after(&self, t0: f64, threshold: f64, edge: Edge) -> Option<f64> {
        self.crossings(threshold, edge)
            .into_iter()
            .find(|&t| t >= t0)
    }

    /// Extracts the oscillation period from rising crossings of
    /// `threshold`, discarding the first `skip_cycles` cycles as startup.
    ///
    /// Returns `None` when fewer than two usable crossings remain — the
    /// signature of a non-oscillating (stuck) circuit, which the paper
    /// observes for leakage faults below roughly 1 kΩ.
    pub fn period(&self, threshold: f64, skip_cycles: usize) -> Option<PeriodMeasurement> {
        let crossings = self.crossings(threshold, Edge::Rising);
        if crossings.len() < skip_cycles + 2 {
            return None;
        }
        let used = &crossings[skip_cycles..];
        let periods: Vec<f64> = used.windows(2).map(|w| w[1] - w[0]).collect();
        let s = Summary::of(&periods);
        Some(PeriodMeasurement {
            mean: s.mean,
            jitter: s.std_dev,
            cycles: periods.len(),
        })
    }

    /// Propagation delay from this waveform (input) to `output`: the time
    /// between this waveform's first crossing of `in_threshold` after `t0`
    /// and the output's first subsequent crossing of `out_threshold`.
    ///
    /// Returns `None` if either crossing does not occur.
    pub fn delay_to(
        &self,
        output: &Waveform,
        t0: f64,
        in_threshold: f64,
        in_edge: Edge,
        out_threshold: f64,
        out_edge: Edge,
    ) -> Option<f64> {
        let t_in = self.first_crossing_after(t0, in_threshold, in_edge)?;
        let t_out = output.first_crossing_after(t_in, out_threshold, out_edge)?;
        Some(t_out - t_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(periods: usize, samples_per_period: usize, period: f64) -> Waveform {
        let n = periods * samples_per_period;
        let dt = period / samples_per_period as f64;
        let time: Vec<f64> = (0..=n).map(|i| i as f64 * dt).collect();
        let values: Vec<f64> = time
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * t / period).sin())
            .collect();
        Waveform::new(time, values)
    }

    #[test]
    fn sine_period_recovered_accurately() {
        let w = sine(10, 50, 2e-9);
        let m = w.period(0.0, 2).expect("oscillates");
        assert!(
            (m.mean - 2e-9).abs() < 1e-13,
            "period {} vs expected 2e-9",
            m.mean
        );
        assert!(m.cycles >= 6);
        assert!(m.jitter < 1e-12);
    }

    #[test]
    fn non_oscillating_returns_none() {
        let time: Vec<f64> = (0..100).map(|i| i as f64 * 1e-9).collect();
        let values = vec![0.2; 100];
        let w = Waveform::new(time, values);
        assert!(w.period(0.5, 0).is_none());
    }

    #[test]
    fn crossings_interpolate_between_samples() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]);
        let rising = w.crossings(0.25, Edge::Rising);
        let falling = w.crossings(0.25, Edge::Falling);
        assert_eq!(rising.len(), 1);
        assert_eq!(falling.len(), 1);
        assert!((rising[0] - 0.25).abs() < 1e-15);
        assert!((falling[0] - 1.75).abs() < 1e-15);
    }

    #[test]
    fn skip_cycles_discards_startup() {
        // First "cycle" is distorted: crossings at 0.5, then clean 1.0 spacing.
        let time = vec![0.0, 0.4, 0.6, 1.4, 1.6, 2.4, 2.6, 3.4, 3.6];
        let vals = vec![0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let w = Waveform::new(time, vals);
        let m = w.period(0.5, 1).unwrap();
        assert!((m.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_measures_input_to_output() {
        let input = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0]);
        let output = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.0, 1.0]);
        let d = input
            .delay_to(&output, 0.0, 0.5, Edge::Rising, 0.5, Edge::Rising)
            .unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_none_when_output_never_switches() {
        let input = Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]);
        let output = Waveform::new(vec![0.0, 1.0], vec![0.0, 0.1]);
        assert!(input
            .delay_to(&output, 0.0, 0.5, Edge::Rising, 0.5, Edge::Rising)
            .is_none());
    }

    #[test]
    fn min_max_final() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.5, -1.0, 2.0]);
        assert_eq!(w.min(), -1.0);
        assert_eq!(w.max(), 2.0);
        assert_eq!(w.final_value(), 2.0);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_time_rejected() {
        let _ = Waveform::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn value_at_clamps_outside_range() {
        let w = Waveform::new(vec![1.0, 2.0], vec![5.0, 7.0]);
        assert_eq!(w.value_at(0.0), 5.0);
        assert_eq!(w.value_at(3.0), 7.0);
        assert_eq!(w.value_at(1.5), 6.0);
    }
}
