//! The interface between the simulator and nonlinear devices.
//!
//! The simulator knows nothing about transistors; compact models (such as
//! the EKV-style MOSFET in `rotsv-mosfet`) implement [`NonlinearDevice`]
//! and are stamped through their Norton linearization on every Newton
//! iteration.

use rotsv_num::matrix::Matrix;

use crate::node::NodeId;

/// Linearization of a nonlinear device at a trial voltage point.
///
/// Terminal ordering follows [`NonlinearDevice::nodes`]. `current[k]` is the
/// current flowing *from node k into the device*; `jacobian[(k, j)]` is
/// `dI_k / dV_j`.
#[derive(Debug, Clone)]
pub struct DeviceStamp {
    /// Terminal currents at the trial point, amps.
    pub current: Vec<f64>,
    /// Terminal conductance matrix, siemens.
    pub jacobian: Matrix,
}

impl DeviceStamp {
    /// Creates a zeroed stamp for a device with `terminals` terminals.
    pub fn new(terminals: usize) -> Self {
        Self {
            current: vec![0.0; terminals],
            jacobian: Matrix::zeros(terminals, terminals),
        }
    }

    /// Resets the stamp to zero, keeping allocations.
    pub fn clear(&mut self) {
        self.current.fill(0.0);
        self.jacobian.fill_zero();
    }

    /// Number of terminals this stamp covers.
    pub fn terminals(&self) -> usize {
        self.current.len()
    }
}

/// A nonlinear, voltage-controlled multi-terminal device.
///
/// Implementors provide their terminal list once at netlist time and an
/// `eval` that the Newton loop calls with trial terminal voltages.
///
/// Sign convention: positive `current[k]` flows out of node `k` into the
/// device. A device must be *charge-free* here — capacitances are added to
/// the circuit as separate linear [`crate::Circuit::add_capacitor`]
/// elements, which keeps the Jacobian purely resistive and the integration
/// scheme in one place.
pub trait NonlinearDevice: std::fmt::Debug + Send + Sync {
    /// Terminal nodes, in the order used by `eval`.
    fn nodes(&self) -> &[NodeId];

    /// Evaluates terminal currents and the terminal Jacobian at terminal
    /// voltages `v` (volts, same order as [`Self::nodes`]).
    ///
    /// `stamp` arrives zeroed with matching dimensions.
    fn eval(&self, v: &[f64], stamp: &mut DeviceStamp);

    /// Human-readable instance name for diagnostics.
    fn name(&self) -> &str {
        "device"
    }

    /// Downcast hook for the batched engine; `None` (the default) means
    /// the device type opts out of batching and falls back to per-lane
    /// scalar [`Self::eval`] calls.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Builds a structure-of-arrays batched evaluator for this device
    /// slot across `lanes` (one device per die, `self` is lane 0's).
    ///
    /// Called once per device slot when a batched transient is set up.
    /// Returning `None` (the default) keeps the slot on the per-lane
    /// scalar fallback; implementations should also return `None` when
    /// the lanes are not same-typed or differ in a way the SoA kernel
    /// cannot express.
    fn batch_with(&self, lanes: &[&dyn NonlinearDevice]) -> Option<Box<dyn BatchedDeviceEval>> {
        let _ = lanes;
        None
    }
}

/// Lockstep evaluator for one device slot across K lanes of a batched
/// transient, with every buffer lane-interleaved.
///
/// For a device with `t` terminals and `k` lanes:
/// * `v[m*k + lane]` — trial voltage of terminal `m` in `lane`,
/// * `current[m*k + lane]` — terminal current (same sign convention as
///   [`NonlinearDevice::eval`]),
/// * `jacobian[(r*t + c)*k + lane]` — `dI_r / dV_c`.
///
/// Buffers are **not** pre-zeroed: `eval_lanes` must write every entry
/// it owns each call, including exact zeros.
pub trait BatchedDeviceEval: Send {
    /// Evaluates all lanes at the interleaved trial voltages `v`.
    fn eval_lanes(&mut self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]);

    /// Re-seats `lane` with `device` (the corresponding slot of a new die
    /// being seated into that lane by the refill scheduler). Returns
    /// `true` when the bank absorbed the device in place; `false` (the
    /// default) tells the caller to rebuild the bank for the new lane
    /// composition instead.
    fn reseat_lane(&mut self, lane: usize, device: &dyn NonlinearDevice) -> bool {
        let _ = (lane, device);
        false
    }
}

#[cfg(test)]
pub(crate) mod test_devices {
    //! Simple devices used by simulator tests.

    use super::*;

    /// An ideal exponential diode `I = Is (exp(V/Vt) − 1)` from `anode` to
    /// `cathode`.
    #[derive(Debug)]
    pub struct Diode {
        pub nodes: [NodeId; 2],
        pub i_sat: f64,
        pub v_t: f64,
    }

    impl NonlinearDevice for Diode {
        fn nodes(&self) -> &[NodeId] {
            &self.nodes
        }

        fn eval(&self, v: &[f64], stamp: &mut DeviceStamp) {
            let vd = (v[0] - v[1]).min(1.5); // junction limiting
            let e = (vd / self.v_t).exp();
            let i = self.i_sat * (e - 1.0);
            let g = self.i_sat / self.v_t * e;
            stamp.current[0] = i;
            stamp.current[1] = -i;
            stamp.jacobian[(0, 0)] = g;
            stamp.jacobian[(0, 1)] = -g;
            stamp.jacobian[(1, 0)] = -g;
            stamp.jacobian[(1, 1)] = g;
        }

        fn name(&self) -> &str {
            "diode"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_dimensions_match_terminal_count() {
        let s = DeviceStamp::new(4);
        assert_eq!(s.terminals(), 4);
        assert_eq!(s.jacobian.rows(), 4);
        assert_eq!(s.jacobian.cols(), 4);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut s = DeviceStamp::new(2);
        s.current[0] = 1.0;
        s.jacobian[(1, 1)] = 2.0;
        s.clear();
        assert_eq!(s.current, vec![0.0, 0.0]);
        assert_eq!(s.jacobian.max_abs(), 0.0);
    }

    #[test]
    fn diode_current_conserves_charge() {
        use test_devices::Diode;
        let d = Diode {
            nodes: [NodeId(1), NodeId(0)],
            i_sat: 1e-14,
            v_t: 0.02585,
        };
        let mut s = DeviceStamp::new(2);
        d.eval(&[0.6, 0.0], &mut s);
        assert!(s.current[0] > 0.0);
        assert_eq!(s.current[0], -s.current[1]);
        // Conductance rows sum to zero (KCL consistency).
        assert!((s.jacobian[(0, 0)] + s.jacobian[(0, 1)]).abs() < 1e-18);
    }
}
