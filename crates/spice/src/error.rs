//! Simulator error types.

use std::error::Error;
use std::fmt;

use rotsv_num::linsolve::SolveError;

/// Errors produced by circuit analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The Newton iteration failed to converge.
    NoConvergence {
        /// Analysis that failed (`"dcop"` or `"transient"`).
        analysis: &'static str,
        /// Simulated time at which the failure occurred (0 for DC).
        time: f64,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The MNA matrix was singular even with gmin applied.
    SingularSystem {
        /// Simulated time of the failure (0 for DC).
        time: f64,
        /// Underlying linear-solver error.
        source: SolveError,
    },
    /// The netlist is structurally invalid (e.g. a non-positive resistance).
    InvalidCircuit(String),
    /// An analysis specification is invalid (e.g. a non-positive time step).
    InvalidSpec(String),
    /// A parallel worker panicked while simulating one sample of a
    /// fan-out (e.g. one Monte-Carlo die). Carries the sample index so
    /// the failing die can be reproduced in isolation.
    WorkerPanic {
        /// Index of the sample whose worker panicked.
        index: usize,
        /// Rendered panic payload.
        payload: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::NoConvergence {
                analysis,
                time,
                iterations,
            } => write!(
                f,
                "{analysis} analysis failed to converge after {iterations} iterations at t={time:.3e} s"
            ),
            SpiceError::SingularSystem { time, source } => {
                write!(f, "singular MNA system at t={time:.3e} s: {source}")
            }
            SpiceError::InvalidCircuit(msg) => write!(f, "invalid circuit: {msg}"),
            SpiceError::InvalidSpec(msg) => write!(f, "invalid analysis spec: {msg}"),
            SpiceError::WorkerPanic { index, payload } => {
                write!(f, "worker panicked on sample {index}: {payload}")
            }
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::SingularSystem { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_analysis() {
        let e = SpiceError::NoConvergence {
            analysis: "transient",
            time: 1e-9,
            iterations: 50,
        };
        let s = e.to_string();
        assert!(s.contains("transient"));
        assert!(s.contains("50"));
    }

    #[test]
    fn worker_panic_names_the_sample() {
        let e = SpiceError::WorkerPanic {
            index: 12,
            payload: "overflow".into(),
        };
        let s = e.to_string();
        assert!(s.contains("sample 12"), "{s}");
        assert!(s.contains("overflow"), "{s}");
    }

    #[test]
    fn singular_reports_source() {
        let e = SpiceError::SingularSystem {
            time: 0.0,
            source: SolveError::Singular { column: 2 },
        };
        assert!(e.source().is_some());
    }
}
