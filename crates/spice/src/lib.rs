#![warn(missing_docs)]

//! A compact analog circuit simulator built on Modified Nodal Analysis.
//!
//! This crate replaces HSPICE in the reproduction of the DATE 2013 paper
//! *"Non-Invasive Pre-Bond TSV Test Using Ring Oscillators and Multiple
//! Voltage Levels"*. It provides exactly what the paper's experiments need:
//!
//! * a [`Circuit`] netlist of resistors, capacitors, independent sources and
//!   arbitrary nonlinear devices (MOSFETs are supplied by `rotsv-mosfet`
//!   through the [`NonlinearDevice`] trait),
//! * a Newton–Raphson **DC operating point** with gmin and source stepping
//!   ([`dcop`]),
//! * **transient analysis** with trapezoidal or backward-Euler integration,
//!   per-step Newton iteration, fixed or local-truncation-error-adaptive
//!   time stepping ([`StepControl`]) and automatic sub-stepping on
//!   convergence trouble ([`transient`]),
//! * **waveform post-processing**: threshold crossings, propagation delay
//!   and oscillation-period extraction with sub-step interpolation
//!   ([`waveform`]).
//!
//! # Examples
//!
//! Charge an RC low-pass and compare with the analytic time constant:
//!
//! ```
//! use rotsv_spice::{Circuit, SourceWaveform, TransientSpec};
//!
//! # fn main() -> Result<(), rotsv_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
//! ckt.add_resistor(vin, vout, 1e3);
//! ckt.add_capacitor(vout, Circuit::GROUND, 1e-9); // tau = 1 µs
//! let spec = TransientSpec::new(5e-6, 5e-9).record(&[vout]);
//! let result = ckt.transient(&spec)?;
//! let wave = result.waveform(vout);
//! let v_at_tau = wave.value_at(1e-6);
//! assert!((v_at_tau - (1.0 - (-1.0f64).exp())).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod circuit;
pub mod dcop;
pub mod dcsweep;
pub mod device;
pub mod error;
pub mod mna;
pub mod node;
pub mod source;
pub mod transient;
pub mod waveform;

pub use batch::{transient_batch, transient_queue, transient_stream};
pub use circuit::{Circuit, VSourceId};
pub use dcop::{DcOpSpec, DcSolution};
pub use dcsweep::DcSweepResult;
pub use device::{BatchedDeviceEval, DeviceStamp, NonlinearDevice};
pub use error::SpiceError;
pub use node::NodeId;
pub use rotsv_num::sparse::{AnalyzeOptions, OrderingStrategy, Scaling, SolverStats};
pub use source::SourceWaveform;
pub use transient::{
    AdaptiveControl, IntegrationMethod, StepControl, StopCondition, TransientResult, TransientSpec,
};
pub use waveform::{Edge, PeriodMeasurement, Waveform};
