//! Transient analysis.
//!
//! Integration uses trapezoidal (default) or backward-Euler companion
//! models with Newton iteration at every step. The first two accepted
//! steps always use backward Euler to damp the startup transient of
//! inconsistent initial conditions (standard practice; trapezoidal
//! integration would ring on them).
//!
//! Two step-control policies are available ([`StepControl`]):
//!
//! * **Fixed** — every step is `spec.dt`, halved locally (up to 12 times)
//!   when Newton refuses to converge. This is the cross-check mode: it is
//!   slower but its time grid is deterministic.
//! * **Adaptive** — local-truncation-error control. Each step is compared
//!   against a linear predictor through the previous two solutions; the
//!   scaled error steers the next step size (toward
//!   [`AdaptiveControl::max_stretch`]`·spec.dt` on flat stretches), and a
//!   step is redone smaller only when the error exceeds
//!   [`AdaptiveControl::reject_threshold`]. Ring-oscillator runs then
//!   spend their steps on switching edges rather than flat regions.
//!
//! Newton starts each step from a linear extrapolation of the last two
//! solutions, which is what keeps large adaptive steps cheap.

use std::collections::BTreeMap;
use std::time::Instant;

use rotsv_num::sparse::SolverStats;

use crate::circuit::{Circuit, Element, VSourceId};
use crate::error::SpiceError;
use crate::mna::{newton_solve, node_voltage, CapMode, MnaWorkspace, NewtonOpts};
use crate::node::NodeId;
use crate::waveform::Waveform;

/// Numerical integration scheme for capacitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Trapezoidal rule: second-order accurate, no numerical damping.
    #[default]
    Trapezoidal,
    /// Backward Euler: first-order, strongly damped; useful as a
    /// cross-check that a result is not an integration artifact.
    BackwardEuler,
}

/// Early-termination condition for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub enum StopCondition {
    /// Stop once `node` has risen through `threshold` volts `count` times.
    ///
    /// Ring-oscillator runs use this to simulate exactly as many cycles as
    /// the period extraction needs.
    RisingCrossings {
        /// Observed node.
        node: NodeId,
        /// Threshold voltage.
        threshold: f64,
        /// Number of rising crossings after which to stop.
        count: usize,
    },
}

/// Tuning knobs of the adaptive (local-truncation-error) step control.
///
/// All step bounds are expressed relative to the nominal `spec.dt`, so
/// one set of knobs works across circuits with very different time
/// scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveControl {
    /// Relative weight of the local-error test (per node voltage).
    pub lte_reltol: f64,
    /// Absolute weight of the local-error test, volts.
    pub lte_abstol: f64,
    /// Smallest permitted step as a fraction of the nominal `dt`.
    pub min_shrink: f64,
    /// Largest permitted step as a multiple of the nominal `dt`.
    pub max_stretch: f64,
    /// Largest per-step growth factor.
    pub max_growth: f64,
    /// Scaled-error value above which a step is *rejected* and redone
    /// smaller. Errors in `(1, reject_threshold]` are accepted (the next
    /// step still shrinks): a rejected large step is the most expensive
    /// work in a run, and an occasional few-× overshoot of a per-step
    /// estimate is invisible in an aggregate like an oscillation period.
    pub reject_threshold: f64,
}

impl Default for AdaptiveControl {
    fn default() -> Self {
        Self {
            lte_reltol: 5e-2,
            lte_abstol: 1e-2,
            min_shrink: 1.0 / 32.0,
            max_stretch: 16.0,
            max_growth: 2.0,
            reject_threshold: 4.0,
        }
    }
}

/// Time-step policy of a transient run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StepControl {
    /// Every step is `spec.dt` (halved only on Newton failure). The
    /// deterministic cross-check mode.
    #[default]
    Fixed,
    /// Local-truncation-error controlled stepping around `spec.dt`.
    Adaptive(AdaptiveControl),
}

impl StepControl {
    /// Adaptive stepping with the default [`AdaptiveControl`] knobs.
    pub fn adaptive() -> Self {
        StepControl::Adaptive(AdaptiveControl::default())
    }
}

/// Specification of a transient analysis.
#[derive(Debug, Clone)]
pub struct TransientSpec {
    /// End time, seconds.
    pub t_stop: f64,
    /// Nominal time step, seconds. Under [`StepControl::Adaptive`] this is
    /// the initial step and the reference for the step bounds.
    pub dt: f64,
    /// Step-control policy.
    pub step: StepControl,
    /// Integration method.
    pub method: IntegrationMethod,
    /// Nodes to record; empty records every node.
    pub record_nodes: Vec<NodeId>,
    /// Voltage-source branch currents to record (e.g. the supply, for
    /// IDDQ-style current signatures).
    pub record_currents: Vec<VSourceId>,
    /// Node voltages applied at t = 0 (unlisted nodes start at 0 V).
    pub initial_voltages: Vec<(NodeId, f64)>,
    /// If `true`, start from the DC operating point instead of the
    /// `initial_voltages` vector.
    pub start_from_dcop: bool,
    /// Optional early-termination condition.
    pub stop: Option<StopCondition>,
    /// Newton iteration cap per time step.
    pub max_newton: usize,
}

impl TransientSpec {
    /// Creates a spec running to `t_stop` with step `dt`, recording all
    /// nodes.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        Self {
            t_stop,
            dt,
            step: StepControl::default(),
            method: IntegrationMethod::default(),
            record_nodes: Vec::new(),
            record_currents: Vec::new(),
            initial_voltages: Vec::new(),
            start_from_dcop: false,
            stop: None,
            max_newton: 40,
        }
    }

    /// Restricts recording to `nodes` (reduces memory for long runs).
    pub fn record(mut self, nodes: &[NodeId]) -> Self {
        self.record_nodes = nodes.to_vec();
        self
    }

    /// Also records the branch currents of the given voltage sources.
    pub fn record_currents(mut self, sources: &[VSourceId]) -> Self {
        self.record_currents = sources.to_vec();
        self
    }

    /// Selects the integration method.
    pub fn method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    /// Selects the step-control policy.
    ///
    /// ```
    /// use rotsv_spice::{AdaptiveControl, StepControl, TransientSpec};
    ///
    /// // Default knobs …
    /// let spec = TransientSpec::new(1e-6, 1e-9).step_control(StepControl::adaptive());
    /// // … or explicit ones, e.g. a tighter error test:
    /// let tight = StepControl::Adaptive(AdaptiveControl {
    ///     lte_reltol: 5e-4,
    ///     ..AdaptiveControl::default()
    /// });
    /// let spec = spec.step_control(tight);
    /// assert_eq!(spec.step, tight);
    /// ```
    pub fn step_control(mut self, step: StepControl) -> Self {
        self.step = step;
        self
    }

    /// Sets initial node voltages (implies a UIC start).
    pub fn initial_voltages(mut self, init: &[(NodeId, f64)]) -> Self {
        self.initial_voltages = init.to_vec();
        self
    }

    /// Starts the run from the DC operating point.
    pub fn from_dcop(mut self) -> Self {
        self.start_from_dcop = true;
        self
    }

    /// Stops after `count` rising crossings of `threshold` on `node`.
    pub fn stop_after_rising(mut self, node: NodeId, threshold: f64, count: usize) -> Self {
        self.stop = Some(StopCondition::RisingCrossings {
            node,
            threshold,
            count,
        });
        self
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    time: Vec<f64>,
    columns: BTreeMap<NodeId, Vec<f64>>,
    current_columns: BTreeMap<usize, Vec<f64>>,
    stopped_early: bool,
    steps_taken: usize,
    stats: SolverStats,
}

impl TransientResult {
    /// Assembles a result from raw pieces (used by the batched engine,
    /// which records per-lane columns outside `Circuit::transient`).
    pub(crate) fn from_parts(
        time: Vec<f64>,
        columns: BTreeMap<NodeId, Vec<f64>>,
        current_columns: BTreeMap<usize, Vec<f64>>,
        stopped_early: bool,
        steps_taken: usize,
        stats: SolverStats,
    ) -> Self {
        Self {
            time,
            columns,
            current_columns,
            stopped_early,
            steps_taken,
            stats,
        }
    }

    /// Simulation time points, seconds.
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// `true` if a [`StopCondition`] ended the run before `t_stop`.
    pub fn stopped_early(&self) -> bool {
        self.stopped_early
    }

    /// Total accepted integration steps.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Numerical-work counters of the run (factorizations, Newton
    /// iterations, accepted/rejected steps, wall time).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Recorded waveform of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not recorded.
    pub fn waveform(&self, node: NodeId) -> Waveform {
        let values = self
            .columns
            .get(&node)
            .unwrap_or_else(|| panic!("node {node} was not recorded"))
            .clone();
        Waveform::new(self.time.clone(), values)
    }

    /// Voltage of `node` at the final time point.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not recorded or the run is empty.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        *self
            .columns
            .get(&node)
            .unwrap_or_else(|| panic!("node {node} was not recorded"))
            .last()
            .expect("transient result is empty")
    }

    /// Nodes that were recorded.
    pub fn recorded_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.columns.keys().copied()
    }

    /// Recorded branch-current waveform of voltage source `vs` (amps,
    /// positive flowing from the positive terminal through the source).
    ///
    /// # Panics
    ///
    /// Panics if the source's current was not recorded.
    pub fn current_waveform(&self, vs: VSourceId) -> Waveform {
        let values = self
            .current_columns
            .get(&vs.0)
            .unwrap_or_else(|| panic!("current of source {} was not recorded", vs.0))
            .clone();
        Waveform::new(self.time.clone(), values)
    }
}

struct CapState {
    a: NodeId,
    b: NodeId,
    farads: f64,
    v: f64,
    i: f64,
}

impl Circuit {
    /// Runs a transient analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidSpec`] for a non-positive step or stop
    /// time, [`SpiceError::NoConvergence`] if a step fails even after
    /// halving the step 12 times, and [`SpiceError::SingularSystem`] for a
    /// structurally singular system.
    pub fn transient(&self, spec: &TransientSpec) -> Result<TransientResult, SpiceError> {
        let _span = rotsv_obs::span!("transient");
        if spec.dt <= 0.0 || !spec.dt.is_finite() {
            return Err(SpiceError::InvalidSpec(format!(
                "time step must be positive, got {}",
                spec.dt
            )));
        }
        if spec.t_stop <= 0.0 || !spec.t_stop.is_finite() {
            return Err(SpiceError::InvalidSpec(format!(
                "stop time must be positive, got {}",
                spec.t_stop
            )));
        }
        if let StepControl::Adaptive(c) = &spec.step {
            let sane = c.lte_reltol > 0.0
                && c.lte_abstol > 0.0
                && c.min_shrink > 0.0
                && c.min_shrink <= 1.0
                && c.max_stretch >= 1.0
                && c.max_growth > 1.0
                && c.reject_threshold >= 1.0;
            if !sane {
                return Err(SpiceError::InvalidSpec(format!(
                    "inconsistent adaptive step control: {c:?}"
                )));
            }
        }
        for &(node, _) in &spec.initial_voltages {
            if node.index() >= self.node_count() {
                return Err(SpiceError::InvalidCircuit(format!(
                    "initial condition on unknown node {node}"
                )));
            }
        }

        // Initial solution vector.
        let mut dc_stats = SolverStats::default();
        let mut x = if spec.start_from_dcop {
            let sol = self.dcop(&crate::dcop::DcOpSpec {
                initial_voltages: spec.initial_voltages.clone(),
                ..Default::default()
            })?;
            dc_stats = sol.stats();
            sol.into_vec()
        } else {
            let mut x0 = vec![0.0; self.unknown_count()];
            for &(node, v) in &spec.initial_voltages {
                if !node.is_ground() {
                    x0[node.index() - 1] = v;
                }
            }
            x0
        };

        // Wall-clock accounting starts *after* the seeding dcop: that
        // analysis stamped its own wall time into `dc_stats`, which the
        // final `merge` adds back, so every second of the run is counted
        // exactly once and merged totals stay comparable to an enclosing
        // span's wall time.
        let wall_start = Instant::now();
        let (newton_hist, lte_hist) = if rotsv_obs::metrics_enabled() {
            (
                Some(rotsv_obs::histogram("transient.newton_iters_per_step")),
                Some(rotsv_obs::histogram("transient.lte_step_seconds")),
            )
        } else {
            (None, None)
        };

        // Capacitor bookkeeping (in element order, matching CapMode::Companion).
        let mut caps: Vec<CapState> = self
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Capacitor { a, b, farads } => Some(CapState {
                    a: *a,
                    b: *b,
                    farads: *farads,
                    v: 0.0,
                    i: 0.0,
                }),
                _ => None,
            })
            .collect();
        for c in &mut caps {
            c.v = node_voltage(&x, c.a) - node_voltage(&x, c.b);
        }

        // Recording setup.
        let record_nodes: Vec<NodeId> = if spec.record_nodes.is_empty() {
            (0..self.node_count()).map(NodeId).collect()
        } else {
            let mut nodes = spec.record_nodes.clone();
            nodes.sort_unstable();
            nodes.dedup();
            nodes
        };
        let mut columns: BTreeMap<NodeId, Vec<f64>> =
            record_nodes.iter().map(|&n| (n, Vec::new())).collect();
        let mut current_columns: BTreeMap<usize, Vec<f64>> = spec
            .record_currents
            .iter()
            .map(|vs| (vs.0, Vec::new()))
            .collect();
        let n_node_unknowns = self.node_count() - 1;
        let mut time = Vec::new();
        let record = |t: f64,
                      x: &[f64],
                      time: &mut Vec<f64>,
                      columns: &mut BTreeMap<NodeId, Vec<f64>>,
                      currents: &mut BTreeMap<usize, Vec<f64>>| {
            time.push(t);
            for (&node, col) in columns.iter_mut() {
                col.push(node_voltage(x, node));
            }
            for (&branch, col) in currents.iter_mut() {
                col.push(x[n_node_unknowns + branch]);
            }
        };
        record(0.0, &x, &mut time, &mut columns, &mut current_columns);

        // Stop-condition tracking.
        let mut crossings_seen = 0usize;
        let mut stop_prev = spec
            .stop
            .as_ref()
            .map(|StopCondition::RisingCrossings { node, .. }| node_voltage(&x, *node));

        let mut ws = MnaWorkspace::new(self);
        let opts = NewtonOpts {
            max_iterations: spec.max_newton,
            ..NewtonOpts::default()
        };
        let mut companions = vec![(0.0f64, 0.0f64); caps.len()];

        let adaptive = match spec.step {
            StepControl::Fixed => None,
            StepControl::Adaptive(c) => Some(c),
        };
        let dt_min = adaptive.map_or(spec.dt, |c| spec.dt * c.min_shrink);
        let dt_max = adaptive.map_or(spec.dt, |c| spec.dt * c.max_stretch);
        // Step proposed for the next attempt (evolves only in adaptive mode).
        let mut dt_next = spec.dt;
        // Previous accepted solution and the step that led from it to `x`,
        // for the linear LTE predictor.
        let mut hist: Option<(Vec<f64>, f64)> = None;

        let mut t = 0.0f64;
        let mut steps = 0usize;
        let mut stopped_early = false;
        const MAX_HALVINGS: u32 = 12;

        'outer: while t < spec.t_stop - 1e-18 {
            let mut dt_try = dt_next.min(spec.t_stop - t);
            let mut halvings = 0u32;
            loop {
                // Startup steps use backward Euler regardless of method.
                let use_trap = spec.method == IntegrationMethod::Trapezoidal && steps >= 2;
                for (k, c) in caps.iter().enumerate() {
                    if c.farads == 0.0 {
                        companions[k] = (0.0, 0.0);
                    } else if use_trap {
                        let geq = 2.0 * c.farads / dt_try;
                        companions[k] = (geq, -(geq * c.v + c.i));
                    } else {
                        let geq = c.farads / dt_try;
                        companions[k] = (geq, -geq * c.v);
                    }
                }
                let t_next = t + dt_try;
                // Newton initial guess: linear extrapolation through the
                // last two accepted solutions. Same fixed point as
                // starting from `x` (delta-form Newton), but starting
                // closer saves iterations — the larger the step, the more
                // it saves, which is what makes big adaptive steps cheap.
                let x_start = match &hist {
                    Some((x_prev, dt_prev)) if steps >= 2 => {
                        let scale = dt_try / dt_prev;
                        x.iter()
                            .zip(x_prev)
                            .map(|(&xi, &pi)| xi + (xi - pi) * scale)
                            .collect()
                    }
                    _ => x.clone(),
                };
                let newton_before = ws.stats.newton_iterations;
                match newton_solve(
                    &mut ws,
                    self,
                    x_start,
                    t_next,
                    1.0,
                    self.gmin(),
                    CapMode::Companion(&companions),
                    &opts,
                ) {
                    Ok(sol) => {
                        // Local-truncation-error test: compare against the
                        // linear predictor through the last two accepted
                        // solutions.
                        if let (Some(c), Some((x_prev, dt_prev))) =
                            (adaptive.as_ref(), hist.as_ref())
                        {
                            if steps >= 2 {
                                let scale = dt_try / dt_prev;
                                let mut err = 0.0f64;
                                for i in 0..n_node_unknowns {
                                    let pred = x[i] + (x[i] - x_prev[i]) * scale;
                                    let tol =
                                        c.lte_abstol + c.lte_reltol * sol[i].abs().max(x[i].abs());
                                    err = err.max((sol[i] - pred).abs() / tol);
                                }
                                if err > c.reject_threshold && dt_try > dt_min * (1.0 + 1e-9) {
                                    ws.stats.steps_rejected += 1;
                                    dt_try =
                                        (dt_try * (0.9 / err.sqrt()).clamp(0.1, 0.5)).max(dt_min);
                                    continue;
                                }
                                // Accepted (forcibly so at dt_min): propose
                                // the next step from the error estimate —
                                // err > 1 shrinks it, err < 0.81 grows it.
                                let grow = (0.9 / err.max(1e-12).sqrt()).min(c.max_growth);
                                dt_next = (dt_try * grow).clamp(dt_min, dt_max);
                            }
                        }
                        for (k, c) in caps.iter_mut().enumerate() {
                            let v_new = node_voltage(&sol, c.a) - node_voltage(&sol, c.b);
                            let (geq, ieq) = companions[k];
                            c.i = geq * v_new + ieq;
                            c.v = v_new;
                        }
                        hist = Some((std::mem::replace(&mut x, sol), dt_try));
                        t = t_next;
                        steps += 1;
                        ws.stats.steps_accepted += 1;
                        if let Some(h) = &newton_hist {
                            h.observe((ws.stats.newton_iterations - newton_before) as f64);
                        }
                        if let Some(h) = &lte_hist {
                            h.observe(dt_try);
                        }
                        // Scalar engine has no lane: the ring still sees
                        // every accepted step so traces and drop counts
                        // stay engine-agnostic.
                        rotsv_obs::record_event(
                            rotsv_obs::EventKind::StepAccepted,
                            rotsv_obs::LANE_NONE,
                            (ws.stats.newton_iterations - newton_before) as u32,
                            dt_try,
                        );
                        record(t, &x, &mut time, &mut columns, &mut current_columns);
                        if let Some(StopCondition::RisingCrossings {
                            node,
                            threshold,
                            count,
                        }) = &spec.stop
                        {
                            let v_now = node_voltage(&x, *node);
                            let prev = stop_prev.replace(v_now).unwrap_or(v_now);
                            if prev < *threshold && v_now >= *threshold {
                                crossings_seen += 1;
                                if crossings_seen >= *count {
                                    stopped_early = true;
                                    break 'outer;
                                }
                            }
                        }
                        break;
                    }
                    Err(fail) => {
                        if let Some(err @ SpiceError::SingularSystem { .. }) = fail.error {
                            return Err(err);
                        }
                        ws.stats.steps_rejected += 1;
                        if adaptive.is_some() {
                            if dt_try <= dt_min * (1.0 + 1e-9) {
                                return Err(SpiceError::NoConvergence {
                                    analysis: "transient",
                                    time: t_next,
                                    iterations: fail.iterations,
                                });
                            }
                            dt_try = (dt_try * 0.5).max(dt_min);
                        } else {
                            halvings += 1;
                            if halvings > MAX_HALVINGS {
                                return Err(SpiceError::NoConvergence {
                                    analysis: "transient",
                                    time: t_next,
                                    iterations: fail.iterations,
                                });
                            }
                            dt_try *= 0.5;
                        }
                    }
                }
            }
        }

        let mut stats = ws.stats;
        // Stamp the loop-exclusive wall first, then merge the seeding
        // dcop's counters (including its wall) — the sum equals the
        // analysis total without double-counting the dcop.
        stats.wall_seconds = wall_start.elapsed().as_secs_f64();
        stats.merge(&dc_stats);
        Ok(TransientResult {
            time,
            columns,
            current_columns,
            stopped_early,
            steps_taken: steps,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    /// RC charging follows 1 − exp(−t/τ).
    #[test]
    fn rc_charge_matches_analytic() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(vin, vout, 1e3);
        ckt.add_capacitor(vout, Circuit::GROUND, 1e-9); // tau = 1 us
        let spec = TransientSpec::new(3e-6, 2e-9).record(&[vout]);
        let res = ckt.transient(&spec).unwrap();
        let w = res.waveform(vout);
        for frac in [0.5f64, 1.0, 2.0] {
            let t = frac * 1e-6;
            let expect = 1.0 - (-frac).exp();
            let got = w.value_at(t);
            assert!(
                (got - expect).abs() < 2e-4,
                "at t={t}: got {got}, expected {expect}"
            );
        }
    }

    /// Trapezoidal integration preserves the amplitude of an LC-free RC
    /// high-pass step: v_out jumps and decays exponentially.
    #[test]
    fn rc_highpass_step_decays() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::step(0.0, 1.0, 1e-7));
        ckt.add_capacitor(vin, vout, 1e-9);
        ckt.add_resistor(vout, Circuit::GROUND, 1e3); // tau = 1 us
        let spec = TransientSpec::new(2e-6, 1e-9).record(&[vout]);
        let res = ckt.transient(&spec).unwrap();
        let w = res.waveform(vout);
        // Just after the step the full swing appears across the resistor.
        assert!((w.value_at(1.05e-7) - 1.0).abs() < 0.1);
        // One tau later it has decayed to ~exp(-1).
        let got = w.value_at(1e-7 + 1e-6);
        assert!((got - (-1.0f64).exp()).abs() < 0.02, "got {got}");
    }

    #[test]
    fn initial_condition_is_applied() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor(a, Circuit::GROUND, 1e3);
        ckt.add_capacitor(a, Circuit::GROUND, 1e-9);
        let spec = TransientSpec::new(1e-6, 1e-9)
            .record(&[a])
            .initial_voltages(&[(a, 2.0)]);
        let res = ckt.transient(&spec).unwrap();
        let w = res.waveform(a);
        assert!((w.value_at(0.0) - 2.0).abs() < 1e-9);
        // Discharges with tau = 1 us.
        let got = w.value_at(1e-6);
        assert!((got - 2.0 * (-1.0f64).exp()).abs() < 5e-3, "got {got}");
    }

    #[test]
    fn backward_euler_also_converges_to_dc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(vin, vout, 1e3);
        ckt.add_capacitor(vout, Circuit::GROUND, 1e-9);
        let spec = TransientSpec::new(10e-6, 10e-9)
            .record(&[vout])
            .method(IntegrationMethod::BackwardEuler);
        let res = ckt.transient(&spec).unwrap();
        assert!((res.final_voltage(vout) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn stop_condition_ends_run_early() {
        // 1 MHz square-ish pulse; stop after 3 rising crossings of 0.5 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource(
            a,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 0.0,
                rise: 1e-8,
                fall: 1e-8,
                width: 4.8e-7,
                period: 1e-6,
            },
        );
        ckt.add_resistor(a, Circuit::GROUND, 1e3);
        let spec = TransientSpec::new(100e-6, 1e-8)
            .record(&[a])
            .stop_after_rising(a, 0.5, 3);
        let res = ckt.transient(&spec).unwrap();
        assert!(res.stopped_early());
        let t_end = *res.time().last().unwrap();
        assert!(
            t_end > 2e-6 && t_end < 2.2e-6,
            "stopped at {t_end}, expected just after the third rising edge"
        );
    }

    #[test]
    fn start_from_dcop_holds_steady_state() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(vin, vout, 1e3);
        ckt.add_capacitor(vout, Circuit::GROUND, 1e-9);
        let spec = TransientSpec::new(1e-6, 1e-9).record(&[vout]).from_dcop();
        let res = ckt.transient(&spec).unwrap();
        let w = res.waveform(vout);
        // Already at steady state: stays at 1 V throughout.
        assert!(w.values().iter().all(|v| (v - 1.0).abs() < 1e-6));
    }

    /// Regression test for wall-time accounting when a dcop seeds a
    /// transient: the merged `wall_seconds` (dcop + stepping loop) must
    /// track the wall time of the whole analysis — neither counting the
    /// dcop twice (merge after an all-inclusive stamp) nor dropping it
    /// (stamp after merge overwrites the dcop's share).
    #[test]
    fn dcop_seeded_wall_time_matches_outer_wall() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(vin, vout, 1e3);
        ckt.add_capacitor(vout, Circuit::GROUND, 1e-9);
        // Enough fixed steps that the loop dominates scheduling noise.
        let spec = TransientSpec::new(2e-5, 1e-9).record(&[vout]).from_dcop();
        let outer = Instant::now();
        let res = ckt.transient(&spec).unwrap();
        let outer = outer.elapsed().as_secs_f64();
        let merged = res.stats().wall_seconds;
        assert!(merged > 0.0, "wall time recorded");
        assert!(
            merged <= outer * 1.10 + 2e-3,
            "merged wall {merged} s exceeds outer wall {outer} s: dcop counted twice?"
        );
        assert!(
            merged >= outer * 0.5,
            "merged wall {merged} s far below outer wall {outer} s: a phase was dropped?"
        );
    }

    #[test]
    fn invalid_dt_is_rejected() {
        let ckt = Circuit::new();
        let err = ckt.transient(&TransientSpec::new(1e-6, 0.0)).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidSpec(_)));
        let err = ckt.transient(&TransientSpec::new(-1.0, 1e-9)).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidSpec(_)));
    }

    #[test]
    fn nonlinear_rc_with_diode_clamps() {
        use crate::device::test_devices::Diode;
        // Step drives an RC node clamped by a diode to ground: final value
        // well below the 5 V drive.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::step(0.0, 5.0, 0.0));
        ckt.add_resistor(vin, vout, 1e3);
        ckt.add_capacitor(vout, Circuit::GROUND, 1e-12);
        ckt.add_device(Box::new(Diode {
            nodes: [vout, Circuit::GROUND],
            i_sat: 1e-14,
            v_t: 0.02585,
        }));
        let spec = TransientSpec::new(50e-9, 0.05e-9).record(&[vout]);
        let res = ckt.transient(&spec).unwrap();
        let v_end = res.final_voltage(vout);
        assert!((0.5..0.9).contains(&v_end), "clamped at {v_end}");
    }

    #[test]
    fn supply_current_is_recorded() {
        // DC source across a resistor: constant branch current -V/R.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let vs = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(2.0));
        ckt.add_resistor(a, Circuit::GROUND, 1e3);
        let spec = TransientSpec::new(1e-8, 1e-9)
            .record(&[a])
            .record_currents(&[vs]);
        let res = ckt.transient(&spec).unwrap();
        let i = res.current_waveform(vs);
        // pos->through-source convention: current is -2 mA.
        assert!(
            (i.final_value() + 2e-3).abs() < 1e-8,
            "i = {}",
            i.final_value()
        );
    }

    #[test]
    fn waveform_of_unrecorded_node_panics() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(a, b, 1.0);
        ckt.add_resistor(b, Circuit::GROUND, 1.0);
        let res = ckt
            .transient(&TransientSpec::new(1e-9, 1e-10).record(&[a]))
            .unwrap();
        let r = std::panic::catch_unwind(|| res.waveform(b));
        assert!(r.is_err());
    }
}
