//! Circuit nodes.

use std::fmt;

/// Identifier of a circuit node.
///
/// Node 0 is always ground ([`crate::Circuit::GROUND`]); its voltage is
/// fixed at 0 V and it never appears among the MNA unknowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of this node (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_node_zero() {
        assert_eq!(NodeId::GROUND.index(), 0);
        assert!(NodeId::GROUND.is_ground());
        assert!(!NodeId(3).is_ground());
    }

    #[test]
    fn display_names_ground() {
        assert_eq!(NodeId::GROUND.to_string(), "gnd");
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
