//! Time-dependent waveforms for independent sources.

/// The value of an independent source as a function of time.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// A single step from `initial` to `final_value` at `at`, with a linear
    /// ramp of duration `rise` (zero rise gives an ideal step at `at`).
    Step {
        /// Value before the step.
        initial: f64,
        /// Value after the step.
        final_value: f64,
        /// Step time in seconds.
        at: f64,
        /// Ramp duration in seconds (may be zero).
        rise: f64,
    },
    /// A periodic pulse train (SPICE `PULSE` semantics).
    Pulse {
        /// Base value.
        low: f64,
        /// Pulsed value.
        high: f64,
        /// Delay before the first rising edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Time spent at `high` (excluding edges), seconds.
        width: f64,
        /// Full period, seconds.
        period: f64,
    },
    /// Piecewise-linear waveform given as `(time, value)` breakpoints in
    /// increasing time order; constant before the first and after the last.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWaveform {
    /// Constant source.
    pub fn dc(value: f64) -> Self {
        SourceWaveform::Dc(value)
    }

    /// Ideal step from `initial` to `final_value` at time `at`.
    pub fn step(initial: f64, final_value: f64, at: f64) -> Self {
        SourceWaveform::Step {
            initial,
            final_value,
            at,
            rise: 0.0,
        }
    }

    /// Step with a finite linear ramp.
    pub fn ramp_step(initial: f64, final_value: f64, at: f64, rise: f64) -> Self {
        SourceWaveform::Step {
            initial,
            final_value,
            at,
            rise,
        }
    }

    /// Source value at time `t` (t < 0 is treated as t = 0).
    pub fn value(&self, t: f64) -> f64 {
        let t = t.max(0.0);
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Step {
                initial,
                final_value,
                at,
                rise,
            } => {
                if t < *at {
                    *initial
                } else if *rise <= 0.0 || t >= at + rise {
                    *final_value
                } else {
                    let frac = (t - at) / rise;
                    initial + frac * (final_value - initial)
                }
            }
            SourceWaveform::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *low;
                }
                let tp = (t - delay) % period.max(f64::MIN_POSITIVE);
                if tp < *rise {
                    low + (high - low) * tp / rise.max(f64::MIN_POSITIVE)
                } else if tp < rise + width {
                    *high
                } else if tp < rise + width + fall {
                    high - (high - low) * (tp - rise - width) / fall.max(f64::MIN_POSITIVE)
                } else {
                    *low
                }
            }
            SourceWaveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// The DC (t = 0) value; used by the operating-point analysis.
    pub fn dc_value(&self) -> f64 {
        self.value(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = SourceWaveform::dc(1.1);
        assert_eq!(w.value(0.0), 1.1);
        assert_eq!(w.value(1e-3), 1.1);
    }

    #[test]
    fn ideal_step_switches_at_threshold() {
        let w = SourceWaveform::step(0.0, 1.0, 1e-9);
        assert_eq!(w.value(0.999e-9), 0.0);
        assert_eq!(w.value(1e-9), 1.0);
        assert_eq!(w.value(2e-9), 1.0);
    }

    #[test]
    fn ramp_step_interpolates() {
        let w = SourceWaveform::ramp_step(0.0, 2.0, 1e-9, 2e-9);
        assert_eq!(w.value(1e-9), 0.0);
        assert!((w.value(2e-9) - 1.0).abs() < 1e-12);
        assert!((w.value(3e-9) - 2.0).abs() < 1e-9);
        assert_eq!(w.value(10e-9), 2.0);
    }

    #[test]
    fn pulse_cycles_through_phases() {
        let w = SourceWaveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 4e-10,
            period: 1e-9,
        };
        assert_eq!(w.value(0.5e-9), 0.0); // before delay
        assert!((w.value(1e-9 + 0.5e-10) - 0.5).abs() < 1e-9); // mid rise
        assert_eq!(w.value(1e-9 + 3e-10), 1.0); // flat top
        assert!((w.value(1e-9 + 5.5e-10) - 0.5).abs() < 1e-9); // mid fall
        assert_eq!(w.value(1e-9 + 8e-10), 0.0); // low phase
        assert_eq!(w.value(2e-9 + 3e-10), 1.0); // next period flat top
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWaveform::Pwl(vec![(1.0, 0.0), (2.0, 10.0), (3.0, 10.0)]);
        assert_eq!(w.value(0.0), 0.0);
        assert_eq!(w.value(1.5), 5.0);
        assert_eq!(w.value(2.5), 10.0);
        assert_eq!(w.value(9.0), 10.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        assert_eq!(SourceWaveform::Pwl(vec![]).value(1.0), 0.0);
    }

    #[test]
    fn negative_time_clamps_to_zero() {
        let w = SourceWaveform::step(0.5, 1.0, 1e-9);
        assert_eq!(w.value(-1.0), 0.5);
    }
}
