//! Lane-batched transient analysis: a die queue streamed through K
//! asynchronous SIMD lanes.
//!
//! A Monte-Carlo population simulates hundreds of dies that share one
//! netlist and differ only in element *values* (process variation
//! perturbs threshold voltages and geometries, never connectivity). The
//! scalar engine pays the full per-transient cost per die; this module
//! amortizes everything that depends on topology alone across K lanes:
//!
//! * **one** symbolic LU analysis and pivot order for the whole queue
//!   ([`rotsv_num::sparse::BatchedLu`]),
//! * one stamp-coordinate walk and slot-replay sequence,
//! * structure-of-arrays device evaluation
//!   ([`crate::device::BatchedDeviceEval`]) with the lane index as the
//!   innermost, branch-free loop so the compiler autovectorizes it.
//!
//! Unlike the v1 lockstep engine (which marched all lanes on one shared
//! time grid, `dt = min` over lane proposals), lanes here are
//! **asynchronous**: the lockstep unit is one Newton *iteration*, not one
//! time step. Every lane carries its own clock, step size, Newton state,
//! integration history and factorization-staleness budget, and follows
//! the scalar engine's policies *per lane* — same Newton delta form,
//! damping, stall/staleness refresh, LTE test and step bounds, applied to
//! that lane alone. Each super-iteration assembles all lanes at their own
//! `(x, t)` trial points, performs one vectorized residual + solve, and
//! retires/advances lanes individually. Because every per-lane decision
//! depends only on that lane's values, **a die's trajectory is
//! bit-identical regardless of lane count, lane index, or which dies ride
//! alongside it** — the property the refill scheduler and the
//! chunked-vs-streamed cross-checks rely on.
//!
//! **Refill:** [`transient_queue`] seats the first K dies of the
//! population into the K lanes; whenever a lane finishes (its stop
//! condition fires or it reaches `t_stop`), the next queued die is seated
//! into that lane *mid-flight* — state, element values, device-bank
//! parameters and factorization flags are re-seeded from the incoming
//! die — so lanes never idle while work remains. Occupancy is observed
//! per super-iteration in the `mc.batch_occupancy` histogram, and the
//! `mc.dt_drag` histogram records, per accepted lane-step, the ratio of
//! the lane's accepted `dt` to the smallest `dt` among co-resident busy
//! lanes — the slow-lane drag a lockstep grid would have imposed (the
//! asynchronous engine grants every proposal, so this is the drag it
//! *eliminates*; cohort scheduling in `rotsv-core` shrinks it further by
//! co-seating dies of similar variation magnitude).
//!
//! The only shared numerical object is the symbolic pivot order. In the
//! pathological case where a lane's values defeat it, the re-analysis
//! replaces the order for every lane ([`BatchedLu::refactor_masked`]
//! reports this) and co-resident lanes get freshly factored — their
//! Newton iterations remain correct (the delta formulation tolerates any
//! factorization) but their trajectories may then differ from a solo run.
//! This never happens on the workloads in this repository and the scalar
//! engine has the same per-die fallback.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use rotsv_num::linsolve::SolveError;
use rotsv_num::simd::{ScalarLanes, Simd};
use rotsv_num::sparse::{
    AnalyzeOptions, BatchedLu, SolverStats, SparseMatrix, SymbolicCache, SymbolicLu,
};

use crate::circuit::{Circuit, Element};
use crate::device::{BatchedDeviceEval, DeviceStamp, NonlinearDevice};
use crate::error::SpiceError;
use crate::mna::{row_of, stamp_coords, NewtonOpts, STALL_RATIO};
use crate::node::NodeId;
use crate::source::SourceWaveform;
use crate::transient::{
    IntegrationMethod, StepControl, StopCondition, TransientResult, TransientSpec,
};

/// Per-element data precomputed at batch construction so `assemble`
/// never re-matches enum variants per lane.
enum BatchElem {
    /// Per-lane conductances.
    Resistor { a: NodeId, b: NodeId, g: Vec<f64> },
    /// Values arrive per step through the companion array.
    Capacitor { a: NodeId, b: NodeId },
    /// Per-lane waveforms (lanes may drive different VDD levels).
    VSource {
        pos: NodeId,
        neg: NodeId,
        branch: usize,
        waves: Vec<SourceWaveform>,
    },
    ISource {
        from: NodeId,
        to: NodeId,
        waves: Vec<SourceWaveform>,
    },
    /// Index into the device table.
    Device(usize),
}

/// How one nonlinear-device slot evaluates its K lanes.
enum DeviceKind {
    /// Structure-of-arrays lockstep kernel.
    Batched(Box<dyn BatchedDeviceEval>),
    /// Per-lane scalar fallback through [`NonlinearDevice::eval`].
    PerLane(DeviceStamp),
}

/// One nonlinear-device slot across all lanes, with lane-interleaved
/// scratch buffers.
struct BatchDevice {
    nodes: Vec<NodeId>,
    kind: DeviceKind,
    /// `terminals * k` trial voltages.
    vbuf: Vec<f64>,
    /// `terminals * k` terminal currents.
    cbuf: Vec<f64>,
    /// `terminals² * k` Jacobian entries, `[(r*t + c)*k + lane]`.
    jbuf: Vec<f64>,
}

/// Reusable assembly/factorization workspace for a K-lane batch over an
/// N-die population (`lane_die` maps each lane to its current die).
struct BatchWorkspace {
    k: usize,
    n: usize,
    n_node_unknowns: usize,
    gmin: f64,
    /// Shared sparsity pattern (values unused except as analysis probe).
    pattern: SparseMatrix,
    /// `nnz * k` lane-interleaved matrix values.
    values: Vec<f64>,
    /// `n * k` lane-interleaved right-hand side.
    b: Vec<f64>,
    /// CSR value-slot replay sequence, identical to the scalar engine's.
    slots: Vec<usize>,
    elems: Vec<BatchElem>,
    devices: Vec<BatchDevice>,
    lu: Option<BatchedLu>,
    cache: Option<Arc<SymbolicCache>>,
    /// Analysis options shared by every lane (inherited from the first
    /// circuit of the population).
    opts: AnalyzeOptions,
    /// Which die occupies each lane (index into the population).
    lane_die: Vec<usize>,
    /// Per-lane: are the stored LU factors usable?
    lu_valid: Vec<bool>,
    /// Per-lane: has the lane ever been factored (gates the
    /// skip-if-unchanged comparison against `last_factored`)?
    factored_once: Vec<bool>,
    /// `nnz * k` values at each lane's last factorization.
    last_factored: Vec<f64>,
    /// `k` scratch for the masked-refactor lane set.
    refactor_mask: Vec<bool>,
    /// `n * k` residual scratch.
    resid: Vec<f64>,
    /// `k` per-terminal rhs scratch.
    rhs: Vec<f64>,
    /// Per-**die** work counters (population order, length N).
    stats: Vec<SolverStats>,
}

/// The die population an engine streams: either borrowed up front (the
/// [`transient_batch`]/[`transient_queue`] form, population known and
/// fixed) or owned and grown mid-run as a [`transient_stream`] source
/// hands over newly admitted dies.
enum Population<'a> {
    /// The whole population, borrowed at construction.
    Borrowed(&'a [&'a Circuit]),
    /// An owned population that grows as the source yields circuits.
    Streamed(Vec<Arc<Circuit>>),
}

impl Population<'_> {
    fn len(&self) -> usize {
        match self {
            Population::Borrowed(s) => s.len(),
            Population::Streamed(v) => v.len(),
        }
    }

    fn get(&self, die: usize) -> &Circuit {
        match self {
            Population::Borrowed(s) => s[die],
            Population::Streamed(v) => &v[die],
        }
    }

    /// Borrows every die (construction-time use only; the hot paths
    /// index through [`Population::get`]).
    fn refs(&self) -> Vec<&Circuit> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    fn push(&mut self, ckt: Arc<Circuit>) {
        match self {
            Population::Streamed(v) => v.push(ckt),
            Population::Borrowed(_) => {
                unreachable!("only a streaming engine pulls from a source")
            }
        }
    }
}

/// Checks that every die has the topology of die 0: same nodes, same
/// element sequence (kinds, terminals, branches), same gmin. Values
/// (resistances, capacitances, waveforms, device parameters) may differ.
fn validate_topology(ckts: &[&Circuit]) -> Result<(), SpiceError> {
    let c0 = ckts[0];
    for (lane, c) in ckts.iter().enumerate().skip(1) {
        let mismatch = |what: &str| {
            Err(SpiceError::InvalidCircuit(format!(
                "batch lane {lane} differs from lane 0 in {what}"
            )))
        };
        if c.node_count() != c0.node_count() {
            return mismatch("node count");
        }
        if c.vsource_count() != c0.vsource_count() {
            return mismatch("voltage-source count");
        }
        if c.element_count() != c0.element_count() {
            return mismatch("element count");
        }
        if c.gmin() != c0.gmin() {
            return mismatch("gmin");
        }
        for (ei, (e0, e)) in c0.elements.iter().zip(&c.elements).enumerate() {
            let same = match (e0, e) {
                (Element::Resistor { a, b, .. }, Element::Resistor { a: a2, b: b2, .. }) => {
                    a == a2 && b == b2
                }
                (Element::Capacitor { a, b, .. }, Element::Capacitor { a: a2, b: b2, .. }) => {
                    a == a2 && b == b2
                }
                (
                    Element::VSource {
                        pos, neg, branch, ..
                    },
                    Element::VSource {
                        pos: p2,
                        neg: n2,
                        branch: b2,
                        ..
                    },
                ) => pos == p2 && neg == n2 && branch == b2,
                (
                    Element::ISource { from, to, .. },
                    Element::ISource {
                        from: f2, to: t2, ..
                    },
                ) => from == f2 && to == t2,
                (Element::Nonlinear(d0), Element::Nonlinear(d)) => d0.nodes() == d.nodes(),
                _ => false,
            };
            if !same {
                return mismatch(&format!("element {ei}"));
            }
        }
    }
    Ok(())
}

impl BatchWorkspace {
    /// Builds a K-lane workspace over the population `ckts`, seating dies
    /// `0..k` into the lanes initially.
    fn new(ckts: &[&Circuit], k: usize) -> Result<Self, SpiceError> {
        validate_topology(ckts)?;
        let c0 = ckts[0];
        let n = c0.unknown_count();
        let coords = stamp_coords(c0);
        let (pattern, slots) = SparseMatrix::from_coords(n, &coords);
        let seated = &ckts[..k];

        let mut elems = Vec::with_capacity(c0.elements.len());
        let mut devices = Vec::new();
        for (ei, elem) in c0.elements.iter().enumerate() {
            elems.push(match elem {
                Element::Resistor { a, b, .. } => {
                    let g = seated
                        .iter()
                        .map(|c| match &c.elements[ei] {
                            Element::Resistor { ohms, .. } => 1.0 / ohms,
                            _ => unreachable!("validated topology"),
                        })
                        .collect();
                    BatchElem::Resistor { a: *a, b: *b, g }
                }
                Element::Capacitor { a, b, .. } => BatchElem::Capacitor { a: *a, b: *b },
                Element::VSource {
                    pos, neg, branch, ..
                } => {
                    let waves = seated
                        .iter()
                        .map(|c| match &c.elements[ei] {
                            Element::VSource { wave, .. } => wave.clone(),
                            _ => unreachable!("validated topology"),
                        })
                        .collect();
                    BatchElem::VSource {
                        pos: *pos,
                        neg: *neg,
                        branch: *branch,
                        waves,
                    }
                }
                Element::ISource { from, to, .. } => {
                    let waves = seated
                        .iter()
                        .map(|c| match &c.elements[ei] {
                            Element::ISource { wave, .. } => wave.clone(),
                            _ => unreachable!("validated topology"),
                        })
                        .collect();
                    BatchElem::ISource {
                        from: *from,
                        to: *to,
                        waves,
                    }
                }
                Element::Nonlinear(d0) => {
                    let lanes: Vec<&dyn NonlinearDevice> = seated
                        .iter()
                        .map(|c| match &c.elements[ei] {
                            Element::Nonlinear(d) => d.as_ref(),
                            _ => unreachable!("validated topology"),
                        })
                        .collect();
                    let nt = d0.nodes().len();
                    let kind = match d0.batch_with(&lanes) {
                        Some(b) => DeviceKind::Batched(b),
                        None => DeviceKind::PerLane(DeviceStamp::new(nt)),
                    };
                    devices.push(BatchDevice {
                        nodes: d0.nodes().to_vec(),
                        kind,
                        vbuf: vec![0.0; nt * k],
                        cbuf: vec![0.0; nt * k],
                        jbuf: vec![0.0; nt * nt * k],
                    });
                    BatchElem::Device(devices.len() - 1)
                }
            });
        }

        Ok(Self {
            k,
            n,
            n_node_unknowns: c0.node_count() - 1,
            gmin: c0.gmin(),
            values: vec![0.0; pattern.nnz() * k],
            b: vec![0.0; n * k],
            last_factored: vec![0.0; pattern.nnz() * k],
            pattern,
            slots,
            elems,
            devices,
            lu: None,
            cache: c0.symbolic_cache().cloned(),
            opts: c0.solver_options(),
            lane_die: (0..k).collect(),
            lu_valid: vec![false; k],
            factored_once: vec![false; k],
            refactor_mask: vec![false; k],
            resid: vec![0.0; n * k],
            rhs: vec![0.0; k],
            stats: vec![SolverStats::default(); ckts.len()],
        })
    }

    /// Seats `die` into `lane`: re-extracts that lane's element values
    /// (conductances, waveforms), re-seats or rebuilds the device banks,
    /// and invalidates the lane's stored LU factors. The caller re-seeds
    /// the dynamic state (`x`, capacitor history, lane clock).
    fn reseat_lane(&mut self, ckts: &Population, lane: usize, die: usize) {
        self.lane_die[lane] = die;
        self.lu_valid[lane] = false;
        self.factored_once[lane] = false;
        let c = ckts.get(die);
        for (ei, elem) in self.elems.iter_mut().enumerate() {
            match elem {
                BatchElem::Resistor { g, .. } => {
                    let Element::Resistor { ohms, .. } = &c.elements[ei] else {
                        unreachable!("validated topology");
                    };
                    g[lane] = 1.0 / ohms;
                }
                BatchElem::Capacitor { .. } => {}
                BatchElem::VSource { waves, .. } => {
                    let Element::VSource { wave, .. } = &c.elements[ei] else {
                        unreachable!("validated topology");
                    };
                    waves[lane] = wave.clone();
                }
                BatchElem::ISource { waves, .. } => {
                    let Element::ISource { wave, .. } = &c.elements[ei] else {
                        unreachable!("validated topology");
                    };
                    waves[lane] = wave.clone();
                }
                BatchElem::Device(di) => {
                    let Element::Nonlinear(d) = &c.elements[ei] else {
                        unreachable!("validated topology");
                    };
                    let dev = &mut self.devices[*di];
                    let rebuild = match &mut dev.kind {
                        // O(1) in-place re-seat when the bank accepts the
                        // incoming device (uniform shared parameters).
                        DeviceKind::Batched(bank) => !bank.reseat_lane(lane, d.as_ref()),
                        // Per-lane fallback reads `ckts[lane_die[lane]]`
                        // directly at stamp time — nothing to update.
                        DeviceKind::PerLane(_) => false,
                    };
                    if rebuild {
                        let lanes_refs: Vec<&dyn NonlinearDevice> = self
                            .lane_die
                            .iter()
                            .map(|&ld| match &ckts.get(ld).elements[ei] {
                                Element::Nonlinear(dd) => dd.as_ref(),
                                _ => unreachable!("validated topology"),
                            })
                            .collect();
                        dev.kind = match lanes_refs[0].batch_with(&lanes_refs) {
                            Some(b) => DeviceKind::Batched(b),
                            None => DeviceKind::PerLane(DeviceStamp::new(dev.nodes.len())),
                        };
                    }
                }
            }
        }
    }

    /// Adds per-lane values into one CSR slot.
    #[inline]
    fn add_lanes(values: &mut [f64], k: usize, slot: usize, g: &[f64], sign: f64) {
        let dst = &mut values[slot * k..(slot + 1) * k];
        for lane in 0..k {
            dst[lane] += sign * g[lane];
        }
    }

    /// Stamps a two-terminal conductance (per-lane values `g`) following
    /// the scalar engine's slot order; returns the advanced cursor.
    fn stamp_conductance(&mut self, mut cursor: usize, a: NodeId, b: NodeId, g: &[f64]) -> usize {
        let k = self.k;
        match (row_of(a), row_of(b)) {
            (Some(_), Some(_)) => {
                Self::add_lanes(&mut self.values, k, self.slots[cursor], g, 1.0);
                Self::add_lanes(&mut self.values, k, self.slots[cursor + 1], g, 1.0);
                Self::add_lanes(&mut self.values, k, self.slots[cursor + 2], g, -1.0);
                Self::add_lanes(&mut self.values, k, self.slots[cursor + 3], g, -1.0);
                cursor += 4;
            }
            (Some(_), None) | (None, Some(_)) => {
                Self::add_lanes(&mut self.values, k, self.slots[cursor], g, 1.0);
                cursor += 1;
            }
            (None, None) => {}
        }
        cursor
    }

    /// Dispatches to the monomorphized assembly for the common lane
    /// counts; the dynamic body is the fallback (and the reference: each
    /// pair of arms performs bit-identical per-lane arithmetic).
    fn assemble(&mut self, ckts: &Population, x: &[f64], t: &[f64], companions: &[(f64, f64)]) {
        match self.k {
            1 => self.assemble_k::<1>(ckts, x, t, companions),
            2 => self.assemble_k::<2>(ckts, x, t, companions),
            3 => self.assemble_k::<3>(ckts, x, t, companions),
            4 => self.assemble_k::<4>(ckts, x, t, companions),
            5 => self.assemble_k::<5>(ckts, x, t, companions),
            6 => self.assemble_k::<6>(ckts, x, t, companions),
            7 => self.assemble_k::<7>(ckts, x, t, companions),
            8 => self.assemble_k::<8>(ckts, x, t, companions),
            16 => self.assemble_k::<16>(ckts, x, t, companions),
            32 => self.assemble_k::<32>(ckts, x, t, companions),
            64 => self.assemble_k::<64>(ckts, x, t, companions),
            _ => self.assemble_dyn(ckts, x, t, companions),
        }
    }

    /// Monomorphized assembly for `K == self.k`: dispatches the lane
    /// sweeps to the widest SIMD arm `K` is a multiple of. Identical
    /// stamp order and per-lane arithmetic to
    /// [`BatchWorkspace::assemble_dyn`] on every arm, so the dispatch
    /// decision never changes a transient.
    fn assemble_k<const K: usize>(
        &mut self,
        ckts: &Population,
        x: &[f64],
        t: &[f64],
        companions: &[(f64, f64)],
    ) {
        debug_assert_eq!(self.k, K);
        #[cfg(target_arch = "x86_64")]
        {
            use rotsv_num::simd::{self, Level};
            let level = simd::level();
            if K.is_multiple_of(8) && level == Level::Avx512 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.assemble_avx512::<K>(ckts, x, t, companions) };
            }
            if K.is_multiple_of(4) && level >= Level::Avx2 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.assemble_avx2::<K>(ckts, x, t, companions) };
            }
        }
        // SAFETY: the scalar arm has no ISA requirements.
        unsafe { self.assemble_body::<K, ScalarLanes>(ckts, x, t, companions) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    fn assemble_avx512<const K: usize>(
        &mut self,
        ckts: &Population,
        x: &[f64],
        t: &[f64],
        companions: &[(f64, f64)],
    ) {
        // SAFETY: caller verified avx512f; we are in a matching region.
        unsafe { self.assemble_body::<K, rotsv_num::simd::Avx512Lanes>(ckts, x, t, companions) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn assemble_avx2<const K: usize>(
        &mut self,
        ckts: &Population,
        x: &[f64],
        t: &[f64],
        companions: &[(f64, f64)],
    ) {
        // SAFETY: caller verified avx2; we are in a matching region.
        unsafe { self.assemble_body::<K, rotsv_num::simd::Avx2Lanes>(ckts, x, t, companions) }
    }

    /// The assembly sweep, generic over the ISA token. Each lane is
    /// evaluated at its own time `t[lane]` (lanes step asynchronously);
    /// waveform evaluation and the capacitor-companion gathers stay
    /// scalar (strided or call-bearing), the value/rhs lane loops run in
    /// `K / S::W` vector chunks.
    ///
    /// # Safety
    ///
    /// `S`'s ISA must be available and enabled in the enclosing region;
    /// `K` must be a multiple of `S::W` and equal `self.k`.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    unsafe fn assemble_body<const K: usize, S: Simd>(
        &mut self,
        ckts: &Population,
        x: &[f64],
        t: &[f64],
        companions: &[(f64, f64)],
    ) {
        debug_assert_eq!(K % S::W, 0);
        self.values.fill(0.0);
        self.b.fill(0.0);
        let mut cursor = 0usize;
        // SAFETY (lane chunks throughout): every `slot * K` / `row * K`
        // group is K f64s inside `self.values` / `self.b`, sized at
        // construction; chunks are W-aligned within a group.
        unsafe {
            let gmin = S::splat(self.gmin);
            for _ in 0..self.n_node_unknowns {
                let slot = self.slots[cursor];
                let dst = self.values.as_mut_ptr().add(slot * K);
                for c in (0..K).step_by(S::W) {
                    S::st(dst.add(c), S::add(S::ld(dst.add(c)), gmin));
                }
                cursor += 1;
            }
        }
        let mut cap_idx = 0usize;
        // Move the element list out so `self` stays borrowable.
        let elems = std::mem::take(&mut self.elems);
        for (ei, elem) in elems.iter().enumerate() {
            match elem {
                BatchElem::Resistor { a, b, g } => {
                    // SAFETY: propagated from the caller.
                    cursor = unsafe { self.stamp_conductance_body::<K, S>(cursor, *a, *b, g) };
                }
                BatchElem::Capacitor { a, b } => {
                    let base = cap_idx * K;
                    let mut g = [0.0; K];
                    for lane in 0..K {
                        g[lane] = companions[base + lane].0;
                    }
                    // SAFETY: propagated from the caller.
                    cursor = unsafe { self.stamp_conductance_body::<K, S>(cursor, *a, *b, &g) };
                    if let Some(ra) = row_of(*a) {
                        for lane in 0..K {
                            self.b[ra * K + lane] -= companions[base + lane].1;
                        }
                    }
                    if let Some(rb) = row_of(*b) {
                        for lane in 0..K {
                            self.b[rb * K + lane] += companions[base + lane].1;
                        }
                    }
                    cap_idx += 1;
                }
                BatchElem::VSource {
                    pos,
                    neg,
                    branch,
                    waves,
                } => {
                    let rb = self.n_node_unknowns + branch;
                    // SAFETY: see the lane-chunk note above.
                    unsafe {
                        let one = S::splat(1.0);
                        if row_of(*pos).is_some() {
                            for s in [self.slots[cursor], self.slots[cursor + 1]] {
                                let dst = self.values.as_mut_ptr().add(s * K);
                                for c in (0..K).step_by(S::W) {
                                    S::st(dst.add(c), S::add(S::ld(dst.add(c)), one));
                                }
                            }
                            cursor += 2;
                        }
                        if row_of(*neg).is_some() {
                            for s in [self.slots[cursor], self.slots[cursor + 1]] {
                                let dst = self.values.as_mut_ptr().add(s * K);
                                for c in (0..K).step_by(S::W) {
                                    S::st(dst.add(c), S::sub(S::ld(dst.add(c)), one));
                                }
                            }
                            cursor += 2;
                        }
                    }
                    for (lane, wave) in waves.iter().enumerate() {
                        self.b[rb * K + lane] = wave.value(t[lane]);
                    }
                }
                BatchElem::ISource { from, to, waves } => {
                    for (lane, wave) in waves.iter().enumerate() {
                        let i = wave.value(t[lane]);
                        if let Some(rf) = row_of(*from) {
                            self.b[rf * K + lane] -= i;
                        }
                        if let Some(rt) = row_of(*to) {
                            self.b[rt * K + lane] += i;
                        }
                    }
                }
                BatchElem::Device(di) => {
                    // SAFETY: propagated from the caller.
                    cursor = unsafe { self.stamp_device_body::<K, S>(ckts, ei, *di, x, cursor) };
                }
            }
        }
        self.elems = elems;
        debug_assert_eq!(cursor, self.slots.len(), "stamp replay out of sync");
    }

    /// Two-terminal conductance stamp, vector-chunked (see
    /// [`BatchWorkspace::stamp_conductance`]). The `sign * g` multiply
    /// matches the dynamic body (`-1.0 * g`, not a sign-bit flip).
    ///
    /// # Safety
    ///
    /// Same contract as [`BatchWorkspace::assemble_body`].
    #[inline(always)]
    unsafe fn stamp_conductance_body<const K: usize, S: Simd>(
        &mut self,
        mut cursor: usize,
        a: NodeId,
        b: NodeId,
        g: &[f64],
    ) -> usize {
        let g = &g[..K];
        let gp = g.as_ptr();
        // SAFETY: see the lane-chunk note in `assemble_body`.
        unsafe {
            match (row_of(a), row_of(b)) {
                (Some(_), Some(_)) => {
                    for (off, sign) in [(0, 1.0), (1, 1.0), (2, -1.0), (3, -1.0)] {
                        let sv = S::splat(sign);
                        let dst = self.values.as_mut_ptr().add(self.slots[cursor + off] * K);
                        for c in (0..K).step_by(S::W) {
                            let add = S::mul(sv, S::ld(gp.add(c)));
                            S::st(dst.add(c), S::add(S::ld(dst.add(c)), add));
                        }
                    }
                    cursor += 4;
                }
                (Some(_), None) | (None, Some(_)) => {
                    let dst = self.values.as_mut_ptr().add(self.slots[cursor] * K);
                    for c in (0..K).step_by(S::W) {
                        S::st(dst.add(c), S::add(S::ld(dst.add(c)), S::ld(gp.add(c))));
                    }
                    cursor += 1;
                }
                (None, None) => {}
            }
        }
        cursor
    }

    /// Device stamp: gather, evaluate, Norton-accumulate with the
    /// per-terminal right-hand side held in a vector register per chunk.
    /// The `tj` accumulation order per lane matches the dynamic body
    /// (chunk-outer, `tj`-inner; lanes are independent).
    ///
    /// # Safety
    ///
    /// Same contract as [`BatchWorkspace::assemble_body`].
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    unsafe fn stamp_device_body<const K: usize, S: Simd>(
        &mut self,
        ckts: &Population,
        elem_idx: usize,
        dev_idx: usize,
        x: &[f64],
        mut cursor: usize,
    ) -> usize {
        let dev = &mut self.devices[dev_idx];
        let nt = dev.nodes.len();
        for (ti, &node) in dev.nodes.iter().enumerate() {
            match row_of(node) {
                Some(r) => dev.vbuf[ti * K..(ti + 1) * K].copy_from_slice(&x[r * K..(r + 1) * K]),
                None => dev.vbuf[ti * K..(ti + 1) * K].fill(0.0),
            }
        }
        match &mut dev.kind {
            DeviceKind::Batched(bank) => {
                bank.eval_lanes(&dev.vbuf, &mut dev.cbuf, &mut dev.jbuf);
            }
            DeviceKind::PerLane(stamp) => {
                let mut v = vec![0.0; nt];
                for lane in 0..K {
                    let Element::Nonlinear(d) = &ckts.get(self.lane_die[lane]).elements[elem_idx]
                    else {
                        unreachable!("validated topology");
                    };
                    for ti in 0..nt {
                        v[ti] = dev.vbuf[ti * K + lane];
                    }
                    stamp.clear();
                    d.eval(&v, stamp);
                    for ti in 0..nt {
                        dev.cbuf[ti * K + lane] = stamp.current[ti];
                        for tj in 0..nt {
                            dev.jbuf[(ti * nt + tj) * K + lane] = stamp.jacobian[(ti, tj)];
                        }
                    }
                }
            }
        }
        let cbp = dev.cbuf.as_ptr();
        let jbp = dev.jbuf.as_ptr();
        let vbp = dev.vbuf.as_ptr();
        let vp = self.values.as_mut_ptr();
        let bp = self.b.as_mut_ptr();
        for (ti, &nk_node) in dev.nodes.iter().enumerate() {
            let Some(rk) = row_of(nk_node) else { continue };
            // Each chunk replays the `tj` sweep with its own cursor so
            // every (ti, tj) slot is stamped exactly once per chunk.
            let cursor_ti = cursor;
            // SAFETY: see the lane-chunk note in `assemble_body`; cbuf /
            // jbuf / vbuf hold nt·K / nt²·K / nt·K f64s.
            unsafe {
                for c in (0..K).step_by(S::W) {
                    let mut cur = cursor_ti;
                    let mut rhs = S::neg(S::ld(cbp.add(ti * K + c)));
                    for (tj, &nj_node) in dev.nodes.iter().enumerate() {
                        let jrow = S::ld(jbp.add((ti * nt + tj) * K + c));
                        rhs = S::add(rhs, S::mul(jrow, S::ld(vbp.add(tj * K + c))));
                        if row_of(nj_node).is_some() {
                            let slot = self.slots[cur];
                            cur += 1;
                            let dst = vp.add(slot * K + c);
                            S::st(dst, S::add(S::ld(dst), jrow));
                        }
                    }
                    let dst = bp.add(rk * K + c);
                    S::st(dst, S::add(S::ld(dst), rhs));
                    cursor = cur;
                }
            }
        }
        cursor
    }

    /// Assembles all lanes at the interleaved iterate `x`, per-lane times
    /// `t[lane]`. `companions[cap*k + lane]` holds the Norton `(geq,
    /// ieq)` pair of each capacitor (always companion mode: a batched run
    /// is always a transient). Idle lanes are stamped at their frozen
    /// state — their values stay finite and are never solved or factored.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn assemble_dyn(&mut self, ckts: &Population, x: &[f64], t: &[f64], companions: &[(f64, f64)]) {
        let k = self.k;
        self.values.fill(0.0);
        self.b.fill(0.0);
        let mut cursor = 0usize;
        for _ in 0..self.n_node_unknowns {
            let slot = self.slots[cursor];
            let dst = &mut self.values[slot * k..(slot + 1) * k];
            for lane in 0..k {
                dst[lane] += self.gmin;
            }
            cursor += 1;
        }
        let mut cap_idx = 0usize;
        // Move the element list out so `self` stays borrowable.
        let elems = std::mem::take(&mut self.elems);
        for (ei, elem) in elems.iter().enumerate() {
            match elem {
                BatchElem::Resistor { a, b, g } => {
                    cursor = self.stamp_conductance(cursor, *a, *b, g);
                }
                BatchElem::Capacitor { a, b } => {
                    let base = cap_idx * k;
                    // Reuse the rhs scratch to carry per-lane geq.
                    for lane in 0..k {
                        self.rhs[lane] = companions[base + lane].0;
                    }
                    let g = std::mem::take(&mut self.rhs);
                    cursor = self.stamp_conductance(cursor, *a, *b, &g);
                    self.rhs = g;
                    if let Some(ra) = row_of(*a) {
                        for lane in 0..k {
                            self.b[ra * k + lane] -= companions[base + lane].1;
                        }
                    }
                    if let Some(rb) = row_of(*b) {
                        for lane in 0..k {
                            self.b[rb * k + lane] += companions[base + lane].1;
                        }
                    }
                    cap_idx += 1;
                }
                BatchElem::VSource {
                    pos,
                    neg,
                    branch,
                    waves,
                } => {
                    let rb = self.n_node_unknowns + branch;
                    if row_of(*pos).is_some() {
                        for s in [self.slots[cursor], self.slots[cursor + 1]] {
                            for lane in 0..k {
                                self.values[s * k + lane] += 1.0;
                            }
                        }
                        cursor += 2;
                    }
                    if row_of(*neg).is_some() {
                        for s in [self.slots[cursor], self.slots[cursor + 1]] {
                            for lane in 0..k {
                                self.values[s * k + lane] -= 1.0;
                            }
                        }
                        cursor += 2;
                    }
                    for (lane, wave) in waves.iter().enumerate() {
                        self.b[rb * k + lane] = wave.value(t[lane]);
                    }
                }
                BatchElem::ISource { from, to, waves } => {
                    for (lane, wave) in waves.iter().enumerate() {
                        let i = wave.value(t[lane]);
                        if let Some(rf) = row_of(*from) {
                            self.b[rf * k + lane] -= i;
                        }
                        if let Some(rt) = row_of(*to) {
                            self.b[rt * k + lane] += i;
                        }
                    }
                }
                BatchElem::Device(di) => {
                    cursor = self.stamp_device(ckts, ei, *di, x, cursor);
                }
            }
        }
        self.elems = elems;
        debug_assert_eq!(cursor, self.slots.len(), "stamp replay out of sync");
    }

    /// Evaluates and stamps one device slot across all lanes.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn stamp_device(
        &mut self,
        ckts: &Population,
        elem_idx: usize,
        dev_idx: usize,
        x: &[f64],
        mut cursor: usize,
    ) -> usize {
        let k = self.k;
        let dev = &mut self.devices[dev_idx];
        let nt = dev.nodes.len();
        // Gather lane-interleaved terminal voltages.
        for (ti, &node) in dev.nodes.iter().enumerate() {
            match row_of(node) {
                Some(r) => dev.vbuf[ti * k..(ti + 1) * k].copy_from_slice(&x[r * k..(r + 1) * k]),
                None => dev.vbuf[ti * k..(ti + 1) * k].fill(0.0),
            }
        }
        match &mut dev.kind {
            DeviceKind::Batched(bank) => {
                bank.eval_lanes(&dev.vbuf, &mut dev.cbuf, &mut dev.jbuf);
            }
            DeviceKind::PerLane(stamp) => {
                let mut v = vec![0.0; nt];
                for lane in 0..k {
                    let Element::Nonlinear(d) = &ckts.get(self.lane_die[lane]).elements[elem_idx]
                    else {
                        unreachable!("validated topology");
                    };
                    for ti in 0..nt {
                        v[ti] = dev.vbuf[ti * k + lane];
                    }
                    stamp.clear();
                    d.eval(&v, stamp);
                    for ti in 0..nt {
                        dev.cbuf[ti * k + lane] = stamp.current[ti];
                        for tj in 0..nt {
                            dev.jbuf[(ti * nt + tj) * k + lane] = stamp.jacobian[(ti, tj)];
                        }
                    }
                }
            }
        }
        // Norton linearization, lane loops innermost (see the scalar
        // engine for the formulation).
        for (ti, &nk_node) in dev.nodes.iter().enumerate() {
            let Some(rk) = row_of(nk_node) else { continue };
            for lane in 0..k {
                self.rhs[lane] = -dev.cbuf[ti * k + lane];
            }
            for (tj, &nj_node) in dev.nodes.iter().enumerate() {
                let jbase = (ti * nt + tj) * k;
                for lane in 0..k {
                    self.rhs[lane] += dev.jbuf[jbase + lane] * dev.vbuf[tj * k + lane];
                }
                if row_of(nj_node).is_some() {
                    let slot = self.slots[cursor];
                    cursor += 1;
                    let dst = &mut self.values[slot * k..(slot + 1) * k];
                    for lane in 0..k {
                        dst[lane] += dev.jbuf[jbase + lane];
                    }
                }
            }
            for lane in 0..k {
                self.b[rk * k + lane] += self.rhs[lane];
            }
        }
        cursor
    }

    /// (Re)factors the lanes whose refresh policy fired (`want`),
    /// per-lane: each wanted lane whose values changed since its last
    /// factorization is swept individually (bit-identical to any other
    /// lane composition), unchanged lanes keep their factors (the scalar
    /// skip-if-unchanged, applied per lane).
    ///
    /// Counter attribution keeps population sums meaningful: symbolic
    /// analyses are charged to die 0 only (the queue performs
    /// O(topologies) analyses, not O(dies)), while factorizations are
    /// charged to the die seated in each factored lane.
    ///
    /// If pivot drift in a factored lane forces a shared re-analysis,
    /// every other lane's factors die with the old pivot order; the busy
    /// ones are refreshed here from their current assembled values (their
    /// delta-form Newton iterations stay correct with fresh factors).
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn refactor_lanes(&mut self, t: f64, want: &[bool], busy: &[bool]) -> Result<(), SpiceError> {
        let k = self.k;
        let nnz = self.pattern.nnz();
        let map_err = |source| SpiceError::SingularSystem { time: t, source };
        let mut any = false;
        for lane in 0..k {
            let mut need = false;
            if want[lane] {
                need = true;
                if self.lu_valid[lane] && self.factored_once[lane] {
                    let unchanged = (0..nnz)
                        .all(|s| self.values[s * k + lane] == self.last_factored[s * k + lane]);
                    if unchanged {
                        need = false;
                    }
                }
            }
            self.refactor_mask[lane] = need;
            any |= need;
        }
        if !any {
            return Ok(());
        }
        if self.lu.is_none() {
            // First factorization: analyze (or fetch from the shared
            // cache) using the first wanted lane's values as the probe.
            // Every lane shares the pattern, so the pivot order transfers;
            // a lane it fails for triggers the masked re-analysis below.
            let probe_lane = (0..k).find(|&l| self.refactor_mask[l]).unwrap_or(0);
            let mut probe = self.pattern.clone();
            probe.zero_values();
            for s in 0..nnz {
                probe.add_slot(s, self.values[s * k + probe_lane]);
            }
            let (sym, analyses) = match &self.cache {
                Some(cache) => {
                    let (sym, fresh) = cache
                        .symbolic_for_with(&probe, self.opts)
                        .map_err(map_err)?;
                    (sym, u64::from(fresh))
                }
                None => (
                    Arc::new(SymbolicLu::analyze_with(&probe, self.opts).map_err(map_err)?),
                    1,
                ),
            };
            self.stats[0].symbolic_analyses += analyses;
            self.lu = Some(BatchedLu::new(sym, k));
        }
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            if rounds > 4 {
                // Two lanes ping-ponging the shared pivot order — no
                // order satisfies the batch.
                return Err(map_err(SolveError::Singular { column: 0 }));
            }
            let lu = self.lu.as_mut().expect("installed above");
            let (analyses, invalidated) = lu
                .refactor_masked(&self.pattern, &self.values, &self.refactor_mask)
                .map_err(map_err)?;
            self.stats[0].symbolic_analyses += analyses;
            if analyses > 0 && rotsv_obs::events_enabled() {
                // Pivot drift forced a shared re-analysis; attribute the
                // instant to the first lane factored this round (the one
                // whose values broke the old order, or its successor).
                let culprit = (0..k).find(|&l| self.refactor_mask[l]).unwrap_or(0);
                rotsv_obs::record_event(
                    rotsv_obs::EventKind::Reanalysis,
                    culprit as u32,
                    analyses as u32,
                    0.0,
                );
            }
            for lane in 0..k {
                if !self.refactor_mask[lane] {
                    continue;
                }
                self.stats[self.lane_die[lane]].factorizations += 1;
                self.lu_valid[lane] = true;
                self.factored_once[lane] = true;
                for s in 0..nnz {
                    self.last_factored[s * k + lane] = self.values[s * k + lane];
                }
            }
            if !invalidated {
                return Ok(());
            }
            // The shared pivot order changed: every unmasked lane's
            // stored factors are gone. Refresh the busy ones now (their
            // assembled values are current); idle lanes are refreshed
            // when a refill re-seats them.
            let mut any2 = false;
            for lane in 0..k {
                let died = !self.refactor_mask[lane];
                if died {
                    self.lu_valid[lane] = false;
                }
                self.refactor_mask[lane] = died && busy[lane];
                any2 |= self.refactor_mask[lane];
            }
            if !any2 {
                return Ok(());
            }
        }
    }
}

/// Per-lane capacitor history (voltage across and branch current).
#[derive(Clone, Copy, Default)]
struct CapLane {
    v: f64,
    i: f64,
}

/// Where a lane is inside its current time step.
#[derive(Clone, Copy, PartialEq)]
enum LanePhase {
    /// Begin a fresh step: pick `dt_try` from `dt_next`, reset halvings.
    StartStep,
    /// Redo the current step at the already-shrunk `dt_try`.
    Retry,
    /// Mid-Newton on the current trial step.
    Newton,
}

/// Outcome of one super-iteration for one lane.
#[derive(Clone, Copy, PartialEq)]
enum Outcome {
    /// Still iterating (or idle).
    Pending,
    /// Newton converged; step acceptance (LTE) pending.
    Converged,
    /// Newton exhausted its budget or produced a non-finite update.
    Failed,
}

/// The scalar transient-stepping state of one lane, advanced per lane
/// with exactly the scalar engine's policies.
#[derive(Clone, Copy)]
struct LaneState {
    busy: bool,
    phase: LanePhase,
    /// Lane clock: last accepted time.
    t: f64,
    /// End time of the current trial step.
    t_next: f64,
    /// Current trial step size.
    dt_try: f64,
    /// Next step-size proposal (LTE-grown).
    dt_next: f64,
    /// Size of the last accepted step (predictor/LTE reference).
    dt_prev: f64,
    /// Is `x_prev` valid for this lane?
    has_hist: bool,
    /// Accepted steps on this lane's current die.
    steps: usize,
    /// Newton-failure halvings within the current step (fixed grid).
    halvings: u32,
    /// Newton iterations spent on the current trial step.
    iter: usize,
    prev_rnorm: f64,
    prev_damped: bool,
    /// Iterations since this lane's factors were refreshed.
    stale_iters: usize,
    /// Rising crossings seen so far (stop condition).
    crossings: usize,
    /// Stop-node voltage at the previous accepted step.
    stop_prev: f64,
}

/// Reads node voltage of `lane` from a lane-interleaved vector.
#[inline]
fn lane_voltage(x: &[f64], k: usize, node: NodeId, lane: usize) -> f64 {
    match row_of(node) {
        Some(r) => x[r * k + lane],
        None => 0.0,
    }
}

const MAX_HALVINGS: u32 = 12;

/// The asynchronous K-lane engine streaming an N-die queue.
struct QueueEngine<'a> {
    ckts: Population<'a>,
    spec: &'a TransientSpec,
    ws: BatchWorkspace,
    k: usize,
    n: usize,
    n_node_unknowns: usize,
    /// Initial unknown vector shared by every die.
    x0: Vec<f64>,
    /// `n * k` last accepted solution per lane.
    x: Vec<f64>,
    /// `n * k` Newton iterate per lane.
    x_try: Vec<f64>,
    /// `n * k` previous accepted solution per lane (predictor/LTE).
    x_prev: Vec<f64>,
    cap_nodes: Vec<(NodeId, NodeId)>,
    /// `caps * k` per-lane capacitances.
    farads: Vec<f64>,
    /// `caps * k` per-lane Norton companions of the current trial step.
    companions: Vec<(f64, f64)>,
    /// `caps * k` per-lane integration history.
    caps: Vec<CapLane>,
    /// `k` per-lane evaluation times (busy: trial end; idle: frozen).
    t_eval: Vec<f64>,
    lanes: Vec<LaneState>,
    /// Per-die recording (population order).
    time: Vec<Vec<f64>>,
    columns: Vec<BTreeMap<NodeId, Vec<f64>>>,
    current_columns: Vec<BTreeMap<usize, Vec<f64>>>,
    stopped_early: Vec<bool>,
    steps_taken: Vec<usize>,
    /// Next queued die (population index).
    next_die: usize,
    /// Recorded-node template, kept so streamed dies admitted mid-run
    /// get the same column layout as the initial population.
    record_nodes: Vec<NodeId>,
    /// Per-lane seat instants; a streamed die's `wall_seconds` is its
    /// lane-resident time (seat to retire).
    seat_at: Vec<Instant>,
    /// Streaming source, pulled (non-blockingly) at lane retirement
    /// once the initial population is exhausted.
    source: Option<&'a mut dyn FnMut() -> Option<Arc<Circuit>>>,
    /// Streaming sink: each die's result is delivered the moment it
    /// retires, keeping recorded waveforms O(active lanes).
    sink: Option<&'a mut dyn FnMut(usize, TransientResult)>,
    /// Dies delivered through `sink`.
    delivered: usize,
}

impl<'a> QueueEngine<'a> {
    fn new(ckts: Population<'a>, k: usize, spec: &'a TransientSpec) -> Result<Self, SpiceError> {
        let ws = {
            let refs = ckts.refs();
            BatchWorkspace::new(&refs, k)?
        };
        let n = ws.n;
        let n_node_unknowns = ws.n_node_unknowns;
        let n_dies = ckts.len();

        let mut x0 = vec![0.0f64; n];
        for &(node, v) in &spec.initial_voltages {
            if let Some(r) = row_of(node) {
                x0[r] = v;
            }
        }

        let cap_nodes: Vec<(NodeId, NodeId)> = ckts
            .get(0)
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Capacitor { a, b, .. } => Some((*a, *b)),
                _ => None,
            })
            .collect();
        let n_caps = cap_nodes.len();

        let record_nodes: Vec<NodeId> = if spec.record_nodes.is_empty() {
            (0..ckts.get(0).node_count()).map(NodeId).collect()
        } else {
            let mut nodes = spec.record_nodes.clone();
            nodes.sort_unstable();
            nodes.dedup();
            nodes
        };
        let columns: Vec<BTreeMap<NodeId, Vec<f64>>> = (0..n_dies)
            .map(|_| record_nodes.iter().map(|&nd| (nd, Vec::new())).collect())
            .collect();
        let current_columns: Vec<BTreeMap<usize, Vec<f64>>> = (0..n_dies)
            .map(|_| {
                spec.record_currents
                    .iter()
                    .map(|vs| (vs.0, Vec::new()))
                    .collect()
            })
            .collect();

        Ok(Self {
            ckts,
            spec,
            ws,
            k,
            n,
            n_node_unknowns,
            x0,
            x: vec![0.0; n * k],
            x_try: vec![0.0; n * k],
            x_prev: vec![0.0; n * k],
            cap_nodes,
            farads: vec![0.0; n_caps * k],
            companions: vec![(0.0, 0.0); n_caps * k],
            caps: vec![CapLane::default(); n_caps * k],
            t_eval: vec![0.0; k],
            lanes: vec![
                LaneState {
                    busy: false,
                    phase: LanePhase::StartStep,
                    t: 0.0,
                    t_next: 0.0,
                    dt_try: spec.dt,
                    dt_next: spec.dt,
                    dt_prev: spec.dt,
                    has_hist: false,
                    steps: 0,
                    halvings: 0,
                    iter: 0,
                    prev_rnorm: f64::INFINITY,
                    prev_damped: false,
                    stale_iters: 0,
                    crossings: 0,
                    stop_prev: 0.0,
                };
                k
            ],
            time: vec![Vec::new(); n_dies],
            columns,
            current_columns,
            stopped_early: vec![false; n_dies],
            steps_taken: vec![0usize; n_dies],
            next_die: 0,
            record_nodes,
            seat_at: vec![Instant::now(); k],
            source: None,
            sink: None,
            delivered: 0,
        })
    }

    /// Appends the current accepted state of `lane` to its die's record.
    fn record(&mut self, die: usize, lane: usize, t: f64) {
        let k = self.k;
        self.time[die].push(t);
        for (&node, col) in self.columns[die].iter_mut() {
            col.push(match row_of(node) {
                Some(r) => self.x[r * k + lane],
                None => 0.0,
            });
        }
        for (&branch, col) in self.current_columns[die].iter_mut() {
            col.push(self.x[(self.n_node_unknowns + branch) * k + lane]);
        }
    }

    /// Seats `die` into `lane` at its own t = 0: re-seeds the unknown
    /// vector, capacitor values and history, lane clock and stop
    /// tracking, re-extracts the lane's element values and device-bank
    /// parameters, and invalidates the lane's factors. The incoming
    /// die's variation deltas and waveforms come from its own circuit
    /// (index-deterministic per die), so trajectories are independent of
    /// when and where the die is seated.
    fn seat(&mut self, lane: usize, die: usize) {
        let k = self.k;
        for i in 0..self.n {
            self.x[i * k + lane] = self.x0[i];
            self.x_try[i * k + lane] = self.x0[i];
        }
        let c = self.ckts.get(die);
        let mut ci = 0usize;
        for e in &c.elements {
            if let Element::Capacitor { farads: f, .. } = e {
                self.farads[ci * k + lane] = *f;
                ci += 1;
            }
        }
        for (ci, &(a, b)) in self.cap_nodes.iter().enumerate() {
            let v = lane_voltage(&self.x, k, a, lane) - lane_voltage(&self.x, k, b, lane);
            self.caps[ci * k + lane] = CapLane { v, i: 0.0 };
        }
        self.t_eval[lane] = 0.0;
        let stop_prev = match &self.spec.stop {
            Some(StopCondition::RisingCrossings { node, .. }) => {
                lane_voltage(&self.x, k, *node, lane)
            }
            None => 0.0,
        };
        self.lanes[lane] = LaneState {
            busy: true,
            phase: LanePhase::StartStep,
            t: 0.0,
            t_next: 0.0,
            dt_try: self.spec.dt,
            dt_next: self.spec.dt,
            dt_prev: self.spec.dt,
            has_hist: false,
            steps: 0,
            halvings: 0,
            iter: 0,
            prev_rnorm: f64::INFINITY,
            prev_damped: false,
            stale_iters: 0,
            crossings: 0,
            stop_prev,
        };
        self.ws.reseat_lane(&self.ckts, lane, die);
        self.seat_at[lane] = Instant::now();
        self.record(die, lane, 0.0);
    }

    /// The super-iteration loop: one Newton iteration across all busy
    /// lanes per pass, with per-lane trial setup, step acceptance,
    /// retirement and refill around it.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn run(&mut self) -> Result<(), SpiceError> {
        let opts = NewtonOpts {
            max_iterations: self.spec.max_newton,
            ..NewtonOpts::default()
        };
        let adaptive = match self.spec.step {
            StepControl::Fixed => None,
            StepControl::Adaptive(c) => Some(c),
        };
        let dt_min = adaptive.map_or(self.spec.dt, |c| self.spec.dt * c.min_shrink);
        let dt_max = adaptive.map_or(self.spec.dt, |c| self.spec.dt * c.max_stretch);
        let t_stop = self.spec.t_stop;
        let trap = self.spec.method == IntegrationMethod::Trapezoidal;
        let k = self.k;
        let n = self.n;
        let n_nodes = self.n_node_unknowns;
        let n_caps = self.cap_nodes.len();
        let occupancy_hist =
            rotsv_obs::metrics_enabled().then(|| rotsv_obs::histogram("mc.batch_occupancy"));
        let drag_hist = rotsv_obs::metrics_enabled().then(|| rotsv_obs::histogram("mc.dt_drag"));
        // Same per-accepted-step observations the scalar transient makes,
        // so manifests keep these histograms regardless of engine choice.
        let newton_hist = rotsv_obs::metrics_enabled()
            .then(|| rotsv_obs::histogram("transient.newton_iters_per_step"));
        let lte_hist = rotsv_obs::metrics_enabled()
            .then(|| rotsv_obs::histogram("transient.lte_step_seconds"));
        // Same idiom for the event ring: one relaxed load up front, then
        // a plain bool on the hot paths. Ring pushes never block — on
        // overflow they drop and count.
        let ring = rotsv_obs::events_enabled();

        let mut delta = vec![0.0f64; n * k];
        let mut rnorm = vec![0.0f64; k];
        let mut want = vec![false; k];
        let mut busy = vec![false; k];
        let mut outcome = vec![Outcome::Pending; k];
        // Occupancy only moves on retire/refill; recording the counter
        // track on change keeps the ring footprint proportional to the
        // number of seatings, not super-iterations.
        let mut last_occ = usize::MAX;

        while self.lanes.iter().any(|l| l.busy) {
            // Trial setup for lanes starting (or redoing) a step.
            for lane in 0..k {
                busy[lane] = self.lanes[lane].busy;
                if !busy[lane] || self.lanes[lane].phase == LanePhase::Newton {
                    continue;
                }
                {
                    let ls = &mut self.lanes[lane];
                    if ls.phase == LanePhase::StartStep {
                        ls.dt_try = ls.dt_next.min(t_stop - ls.t);
                        ls.halvings = 0;
                    }
                    ls.t_next = ls.t + ls.dt_try;
                }
                let ls = self.lanes[lane];
                let use_trap = trap && ls.steps >= 2;
                for ci in 0..n_caps {
                    let idx = ci * k + lane;
                    let c = self.caps[idx];
                    let f = self.farads[idx];
                    self.companions[idx] = if f == 0.0 {
                        (0.0, 0.0)
                    } else if use_trap {
                        let geq = 2.0 * f / ls.dt_try;
                        (geq, -(geq * c.v + c.i))
                    } else {
                        let geq = f / ls.dt_try;
                        (geq, -geq * c.v)
                    };
                }
                // Linear extrapolation start (the scalar predictor),
                // else restart from the last accepted solution.
                if ls.has_hist && ls.steps >= 2 {
                    let scale = ls.dt_try / ls.dt_prev;
                    for i in 0..n {
                        let xi = self.x[i * k + lane];
                        self.x_try[i * k + lane] = xi + (xi - self.x_prev[i * k + lane]) * scale;
                    }
                } else {
                    for i in 0..n {
                        self.x_try[i * k + lane] = self.x[i * k + lane];
                    }
                }
                self.t_eval[lane] = ls.t_next;
                let ls = &mut self.lanes[lane];
                ls.iter = 0;
                ls.prev_rnorm = f64::INFINITY;
                ls.prev_damped = false;
                ls.phase = LanePhase::Newton;
            }

            // One Newton iteration across all busy lanes: assemble every
            // lane at its own (x_try, t), one vectorized residual + solve.
            for lane in 0..k {
                if busy[lane] {
                    self.ws.stats[self.ws.lane_die[lane]].newton_iterations += 1;
                }
            }
            self.ws
                .assemble(&self.ckts, &self.x_try, &self.t_eval, &self.companions);
            let mut resid = std::mem::take(&mut self.ws.resid);
            self.ws
                .pattern
                .mul_vec_lanes_into(&self.ws.values, k, &self.x_try, &mut resid);
            for (ri, bi) in resid.iter_mut().zip(&self.ws.b) {
                *ri = *bi - *ri;
            }
            rnorm.fill(0.0);
            for i in 0..n {
                for (lane, rn) in rnorm.iter_mut().enumerate() {
                    *rn = rn.max(resid[i * k + lane].abs());
                }
            }
            // Per-lane refresh policy, exactly the scalar rules applied
            // to each lane's own state.
            for lane in 0..k {
                want[lane] = false;
                if !busy[lane] {
                    continue;
                }
                let ls = self.lanes[lane];
                let stalled = !ls.prev_damped && rnorm[lane] > STALL_RATIO * ls.prev_rnorm;
                want[lane] = !self.ws.lu_valid[lane]
                    || ls.stale_iters >= opts.max_stale
                    || stalled
                    || ls.prev_damped;
            }
            let t_repr = (0..k)
                .find(|&l| want[l])
                .map(|l| self.t_eval[l])
                .unwrap_or(0.0);
            if let Err(e) = self.ws.refactor_lanes(t_repr, &want, &busy) {
                self.ws.resid = resid;
                return Err(e);
            }
            for lane in 0..k {
                if busy[lane] {
                    if want[lane] {
                        self.lanes[lane].stale_iters = 0;
                    } else {
                        self.lanes[lane].stale_iters += 1;
                    }
                }
            }
            delta.copy_from_slice(&resid);
            self.ws.resid = resid;
            self.ws
                .lu
                .as_mut()
                .expect("factorization exists after refactor")
                .solve_in_place(&mut delta);
            for lane in 0..k {
                if busy[lane] {
                    self.ws.stats[self.ws.lane_die[lane]].solves += 1;
                    self.lanes[lane].prev_rnorm = rnorm[lane];
                }
            }

            // Per-lane convergence, damping and update application.
            for lane in 0..k {
                outcome[lane] = Outcome::Pending;
                if !busy[lane] {
                    continue;
                }
                let mut max_dv = 0.0f64;
                let mut finite = true;
                for i in 0..n {
                    let d = delta[i * k + lane];
                    finite &= d.is_finite();
                    if i < n_nodes {
                        max_dv = max_dv.max(d.abs());
                    }
                }
                if !finite {
                    outcome[lane] = Outcome::Failed;
                    continue;
                }
                let mut converged = max_dv <= opts.v_abstol;
                if !converged {
                    converged = (0..n_nodes).all(|i| {
                        let d = delta[i * k + lane];
                        d.abs()
                            <= opts.v_abstol + opts.reltol * (self.x_try[i * k + lane] + d).abs()
                    });
                }
                if converged {
                    for i in 0..n {
                        self.x_try[i * k + lane] += delta[i * k + lane];
                    }
                    outcome[lane] = Outcome::Converged;
                    continue;
                }
                let damped = max_dv > opts.v_step_limit;
                let s = if damped {
                    opts.v_step_limit / max_dv
                } else {
                    1.0
                };
                for i in 0..n {
                    self.x_try[i * k + lane] += s * delta[i * k + lane];
                }
                let ls = &mut self.lanes[lane];
                ls.prev_damped = damped;
                ls.iter += 1;
                if ls.iter >= opts.max_iterations {
                    outcome[lane] = Outcome::Failed;
                }
            }

            // The smallest trial dt among busy lanes: the lockstep grid a
            // v1-style engine would have imposed on everyone.
            let mut min_dt = f64::INFINITY;
            for lane in 0..k {
                if busy[lane] {
                    min_dt = min_dt.min(self.lanes[lane].dt_try);
                }
            }

            // Step outcomes: LTE accept/reject, retirement, refill.
            for lane in 0..k {
                match outcome[lane] {
                    Outcome::Pending => {}
                    Outcome::Converged => {
                        let ls = self.lanes[lane];
                        if let Some(c) = adaptive.as_ref() {
                            if ls.steps >= 2 && ls.has_hist {
                                let scale = ls.dt_try / ls.dt_prev;
                                let mut err = 0.0f64;
                                for i in 0..n_nodes {
                                    let xi = self.x[i * k + lane];
                                    let pred = xi + (xi - self.x_prev[i * k + lane]) * scale;
                                    let sol = self.x_try[i * k + lane];
                                    let tol = c.lte_abstol + c.lte_reltol * sol.abs().max(xi.abs());
                                    err = err.max((sol - pred).abs() / tol);
                                }
                                if err > c.reject_threshold && ls.dt_try > dt_min * (1.0 + 1e-9) {
                                    self.ws.stats[self.ws.lane_die[lane]].steps_rejected += 1;
                                    let ls = &mut self.lanes[lane];
                                    ls.dt_try = (ls.dt_try * (0.9 / err.sqrt()).clamp(0.1, 0.5))
                                        .max(dt_min);
                                    ls.phase = LanePhase::Retry;
                                    continue;
                                }
                                let grow = (0.9 / err.max(1e-12).sqrt()).min(c.max_growth);
                                self.lanes[lane].dt_next = (ls.dt_try * grow).clamp(dt_min, dt_max);
                            }
                        }
                        // Accept: commit capacitor history, roll the
                        // solution, advance the lane clock.
                        for ci in 0..n_caps {
                            let idx = ci * k + lane;
                            let (a, b) = self.cap_nodes[ci];
                            let v_new = lane_voltage(&self.x_try, k, a, lane)
                                - lane_voltage(&self.x_try, k, b, lane);
                            let (geq, ieq) = self.companions[idx];
                            self.caps[idx].i = geq * v_new + ieq;
                            self.caps[idx].v = v_new;
                        }
                        for i in 0..n {
                            let idx = i * k + lane;
                            self.x_prev[idx] = self.x[idx];
                            self.x[idx] = self.x_try[idx];
                        }
                        {
                            let ls = &mut self.lanes[lane];
                            ls.dt_prev = ls.dt_try;
                            ls.has_hist = true;
                            ls.t = ls.t_next;
                            ls.steps += 1;
                        }
                        let die = self.ws.lane_die[lane];
                        self.ws.stats[die].steps_accepted += 1;
                        self.steps_taken[die] += 1;
                        let t_now = self.lanes[lane].t;
                        self.record(die, lane, t_now);
                        if let Some(h) = &drag_hist {
                            h.observe(self.lanes[lane].dt_prev / min_dt);
                        }
                        if let Some(h) = &newton_hist {
                            // `iter` counts the non-converging iterations of
                            // this attempt; the converging one makes +1,
                            // matching the scalar engine's per-solve count.
                            h.observe((ls.iter + 1) as f64);
                        }
                        if let Some(h) = &lte_hist {
                            h.observe(self.lanes[lane].dt_prev);
                        }
                        if ring {
                            rotsv_obs::record_event(
                                rotsv_obs::EventKind::StepAccepted,
                                lane as u32,
                                (ls.iter + 1) as u32,
                                ls.dt_try,
                            );
                        }
                        let mut finished = false;
                        let mut early = false;
                        if let Some(StopCondition::RisingCrossings {
                            node,
                            threshold,
                            count,
                        }) = &self.spec.stop
                        {
                            let v_now = lane_voltage(&self.x, k, *node, lane);
                            let ls = &mut self.lanes[lane];
                            let prev = ls.stop_prev;
                            ls.stop_prev = v_now;
                            if prev < *threshold && v_now >= *threshold {
                                ls.crossings += 1;
                                if ls.crossings >= *count {
                                    finished = true;
                                    early = true;
                                }
                            }
                        }
                        if !finished && t_now >= t_stop - 1e-18 {
                            finished = true;
                        }
                        if finished {
                            self.stopped_early[die] = early;
                            self.lanes[lane].busy = false;
                            if ring {
                                rotsv_obs::record_event(
                                    rotsv_obs::EventKind::LaneRetire,
                                    lane as u32,
                                    die as u32,
                                    0.0,
                                );
                            }
                            if self.sink.is_some() {
                                self.deliver(die, lane);
                            }
                            if let Some(incoming) = self.pull_next()? {
                                if ring {
                                    rotsv_obs::record_event(
                                        rotsv_obs::EventKind::LaneRefill,
                                        lane as u32,
                                        incoming as u32,
                                        0.0,
                                    );
                                }
                                self.seat(lane, incoming);
                            }
                        } else {
                            self.lanes[lane].phase = LanePhase::StartStep;
                        }
                    }
                    Outcome::Failed => {
                        self.ws.stats[self.ws.lane_die[lane]].steps_rejected += 1;
                        let ls = &mut self.lanes[lane];
                        if adaptive.is_some() {
                            if ls.dt_try <= dt_min * (1.0 + 1e-9) {
                                return Err(SpiceError::NoConvergence {
                                    analysis: "transient_batch",
                                    time: ls.t_next,
                                    iterations: opts.max_iterations,
                                });
                            }
                            ls.dt_try = (ls.dt_try * 0.5).max(dt_min);
                        } else {
                            ls.halvings += 1;
                            if ls.halvings > MAX_HALVINGS {
                                return Err(SpiceError::NoConvergence {
                                    analysis: "transient_batch",
                                    time: ls.t_next,
                                    iterations: opts.max_iterations,
                                });
                            }
                            ls.dt_try *= 0.5;
                        }
                        ls.phase = LanePhase::Retry;
                    }
                }
            }

            if occupancy_hist.is_some() || ring {
                let n_busy = busy.iter().filter(|&&b| b).count();
                if let Some(h) = &occupancy_hist {
                    h.observe(n_busy as f64 / k as f64);
                }
                if ring && n_busy != last_occ {
                    last_occ = n_busy;
                    rotsv_obs::record_event(
                        rotsv_obs::EventKind::Occupancy,
                        n_busy as u32,
                        k as u32,
                        n_busy as f64 / k as f64,
                    );
                }
            }
        }
        Ok(())
    }

    /// Hands a retired die's recorded waveforms to the streaming sink.
    /// The per-die vectors are taken, not cloned, so a long-running
    /// stream holds recorded data only for dies still in flight.
    /// `wall_seconds` is the die's lane-resident time (seat to retire);
    /// summing dies approximates `k ×` the stream's wall clock.
    fn deliver(&mut self, die: usize, lane: usize) {
        let time = std::mem::take(&mut self.time[die]);
        let columns = std::mem::take(&mut self.columns[die]);
        let current_columns = std::mem::take(&mut self.current_columns[die]);
        let mut stats = self.ws.stats[die];
        stats.wall_seconds = self.seat_at[lane].elapsed().as_secs_f64();
        let res = TransientResult::from_parts(
            time,
            columns,
            current_columns,
            self.stopped_early[die],
            self.steps_taken[die],
            stats,
        );
        if let Some(sink) = self.sink.as_deref_mut() {
            sink(die, res);
        }
        self.delivered += 1;
    }

    /// Picks the next die to seat: the remaining initial population
    /// first, then (in streaming mode) one non-blocking pull from the
    /// source. A sourced circuit is topology-checked against die 0 and
    /// given freshly grown per-die recording storage.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidCircuit`] when the source yields a
    /// circuit whose topology differs from the population's.
    fn pull_next(&mut self) -> Result<Option<usize>, SpiceError> {
        if self.next_die < self.ckts.len() {
            let die = self.next_die;
            self.next_die += 1;
            return Ok(Some(die));
        }
        let Some(source) = self.source.as_deref_mut() else {
            return Ok(None);
        };
        let Some(ckt) = source() else {
            return Ok(None);
        };
        validate_topology(&[self.ckts.get(0), ckt.as_ref()])?;
        self.ckts.push(ckt);
        self.time.push(Vec::new());
        self.columns.push(
            self.record_nodes
                .iter()
                .map(|&nd| (nd, Vec::new()))
                .collect(),
        );
        self.current_columns.push(
            self.spec
                .record_currents
                .iter()
                .map(|vs| (vs.0, Vec::new()))
                .collect(),
        );
        self.stopped_early.push(false);
        self.steps_taken.push(0);
        self.ws.stats.push(SolverStats::default());
        let die = self.next_die;
        self.next_die += 1;
        Ok(Some(die))
    }

    /// Consumes the engine into per-die results, in population order.
    fn into_results(self, wall: f64) -> Vec<TransientResult> {
        let n_dies = self.ckts.len();
        let mut out = Vec::with_capacity(n_dies);
        for (die, ((time, columns), current_columns)) in self
            .time
            .into_iter()
            .zip(self.columns)
            .zip(self.current_columns)
            .enumerate()
        {
            let mut stats = self.ws.stats[die];
            // Wall time split equally per die: summing dies matches the
            // whole queue's wall clock.
            stats.wall_seconds = wall / n_dies as f64;
            out.push(TransientResult::from_parts(
                time,
                columns,
                current_columns,
                self.stopped_early[die],
                self.steps_taken[die],
                stats,
            ));
        }
        out
    }
}

fn validate_spec(ckts: &[&Circuit], spec: &TransientSpec) -> Result<(), SpiceError> {
    if spec.dt <= 0.0 || !spec.dt.is_finite() {
        return Err(SpiceError::InvalidSpec(format!(
            "time step must be positive, got {}",
            spec.dt
        )));
    }
    if spec.t_stop <= 0.0 || !spec.t_stop.is_finite() {
        return Err(SpiceError::InvalidSpec(format!(
            "stop time must be positive, got {}",
            spec.t_stop
        )));
    }
    if spec.start_from_dcop {
        return Err(SpiceError::InvalidSpec(
            "batched transient does not support start_from_dcop".into(),
        ));
    }
    if let StepControl::Adaptive(c) = &spec.step {
        let sane = c.lte_reltol > 0.0
            && c.lte_abstol > 0.0
            && c.min_shrink > 0.0
            && c.min_shrink <= 1.0
            && c.max_stretch >= 1.0
            && c.max_growth > 1.0
            && c.reject_threshold >= 1.0;
        if !sane {
            return Err(SpiceError::InvalidSpec(format!(
                "inconsistent adaptive step control: {c:?}"
            )));
        }
    }
    for &(node, _) in &spec.initial_voltages {
        if node.index() >= ckts[0].node_count() {
            return Err(SpiceError::InvalidCircuit(format!(
                "initial condition on unknown node {node}"
            )));
        }
    }
    Ok(())
}

/// Runs one transient analysis per circuit with all of them sharing one
/// K-wide SIMD workspace, `K == ckts.len()` (no refill queue). Each die's
/// trajectory follows the scalar stepping policies independently and is
/// bit-identical to any other lane composition containing it — see
/// [`transient_queue`] for the streaming form.
///
/// All lanes share `spec` (grid, stop condition, recorded nodes); lanes
/// differ through their circuits' element values. Per-lane
/// [`SolverStats`] attribute symbolic analyses to lane 0 only and split
/// wall time equally, so summing lanes matches the batch totals.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidCircuit`] when the lanes' topologies
/// differ, [`SpiceError::InvalidSpec`] for a bad grid or a
/// `start_from_dcop` request (the batched engine starts from
/// `initial_voltages` only — ring measurements never use a dcop seed),
/// and the scalar engine's convergence/singularity errors otherwise.
pub fn transient_batch(
    ckts: &[&Circuit],
    spec: &TransientSpec,
) -> Result<Vec<TransientResult>, SpiceError> {
    transient_queue(ckts, ckts.len(), spec)
}

/// Streams the `ckts` die queue through `lanes` SIMD lanes with
/// mid-transient refill: when a lane's die finishes (stop condition or
/// `t_stop`), the next queued die is seated into the lane immediately, so
/// lanes stay busy until the queue drains. Results are returned in
/// population order.
///
/// Because every stepping decision is per-lane, the per-die results are
/// **bit-identical** to [`transient_batch`] over the same dies at any
/// lane count — refill and lane assignment are pure scheduling.
///
/// # Errors
///
/// As [`transient_batch`]; an unrecoverable lane (Newton failure at the
/// minimum step, singular system) aborts the whole queue, matching the
/// scalar engine's per-die error behavior.
pub fn transient_queue(
    ckts: &[&Circuit],
    lanes: usize,
    spec: &TransientSpec,
) -> Result<Vec<TransientResult>, SpiceError> {
    if ckts.is_empty() {
        return Ok(Vec::new());
    }
    validate_spec(ckts, spec)?;
    let k = lanes.clamp(1, ckts.len());
    let span = rotsv_obs::span!("transient_batch", "k" = k);
    let _ = &span;
    let mut eng = QueueEngine::new(Population::Borrowed(ckts), k, spec)?;
    let wall_start = Instant::now();
    let ring = rotsv_obs::events_enabled();
    let dropped_before = ring.then(|| rotsv_obs::event_ring().dropped());
    for lane in 0..k {
        if ring {
            rotsv_obs::record_event(
                rotsv_obs::EventKind::LaneSeat,
                lane as u32,
                lane as u32,
                0.0,
            );
        }
        eng.seat(lane, lane);
    }
    eng.next_die = k;
    eng.run()?;
    let wall = wall_start.elapsed().as_secs_f64();
    // First-class drop accounting: anything the ring shed during this
    // run surfaces as a counter the agreement suite asserts to be zero.
    if let Some(before) = dropped_before {
        if rotsv_obs::metrics_enabled() {
            let delta = rotsv_obs::event_ring().dropped().saturating_sub(before);
            rotsv_obs::metrics::counter("mc.ring_dropped_events").add(delta);
        }
    }
    Ok(eng.into_results(wall))
}

/// Open-ended streaming form of [`transient_queue`]: lanes refill from
/// `source` instead of a fixed population, and each die's result is
/// handed to `sink` the moment its lane retires.
///
/// This is the continuous-batching seam a resident screening server
/// builds on — retired lanes pull the next admitted die mid-transient,
/// so the engine never drains between requests that share a topology.
/// `source` is polled **non-blockingly** at each retirement (and once
/// up-front to top the initial batch up to `lanes`); returning `None`
/// leaves the lane idle for the rest of the session — a server source
/// should pop from its admission queue without waiting, and start a new
/// engine session when more work arrives after a drain. `sink` receives
/// `(die_index, result)` in retirement order (not population order);
/// indices count from 0 over `initial` then each sourced circuit in
/// pull order. Recorded waveforms are moved into the sink as dies
/// retire, so memory stays proportional to the active lanes, not the
/// session length. Each result's `wall_seconds` is the die's
/// lane-resident time.
///
/// Per-die trajectories are bit-identical to [`transient_batch`] /
/// [`transient_queue`] over the same circuits: every stepping decision
/// is per-lane, so admission order and lane assignment are pure
/// scheduling (see the module docs on composition independence).
///
/// Returns the number of dies completed and delivered to `sink`.
///
/// # Errors
///
/// As [`transient_queue`], plus [`SpiceError::InvalidCircuit`] when
/// `source` yields a circuit whose topology differs from the first
/// die's. With an empty `initial` the source is polled once; if it
/// yields nothing, the call returns `Ok(0)`.
pub fn transient_stream(
    initial: Vec<Arc<Circuit>>,
    lanes: usize,
    spec: &TransientSpec,
    source: &mut dyn FnMut() -> Option<Arc<Circuit>>,
    sink: &mut dyn FnMut(usize, TransientResult),
) -> Result<usize, SpiceError> {
    let mut pop = initial;
    if pop.is_empty() {
        match source() {
            Some(ckt) => pop.push(ckt),
            None => return Ok(0),
        }
    }
    // Top the batch up to the lane count before construction so the
    // engine starts as full as the queue allows.
    while pop.len() < lanes {
        match source() {
            Some(ckt) => pop.push(ckt),
            None => break,
        }
    }
    {
        let refs: Vec<&Circuit> = pop.iter().map(|c| c.as_ref()).collect();
        validate_spec(&refs, spec)?;
    }
    let k = lanes.clamp(1, pop.len());
    let span = rotsv_obs::span!("transient_stream", "k" = k);
    let _ = &span;
    let ring = rotsv_obs::events_enabled();
    let dropped_before = ring.then(|| rotsv_obs::event_ring().dropped());
    let mut eng = QueueEngine::new(Population::Streamed(pop), k, spec)?;
    eng.source = Some(source);
    eng.sink = Some(sink);
    for lane in 0..k {
        if ring {
            rotsv_obs::record_event(
                rotsv_obs::EventKind::LaneSeat,
                lane as u32,
                lane as u32,
                0.0,
            );
        }
        eng.seat(lane, lane);
    }
    eng.next_die = k;
    eng.run()?;
    if let Some(before) = dropped_before {
        if rotsv_obs::metrics_enabled() {
            let delta = rotsv_obs::event_ring().dropped().saturating_sub(before);
            rotsv_obs::metrics::counter("mc.ring_dropped_events").add(delta);
        }
    }
    Ok(eng.delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use crate::transient::TransientSpec;

    fn rc_circuit(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(vin, vout, r);
        ckt.add_capacitor(vout, Circuit::GROUND, c);
        (ckt, vout)
    }

    #[test]
    fn batched_rc_matches_scalar_per_lane() {
        // Three RC lanes with different time constants; fixed grid so the
        // scalar and batched runs share every time point exactly.
        let lanes = [(1e3, 1e-9), (1.3e3, 1e-9), (1e3, 0.7e-9)];
        let built: Vec<(Circuit, NodeId)> = lanes.iter().map(|&(r, c)| rc_circuit(r, c)).collect();
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let spec = TransientSpec::new(3e-6, 2e-9).record(&[built[0].1]);
        let batched = transient_batch(&ckts, &spec).unwrap();
        assert_eq!(batched.len(), 3);
        for ((ckt, vout), res) in built.iter().zip(&batched) {
            let scalar = ckt.transient(&spec).unwrap();
            let wb = res.waveform(*vout);
            let ws = scalar.waveform(*vout);
            assert_eq!(wb.time().len(), ws.time().len());
            for (a, b) in wb.values().iter().zip(ws.values()) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn batched_adaptive_tracks_scalar_within_tolerance() {
        // Identical lanes under adaptive stepping: every lane must agree
        // with the scalar adaptive run to interpolation accuracy.
        let (ckt, vout) = rc_circuit(1e3, 1e-9);
        let ckts = [&ckt, &ckt];
        let spec = TransientSpec::new(3e-6, 2e-9)
            .record(&[vout])
            .step_control(StepControl::adaptive());
        let batched = transient_batch(&ckts, &spec).unwrap();
        let scalar = ckt.transient(&spec).unwrap();
        for res in &batched {
            let wb = res.waveform(vout);
            for frac in [0.5f64, 1.0, 2.0] {
                let t = frac * 1e-6;
                let expect = scalar.waveform(vout).value_at(t);
                assert!((wb.value_at(t) - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn lane_retirement_freezes_finished_lanes() {
        // Lane 1's RC is much faster, so its rising crossing fires far
        // earlier; it must retire with fewer recorded points while lane 0
        // runs on.
        let built = [rc_circuit(1e3, 1e-9), rc_circuit(1e2, 1e-10)];
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let vout = built[0].1;
        let spec = TransientSpec::new(3e-6, 2e-9)
            .record(&[vout])
            .stop_after_rising(vout, 0.5, 1);
        let res = transient_batch(&ckts, &spec).unwrap();
        assert!(res[0].stopped_early());
        assert!(res[1].stopped_early());
        assert!(
            res[1].time().len() < res[0].time().len(),
            "fast lane must retire earlier: {} vs {}",
            res[1].time().len(),
            res[0].time().len()
        );
        // Retired lane's final sample is at its own stop time.
        assert!(res[1].time().last().unwrap() < res[0].time().last().unwrap());
    }

    #[test]
    fn topology_mismatch_is_rejected() {
        let (a, _) = rc_circuit(1e3, 1e-9);
        let mut b = Circuit::new();
        let n1 = b.node("in");
        b.add_resistor(n1, Circuit::GROUND, 1e3);
        let err = transient_batch(&[&a, &b], &TransientSpec::new(1e-6, 1e-9)).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidCircuit(_)));
    }

    #[test]
    fn dcop_start_is_rejected() {
        let (a, _) = rc_circuit(1e3, 1e-9);
        let err = transient_batch(&[&a], &TransientSpec::new(1e-6, 1e-9).from_dcop()).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidSpec(_)));
    }

    #[test]
    fn batch_shares_one_symbolic_analysis() {
        let built = [rc_circuit(1e3, 1e-9), rc_circuit(1.1e3, 1e-9)];
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let res = transient_batch(&ckts, &TransientSpec::new(1e-7, 1e-9)).unwrap();
        let analyses: u64 = res.iter().map(|r| r.stats().symbolic_analyses).sum();
        assert_eq!(analyses, 1, "one analysis for the whole batch");
        assert!(res[1].stats().factorizations > 0);
    }

    /// The composition-independence contract: streaming five dies through
    /// two lanes with refill must reproduce, bit for bit, both the solo
    /// (k = 1) run of every die and the all-at-once k = 5 batch —
    /// including the per-die step and Newton counters.
    #[test]
    fn queue_refill_is_bit_identical_across_lane_counts() {
        let rs = [1e3, 1.2e3, 0.8e3, 1.5e3, 0.9e3];
        let built: Vec<(Circuit, NodeId)> = rs.iter().map(|&r| rc_circuit(r, 1e-9)).collect();
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let vout = built[0].1;
        let spec = TransientSpec::new(3e-6, 2e-9)
            .record(&[vout])
            .step_control(StepControl::adaptive())
            .stop_after_rising(vout, 0.5, 1);
        let queued = transient_queue(&ckts, 2, &spec).unwrap();
        let full = transient_batch(&ckts, &spec).unwrap();
        for (die, (ckt, _)) in built.iter().enumerate() {
            let solo = transient_batch(&[ckt], &spec).unwrap().remove(0);
            for other in [&queued[die], &full[die]] {
                assert_eq!(solo.time(), other.time(), "die {die}: time grid diverged");
                assert_eq!(
                    solo.waveform(vout).values(),
                    other.waveform(vout).values(),
                    "die {die}: waveform diverged"
                );
                assert_eq!(solo.stopped_early(), other.stopped_early(), "die {die}");
                let (a, b) = (solo.stats(), other.stats());
                assert_eq!(a.steps_accepted, b.steps_accepted, "die {die}: steps");
                assert_eq!(a.steps_rejected, b.steps_rejected, "die {die}: rejects");
                assert_eq!(
                    a.newton_iterations, b.newton_iterations,
                    "die {die}: newton"
                );
                assert_eq!(a.solves, b.solves, "die {die}: solves");
            }
        }
    }

    /// The streaming engine (mid-run admission from a source, delivery
    /// through a sink at retirement) reproduces the fixed-population
    /// queue bit for bit, with every die delivered exactly once.
    #[test]
    fn stream_matches_queue_bit_for_bit() {
        let rs = [1e3, 1.2e3, 0.8e3, 1.5e3, 0.9e3, 1.1e3];
        let built: Vec<(Circuit, NodeId)> = rs.iter().map(|&r| rc_circuit(r, 1e-9)).collect();
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let vout = built[0].1;
        let spec = TransientSpec::new(3e-6, 2e-9)
            .record(&[vout])
            .step_control(StepControl::adaptive())
            .stop_after_rising(vout, 0.5, 1);
        let queued = transient_queue(&ckts, 2, &spec).unwrap();

        // Start with one die seated; feed the rest one at a time from
        // the source, exactly as a server admission queue would.
        // Construction is deterministic, so rebuilding from the same
        // parameters gives circuits identical to the queue run's.
        let mut pending: std::collections::VecDeque<Arc<Circuit>> = rs
            .iter()
            .skip(1)
            .map(|&r| Arc::new(rc_circuit(r, 1e-9).0))
            .collect();
        let initial = vec![Arc::new(rc_circuit(rs[0], 1e-9).0)];
        let mut delivered: Vec<Option<TransientResult>> = (0..rs.len()).map(|_| None).collect();
        let mut source = || pending.pop_front();
        let mut sink = |die: usize, res: TransientResult| {
            assert!(delivered[die].is_none(), "die {die} delivered twice");
            delivered[die] = Some(res);
        };
        let n = transient_stream(initial, 2, &spec, &mut source, &mut sink).unwrap();
        assert_eq!(n, rs.len());

        for (die, res) in delivered.iter().enumerate() {
            let res = res.as_ref().expect("every die delivered");
            let q = &queued[die];
            assert_eq!(q.time(), res.time(), "die {die}: time grid diverged");
            assert_eq!(
                q.waveform(vout).values(),
                res.waveform(vout).values(),
                "die {die}: waveform diverged"
            );
            assert_eq!(q.stopped_early(), res.stopped_early(), "die {die}");
            let (a, b) = (q.stats(), res.stats());
            assert_eq!(a.steps_accepted, b.steps_accepted, "die {die}: steps");
            assert_eq!(a.newton_iterations, b.newton_iterations, "die {die}");
        }
    }

    /// A sourced circuit with a different topology aborts the stream.
    #[test]
    fn stream_rejects_mismatched_source_topology() {
        let (a, vout) = rc_circuit(1e3, 1e-9);
        let mut b = Circuit::new();
        let n1 = b.node("in");
        b.add_resistor(n1, Circuit::GROUND, 1e3);
        let spec = TransientSpec::new(3e-6, 2e-9)
            .record(&[vout])
            .stop_after_rising(vout, 0.5, 1);
        let mut fed = false;
        let bad = Arc::new(b);
        let mut source = move || (!std::mem::replace(&mut fed, true)).then(|| Arc::clone(&bad));
        let mut sink = |_die: usize, _res: TransientResult| {};
        let err =
            transient_stream(vec![Arc::new(a)], 1, &spec, &mut source, &mut sink).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidCircuit(_)));
    }

    /// Refill keeps the results in population order even though dies
    /// finish out of order across lanes.
    #[test]
    fn queue_results_stay_in_population_order() {
        // Alternate slow/fast time constants so lane completion order
        // scrambles relative to the queue order.
        let built = [
            rc_circuit(1e3, 1e-9),
            rc_circuit(1e2, 1e-10),
            rc_circuit(2e3, 1e-9),
            rc_circuit(1.5e2, 1e-10),
        ];
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let vout = built[0].1;
        let spec = TransientSpec::new(3e-6, 2e-9)
            .record(&[vout])
            .stop_after_rising(vout, 0.5, 1);
        let queued = transient_queue(&ckts, 2, &spec).unwrap();
        assert_eq!(queued.len(), 4);
        for (die, (ckt, _)) in built.iter().enumerate() {
            let solo = transient_batch(&[ckt], &spec).unwrap().remove(0);
            assert_eq!(
                solo.time(),
                queued[die].time(),
                "die {die} not in queue order"
            );
        }
    }
}
