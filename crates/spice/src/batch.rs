//! Lane-batched transient analysis: K same-topology circuits in lockstep.
//!
//! A Monte-Carlo population simulates hundreds of dies that share one
//! netlist and differ only in element *values* (process variation
//! perturbs threshold voltages and geometries, never connectivity). The
//! scalar engine pays the full per-transient cost per die; this module
//! amortizes everything that depends on topology alone across a batch of
//! K dies ("lanes"):
//!
//! * **one** symbolic LU analysis and pivot order for the whole batch
//!   ([`rotsv_num::sparse::BatchedLu`]),
//! * one stamp-coordinate walk and slot-replay sequence,
//! * structure-of-arrays device evaluation
//!   ([`crate::device::BatchedDeviceEval`]) with the lane index as the
//!   innermost, branch-free loop so the compiler autovectorizes it.
//!
//! Time stepping is lockstep: every lane takes the same `dt`, chosen as
//! the *minimum* over the active lanes' local-truncation-error proposals,
//! and a step is redone when **any** active lane rejects it. Lanes whose
//! stop condition fires *retire*: their solution is frozen, they stop
//! recording and stop voting on `dt`, but their values keep riding along
//! in the factorization (masked occupancy — the continuous-batching
//! pattern). The `mc.batch_occupancy` histogram records the active
//! fraction per accepted step so the cost of stragglers is observable.
//!
//! Numerics match the scalar engine's formulation exactly (same Newton
//! delta form, damping, staleness policy, LTE test and step bounds); the
//! results differ from scalar runs only through lockstep-`dt` coupling
//! and the vectorized elementary functions, both far inside the cross-
//! check tolerance the batched↔scalar agreement tests enforce.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use rotsv_num::sparse::{BatchedLu, SolverStats, SparseMatrix, SymbolicCache, SymbolicLu};

use crate::circuit::{Circuit, Element};
use crate::device::{BatchedDeviceEval, DeviceStamp, NonlinearDevice};
use crate::error::SpiceError;
use crate::mna::{row_of, stamp_coords, NewtonOpts, STALL_RATIO};
use crate::node::NodeId;
use crate::source::SourceWaveform;
use crate::transient::{
    IntegrationMethod, StepControl, StopCondition, TransientResult, TransientSpec,
};

/// Per-element data precomputed at batch construction so `assemble`
/// never re-matches enum variants per lane.
enum BatchElem {
    /// Per-lane conductances.
    Resistor { a: NodeId, b: NodeId, g: Vec<f64> },
    /// Values arrive per step through the companion array.
    Capacitor { a: NodeId, b: NodeId },
    /// Per-lane waveforms (lanes may drive different VDD levels).
    VSource {
        pos: NodeId,
        neg: NodeId,
        branch: usize,
        waves: Vec<SourceWaveform>,
    },
    ISource {
        from: NodeId,
        to: NodeId,
        waves: Vec<SourceWaveform>,
    },
    /// Index into the device table.
    Device(usize),
}

/// How one nonlinear-device slot evaluates its K lanes.
enum DeviceKind {
    /// Structure-of-arrays lockstep kernel.
    Batched(Box<dyn BatchedDeviceEval>),
    /// Per-lane scalar fallback through [`NonlinearDevice::eval`].
    PerLane(DeviceStamp),
}

/// One nonlinear-device slot across all lanes, with lane-interleaved
/// scratch buffers.
struct BatchDevice {
    nodes: Vec<NodeId>,
    kind: DeviceKind,
    /// `terminals * k` trial voltages.
    vbuf: Vec<f64>,
    /// `terminals * k` terminal currents.
    cbuf: Vec<f64>,
    /// `terminals² * k` Jacobian entries, `[(r*t + c)*k + lane]`.
    jbuf: Vec<f64>,
}

/// Reusable assembly/factorization workspace for a K-lane batch.
struct BatchWorkspace {
    k: usize,
    n: usize,
    n_node_unknowns: usize,
    gmin: f64,
    /// Shared sparsity pattern (values unused except as analysis probe).
    pattern: SparseMatrix,
    /// `nnz * k` lane-interleaved matrix values.
    values: Vec<f64>,
    /// `n * k` lane-interleaved right-hand side.
    b: Vec<f64>,
    /// CSR value-slot replay sequence, identical to the scalar engine's.
    slots: Vec<usize>,
    elems: Vec<BatchElem>,
    devices: Vec<BatchDevice>,
    lu: Option<BatchedLu>,
    cache: Option<Arc<SymbolicCache>>,
    stale_iters: usize,
    last_factored: Vec<f64>,
    /// `n * k` residual scratch.
    resid: Vec<f64>,
    /// `k` per-terminal rhs scratch.
    rhs: Vec<f64>,
    /// Per-lane work counters.
    stats: Vec<SolverStats>,
}

/// Checks that every lane has the topology of lane 0: same nodes, same
/// element sequence (kinds, terminals, branches), same gmin. Values
/// (resistances, capacitances, waveforms, device parameters) may differ.
fn validate_topology(ckts: &[&Circuit]) -> Result<(), SpiceError> {
    let c0 = ckts[0];
    for (lane, c) in ckts.iter().enumerate().skip(1) {
        let mismatch = |what: &str| {
            Err(SpiceError::InvalidCircuit(format!(
                "batch lane {lane} differs from lane 0 in {what}"
            )))
        };
        if c.node_count() != c0.node_count() {
            return mismatch("node count");
        }
        if c.vsource_count() != c0.vsource_count() {
            return mismatch("voltage-source count");
        }
        if c.element_count() != c0.element_count() {
            return mismatch("element count");
        }
        if c.gmin() != c0.gmin() {
            return mismatch("gmin");
        }
        for (ei, (e0, e)) in c0.elements.iter().zip(&c.elements).enumerate() {
            let same = match (e0, e) {
                (Element::Resistor { a, b, .. }, Element::Resistor { a: a2, b: b2, .. }) => {
                    a == a2 && b == b2
                }
                (Element::Capacitor { a, b, .. }, Element::Capacitor { a: a2, b: b2, .. }) => {
                    a == a2 && b == b2
                }
                (
                    Element::VSource {
                        pos, neg, branch, ..
                    },
                    Element::VSource {
                        pos: p2,
                        neg: n2,
                        branch: b2,
                        ..
                    },
                ) => pos == p2 && neg == n2 && branch == b2,
                (
                    Element::ISource { from, to, .. },
                    Element::ISource {
                        from: f2, to: t2, ..
                    },
                ) => from == f2 && to == t2,
                (Element::Nonlinear(d0), Element::Nonlinear(d)) => d0.nodes() == d.nodes(),
                _ => false,
            };
            if !same {
                return mismatch(&format!("element {ei}"));
            }
        }
    }
    Ok(())
}

impl BatchWorkspace {
    fn new(ckts: &[&Circuit]) -> Result<Self, SpiceError> {
        validate_topology(ckts)?;
        let c0 = ckts[0];
        let k = ckts.len();
        let n = c0.unknown_count();
        let coords = stamp_coords(c0);
        let (pattern, slots) = SparseMatrix::from_coords(n, &coords);

        let mut elems = Vec::with_capacity(c0.elements.len());
        let mut devices = Vec::new();
        for (ei, elem) in c0.elements.iter().enumerate() {
            elems.push(match elem {
                Element::Resistor { a, b, .. } => {
                    let g = ckts
                        .iter()
                        .map(|c| match &c.elements[ei] {
                            Element::Resistor { ohms, .. } => 1.0 / ohms,
                            _ => unreachable!("validated topology"),
                        })
                        .collect();
                    BatchElem::Resistor { a: *a, b: *b, g }
                }
                Element::Capacitor { a, b, .. } => BatchElem::Capacitor { a: *a, b: *b },
                Element::VSource {
                    pos, neg, branch, ..
                } => {
                    let waves = ckts
                        .iter()
                        .map(|c| match &c.elements[ei] {
                            Element::VSource { wave, .. } => wave.clone(),
                            _ => unreachable!("validated topology"),
                        })
                        .collect();
                    BatchElem::VSource {
                        pos: *pos,
                        neg: *neg,
                        branch: *branch,
                        waves,
                    }
                }
                Element::ISource { from, to, .. } => {
                    let waves = ckts
                        .iter()
                        .map(|c| match &c.elements[ei] {
                            Element::ISource { wave, .. } => wave.clone(),
                            _ => unreachable!("validated topology"),
                        })
                        .collect();
                    BatchElem::ISource {
                        from: *from,
                        to: *to,
                        waves,
                    }
                }
                Element::Nonlinear(d0) => {
                    let lanes: Vec<&dyn NonlinearDevice> = ckts
                        .iter()
                        .map(|c| match &c.elements[ei] {
                            Element::Nonlinear(d) => d.as_ref(),
                            _ => unreachable!("validated topology"),
                        })
                        .collect();
                    let nt = d0.nodes().len();
                    let kind = match d0.batch_with(&lanes) {
                        Some(b) => DeviceKind::Batched(b),
                        None => DeviceKind::PerLane(DeviceStamp::new(nt)),
                    };
                    devices.push(BatchDevice {
                        nodes: d0.nodes().to_vec(),
                        kind,
                        vbuf: vec![0.0; nt * k],
                        cbuf: vec![0.0; nt * k],
                        jbuf: vec![0.0; nt * nt * k],
                    });
                    BatchElem::Device(devices.len() - 1)
                }
            });
        }

        Ok(Self {
            k,
            n,
            n_node_unknowns: c0.node_count() - 1,
            gmin: c0.gmin(),
            values: vec![0.0; pattern.nnz() * k],
            b: vec![0.0; n * k],
            pattern,
            slots,
            elems,
            devices,
            lu: None,
            cache: c0.symbolic_cache().cloned(),
            stale_iters: 0,
            last_factored: Vec::new(),
            resid: vec![0.0; n * k],
            rhs: vec![0.0; k],
            stats: vec![SolverStats::default(); k],
        })
    }

    /// Adds per-lane values into one CSR slot.
    #[inline]
    fn add_lanes(values: &mut [f64], k: usize, slot: usize, g: &[f64], sign: f64) {
        let dst = &mut values[slot * k..(slot + 1) * k];
        for lane in 0..k {
            dst[lane] += sign * g[lane];
        }
    }

    /// Stamps a two-terminal conductance (per-lane values `g`) following
    /// the scalar engine's slot order; returns the advanced cursor.
    fn stamp_conductance(&mut self, mut cursor: usize, a: NodeId, b: NodeId, g: &[f64]) -> usize {
        let k = self.k;
        match (row_of(a), row_of(b)) {
            (Some(_), Some(_)) => {
                Self::add_lanes(&mut self.values, k, self.slots[cursor], g, 1.0);
                Self::add_lanes(&mut self.values, k, self.slots[cursor + 1], g, 1.0);
                Self::add_lanes(&mut self.values, k, self.slots[cursor + 2], g, -1.0);
                Self::add_lanes(&mut self.values, k, self.slots[cursor + 3], g, -1.0);
                cursor += 4;
            }
            (Some(_), None) | (None, Some(_)) => {
                Self::add_lanes(&mut self.values, k, self.slots[cursor], g, 1.0);
                cursor += 1;
            }
            (None, None) => {}
        }
        cursor
    }

    /// Monomorphized assembly for `K == self.k`: identical stamp order
    /// and arithmetic to [`BatchWorkspace::assemble`], with const-length
    /// lane loops that unroll and vectorize.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn assemble_k<const K: usize>(
        &mut self,
        ckts: &[&Circuit],
        x: &[f64],
        t: f64,
        companions: &[(f64, f64)],
    ) {
        debug_assert_eq!(self.k, K);
        self.values.fill(0.0);
        self.b.fill(0.0);
        let mut cursor = 0usize;
        for _ in 0..self.n_node_unknowns {
            let slot = self.slots[cursor];
            let dst = &mut self.values[slot * K..(slot + 1) * K];
            for lane in 0..K {
                dst[lane] += self.gmin;
            }
            cursor += 1;
        }
        let mut cap_idx = 0usize;
        // Move the element list out so `self` stays borrowable.
        let elems = std::mem::take(&mut self.elems);
        for (ei, elem) in elems.iter().enumerate() {
            match elem {
                BatchElem::Resistor { a, b, g } => {
                    cursor = self.stamp_conductance_k::<K>(cursor, *a, *b, g);
                }
                BatchElem::Capacitor { a, b } => {
                    let base = cap_idx * K;
                    let mut g = [0.0; K];
                    for lane in 0..K {
                        g[lane] = companions[base + lane].0;
                    }
                    cursor = self.stamp_conductance_k::<K>(cursor, *a, *b, &g);
                    if let Some(ra) = row_of(*a) {
                        for lane in 0..K {
                            self.b[ra * K + lane] -= companions[base + lane].1;
                        }
                    }
                    if let Some(rb) = row_of(*b) {
                        for lane in 0..K {
                            self.b[rb * K + lane] += companions[base + lane].1;
                        }
                    }
                    cap_idx += 1;
                }
                BatchElem::VSource {
                    pos,
                    neg,
                    branch,
                    waves,
                } => {
                    let rb = self.n_node_unknowns + branch;
                    if row_of(*pos).is_some() {
                        for s in [self.slots[cursor], self.slots[cursor + 1]] {
                            for lane in 0..K {
                                self.values[s * K + lane] += 1.0;
                            }
                        }
                        cursor += 2;
                    }
                    if row_of(*neg).is_some() {
                        for s in [self.slots[cursor], self.slots[cursor + 1]] {
                            for lane in 0..K {
                                self.values[s * K + lane] -= 1.0;
                            }
                        }
                        cursor += 2;
                    }
                    for (lane, wave) in waves.iter().enumerate() {
                        self.b[rb * K + lane] = wave.value(t);
                    }
                }
                BatchElem::ISource { from, to, waves } => {
                    for (lane, wave) in waves.iter().enumerate() {
                        let i = wave.value(t);
                        if let Some(rf) = row_of(*from) {
                            self.b[rf * K + lane] -= i;
                        }
                        if let Some(rt) = row_of(*to) {
                            self.b[rt * K + lane] += i;
                        }
                    }
                }
                BatchElem::Device(di) => {
                    cursor = self.stamp_device_k::<K>(ckts, ei, *di, x, cursor);
                }
            }
        }
        self.elems = elems;
        debug_assert_eq!(cursor, self.slots.len(), "stamp replay out of sync");
    }

    /// Monomorphized two-terminal conductance stamp (see
    /// [`BatchWorkspace::stamp_conductance`]).
    fn stamp_conductance_k<const K: usize>(
        &mut self,
        mut cursor: usize,
        a: NodeId,
        b: NodeId,
        g: &[f64],
    ) -> usize {
        let g = &g[..K];
        match (row_of(a), row_of(b)) {
            (Some(_), Some(_)) => {
                for (c, sign) in [(0, 1.0), (1, 1.0), (2, -1.0), (3, -1.0)] {
                    let dst = &mut self.values[self.slots[cursor + c] * K..][..K];
                    for lane in 0..K {
                        dst[lane] += sign * g[lane];
                    }
                }
                cursor += 4;
            }
            (Some(_), None) | (None, Some(_)) => {
                let dst = &mut self.values[self.slots[cursor] * K..][..K];
                for lane in 0..K {
                    dst[lane] += g[lane];
                }
                cursor += 1;
            }
            (None, None) => {}
        }
        cursor
    }

    /// Monomorphized device stamp: gather, evaluate, Norton-accumulate
    /// with the per-terminal right-hand side in `K` registers.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn stamp_device_k<const K: usize>(
        &mut self,
        ckts: &[&Circuit],
        elem_idx: usize,
        dev_idx: usize,
        x: &[f64],
        mut cursor: usize,
    ) -> usize {
        let dev = &mut self.devices[dev_idx];
        let nt = dev.nodes.len();
        for (ti, &node) in dev.nodes.iter().enumerate() {
            match row_of(node) {
                Some(r) => dev.vbuf[ti * K..(ti + 1) * K].copy_from_slice(&x[r * K..(r + 1) * K]),
                None => dev.vbuf[ti * K..(ti + 1) * K].fill(0.0),
            }
        }
        match &mut dev.kind {
            DeviceKind::Batched(bank) => {
                bank.eval_lanes(&dev.vbuf, &mut dev.cbuf, &mut dev.jbuf);
            }
            DeviceKind::PerLane(stamp) => {
                let mut v = vec![0.0; nt];
                for lane in 0..K {
                    let Element::Nonlinear(d) = &ckts[lane].elements[elem_idx] else {
                        unreachable!("validated topology");
                    };
                    for ti in 0..nt {
                        v[ti] = dev.vbuf[ti * K + lane];
                    }
                    stamp.clear();
                    d.eval(&v, stamp);
                    for ti in 0..nt {
                        dev.cbuf[ti * K + lane] = stamp.current[ti];
                        for tj in 0..nt {
                            dev.jbuf[(ti * nt + tj) * K + lane] = stamp.jacobian[(ti, tj)];
                        }
                    }
                }
            }
        }
        for (ti, &nk_node) in dev.nodes.iter().enumerate() {
            let Some(rk) = row_of(nk_node) else { continue };
            let mut rhs = [0.0; K];
            for lane in 0..K {
                rhs[lane] = -dev.cbuf[ti * K + lane];
            }
            for (tj, &nj_node) in dev.nodes.iter().enumerate() {
                let jbase = (ti * nt + tj) * K;
                let jrow = &dev.jbuf[jbase..jbase + K];
                let vrow = &dev.vbuf[tj * K..(tj + 1) * K];
                for lane in 0..K {
                    rhs[lane] += jrow[lane] * vrow[lane];
                }
                if row_of(nj_node).is_some() {
                    let slot = self.slots[cursor];
                    cursor += 1;
                    let dst = &mut self.values[slot * K..(slot + 1) * K];
                    for lane in 0..K {
                        dst[lane] += jrow[lane];
                    }
                }
            }
            for lane in 0..K {
                self.b[rk * K + lane] += rhs[lane];
            }
        }
        cursor
    }

    /// Assembles all lanes at the interleaved iterate `x` and time `t`.
    /// `companions[cap*k + lane]` holds the Norton `(geq, ieq)` pair of
    /// each capacitor (always companion mode: a batched run is always a
    /// transient).
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn assemble(&mut self, ckts: &[&Circuit], x: &[f64], t: f64, companions: &[(f64, f64)]) {
        let k = self.k;
        self.values.fill(0.0);
        self.b.fill(0.0);
        let mut cursor = 0usize;
        for _ in 0..self.n_node_unknowns {
            let slot = self.slots[cursor];
            let dst = &mut self.values[slot * k..(slot + 1) * k];
            for lane in 0..k {
                dst[lane] += self.gmin;
            }
            cursor += 1;
        }
        let mut cap_idx = 0usize;
        // Move the element list out so `self` stays borrowable.
        let elems = std::mem::take(&mut self.elems);
        for (ei, elem) in elems.iter().enumerate() {
            match elem {
                BatchElem::Resistor { a, b, g } => {
                    cursor = self.stamp_conductance(cursor, *a, *b, g);
                }
                BatchElem::Capacitor { a, b } => {
                    let base = cap_idx * k;
                    // Reuse the rhs scratch to carry per-lane geq.
                    for lane in 0..k {
                        self.rhs[lane] = companions[base + lane].0;
                    }
                    let g = std::mem::take(&mut self.rhs);
                    cursor = self.stamp_conductance(cursor, *a, *b, &g);
                    self.rhs = g;
                    if let Some(ra) = row_of(*a) {
                        for lane in 0..k {
                            self.b[ra * k + lane] -= companions[base + lane].1;
                        }
                    }
                    if let Some(rb) = row_of(*b) {
                        for lane in 0..k {
                            self.b[rb * k + lane] += companions[base + lane].1;
                        }
                    }
                    cap_idx += 1;
                }
                BatchElem::VSource {
                    pos,
                    neg,
                    branch,
                    waves,
                } => {
                    let rb = self.n_node_unknowns + branch;
                    if row_of(*pos).is_some() {
                        for s in [self.slots[cursor], self.slots[cursor + 1]] {
                            for lane in 0..k {
                                self.values[s * k + lane] += 1.0;
                            }
                        }
                        cursor += 2;
                    }
                    if row_of(*neg).is_some() {
                        for s in [self.slots[cursor], self.slots[cursor + 1]] {
                            for lane in 0..k {
                                self.values[s * k + lane] -= 1.0;
                            }
                        }
                        cursor += 2;
                    }
                    for (lane, wave) in waves.iter().enumerate() {
                        self.b[rb * k + lane] = wave.value(t);
                    }
                }
                BatchElem::ISource { from, to, waves } => {
                    for (lane, wave) in waves.iter().enumerate() {
                        let i = wave.value(t);
                        if let Some(rf) = row_of(*from) {
                            self.b[rf * k + lane] -= i;
                        }
                        if let Some(rt) = row_of(*to) {
                            self.b[rt * k + lane] += i;
                        }
                    }
                }
                BatchElem::Device(di) => {
                    cursor = self.stamp_device(ckts, ei, *di, x, cursor);
                }
            }
        }
        self.elems = elems;
        debug_assert_eq!(cursor, self.slots.len(), "stamp replay out of sync");
    }

    /// Evaluates and stamps one device slot across all lanes.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn stamp_device(
        &mut self,
        ckts: &[&Circuit],
        elem_idx: usize,
        dev_idx: usize,
        x: &[f64],
        mut cursor: usize,
    ) -> usize {
        let k = self.k;
        let dev = &mut self.devices[dev_idx];
        let nt = dev.nodes.len();
        // Gather lane-interleaved terminal voltages.
        for (ti, &node) in dev.nodes.iter().enumerate() {
            match row_of(node) {
                Some(r) => dev.vbuf[ti * k..(ti + 1) * k].copy_from_slice(&x[r * k..(r + 1) * k]),
                None => dev.vbuf[ti * k..(ti + 1) * k].fill(0.0),
            }
        }
        match &mut dev.kind {
            DeviceKind::Batched(bank) => {
                bank.eval_lanes(&dev.vbuf, &mut dev.cbuf, &mut dev.jbuf);
            }
            DeviceKind::PerLane(stamp) => {
                let mut v = vec![0.0; nt];
                for lane in 0..k {
                    let Element::Nonlinear(d) = &ckts[lane].elements[elem_idx] else {
                        unreachable!("validated topology");
                    };
                    for ti in 0..nt {
                        v[ti] = dev.vbuf[ti * k + lane];
                    }
                    stamp.clear();
                    d.eval(&v, stamp);
                    for ti in 0..nt {
                        dev.cbuf[ti * k + lane] = stamp.current[ti];
                        for tj in 0..nt {
                            dev.jbuf[(ti * nt + tj) * k + lane] = stamp.jacobian[(ti, tj)];
                        }
                    }
                }
            }
        }
        // Norton linearization, lane loops innermost (see the scalar
        // engine for the formulation).
        for (ti, &nk_node) in dev.nodes.iter().enumerate() {
            let Some(rk) = row_of(nk_node) else { continue };
            for lane in 0..k {
                self.rhs[lane] = -dev.cbuf[ti * k + lane];
            }
            for (tj, &nj_node) in dev.nodes.iter().enumerate() {
                let jbase = (ti * nt + tj) * k;
                for lane in 0..k {
                    self.rhs[lane] += dev.jbuf[jbase + lane] * dev.vbuf[tj * k + lane];
                }
                if row_of(nj_node).is_some() {
                    let slot = self.slots[cursor];
                    cursor += 1;
                    let dst = &mut self.values[slot * k..(slot + 1) * k];
                    for lane in 0..k {
                        dst[lane] += dev.jbuf[jbase + lane];
                    }
                }
            }
            for lane in 0..k {
                self.b[rk * k + lane] += self.rhs[lane];
            }
        }
        cursor
    }

    /// (Re)factors the current lane values.
    ///
    /// Counter attribution keeps population sums meaningful: symbolic
    /// analyses are charged to lane 0 only (the batch performs
    /// O(topologies) analyses, not O(lanes)), while factorizations are
    /// charged to every *active* lane (each lane's values were factored).
    fn refactor(&mut self, t: f64, active: &[bool]) -> Result<(), SpiceError> {
        if self.lu.is_some() && self.last_factored == self.values {
            self.stale_iters = 0;
            return Ok(());
        }
        let map_err = |source| SpiceError::SingularSystem { time: t, source };
        if self.lu.is_none() {
            // First factorization: analyze (or fetch from the shared
            // cache) using lane 0's values as the probe. Every lane
            // shares the pattern, so the pivot order transfers; a lane
            // it fails for triggers BatchedLu's internal re-analysis.
            let mut probe = self.pattern.clone();
            probe.zero_values();
            for s in 0..self.pattern.nnz() {
                probe.add_slot(s, self.values[s * self.k]);
            }
            let (sym, analyses) = match &self.cache {
                Some(cache) => {
                    let (sym, fresh) = cache.symbolic_for(&probe).map_err(map_err)?;
                    (sym, u64::from(fresh))
                }
                None => (Arc::new(SymbolicLu::analyze(&probe).map_err(map_err)?), 1),
            };
            self.stats[0].symbolic_analyses += analyses;
            self.lu = Some(BatchedLu::new(sym, self.k));
        }
        let lu = self.lu.as_mut().expect("installed above");
        let reanalyses = lu.refactor(&self.pattern, &self.values).map_err(map_err)?;
        self.stats[0].symbolic_analyses += reanalyses;
        for (lane, stats) in self.stats.iter_mut().enumerate() {
            if active[lane] {
                stats.factorizations += 1;
            }
        }
        self.stale_iters = 0;
        self.last_factored.clear();
        self.last_factored.extend_from_slice(&self.values);
        Ok(())
    }
}

/// Runs the lockstep Newton iteration for one trial step.
///
/// `x` holds the lane-interleaved iterate and is updated in place for
/// *active* lanes only (retired lanes stay frozen). Returns `Ok(true)`
/// when every active lane converged, `Ok(false)` for plain
/// non-convergence (the caller halves the step, as in the scalar
/// engine).
fn newton_batch(
    ws: &mut BatchWorkspace,
    ckts: &[&Circuit],
    x: &mut [f64],
    t: f64,
    companions: &[(f64, f64)],
    active: &[bool],
    opts: &NewtonOpts,
) -> Result<bool, SpiceError> {
    let _span = rotsv_obs::span!("newton_batch", "k" = ws.k);
    // Monomorphized hot path for the common batch widths; the dynamic
    // body below is the fallback (and the reference: each pair of arms
    // performs bit-identical arithmetic in the same order).
    match ws.k {
        1 => return newton_batch_k::<1>(ws, ckts, x, t, companions, active, opts),
        2 => return newton_batch_k::<2>(ws, ckts, x, t, companions, active, opts),
        3 => return newton_batch_k::<3>(ws, ckts, x, t, companions, active, opts),
        4 => return newton_batch_k::<4>(ws, ckts, x, t, companions, active, opts),
        5 => return newton_batch_k::<5>(ws, ckts, x, t, companions, active, opts),
        6 => return newton_batch_k::<6>(ws, ckts, x, t, companions, active, opts),
        7 => return newton_batch_k::<7>(ws, ckts, x, t, companions, active, opts),
        8 => return newton_batch_k::<8>(ws, ckts, x, t, companions, active, opts),
        16 => return newton_batch_k::<16>(ws, ckts, x, t, companions, active, opts),
        _ => {}
    }
    let k = ws.k;
    let n = ws.n;
    let n_nodes = ws.n_node_unknowns;
    let mut prev_rnorm = vec![f64::INFINITY; k];
    let mut rnorm = vec![0.0f64; k];
    let mut prev_damped = false;
    let mut delta = vec![0.0f64; n * k];
    for _ in 0..opts.max_iterations {
        for (lane, stats) in ws.stats.iter_mut().enumerate() {
            if active[lane] {
                stats.newton_iterations += 1;
            }
        }
        ws.assemble(ckts, x, t, companions);
        // Residual r = b − A·x per lane.
        let mut resid = std::mem::take(&mut ws.resid);
        ws.pattern.mul_vec_lanes_into(&ws.values, k, x, &mut resid);
        for (ri, bi) in resid.iter_mut().zip(&ws.b) {
            *ri = *bi - *ri;
        }
        rnorm.fill(0.0);
        for i in 0..n {
            for (lane, rn) in rnorm.iter_mut().enumerate() {
                *rn = rn.max(resid[i * k + lane].abs());
            }
        }
        // Stall/refresh policy is batch-wide: the factorization is
        // shared, so any active lane's stall refreshes all lanes.
        let stalled = !prev_damped
            && active
                .iter()
                .zip(rnorm.iter().zip(&prev_rnorm))
                .any(|(&a, (&rn, &prn))| a && rn > STALL_RATIO * prn);
        if ws.lu.is_none() || ws.stale_iters >= opts.max_stale || stalled || prev_damped {
            if let Err(e) = ws.refactor(t, active) {
                ws.resid = resid;
                return Err(e);
            }
        } else {
            ws.stale_iters += 1;
        }
        delta.copy_from_slice(&resid);
        ws.resid = resid;
        ws.lu
            .as_mut()
            .expect("factorization exists after refactor")
            .solve_in_place(&mut delta);
        for (lane, stats) in ws.stats.iter_mut().enumerate() {
            if active[lane] {
                stats.solves += 1;
            }
        }
        prev_rnorm.copy_from_slice(&rnorm);

        let mut all_converged = true;
        let mut any_damped = false;
        let mut scale = vec![1.0f64; k];
        for (lane, &is_active) in active.iter().enumerate() {
            if !is_active {
                continue;
            }
            let mut max_dv = 0.0f64;
            let mut finite = true;
            for i in 0..n {
                let d = delta[i * k + lane];
                finite &= d.is_finite();
                if i < n_nodes {
                    max_dv = max_dv.max(d.abs());
                }
            }
            if !finite {
                return Ok(false);
            }
            let mut converged = max_dv <= opts.v_abstol;
            if !converged {
                converged = (0..n_nodes).all(|i| {
                    let d = delta[i * k + lane];
                    d.abs() <= opts.v_abstol + opts.reltol * (x[i * k + lane] + d).abs()
                });
            }
            all_converged &= converged;
            if max_dv > opts.v_step_limit {
                any_damped = true;
                scale[lane] = opts.v_step_limit / max_dv;
            }
        }
        if all_converged {
            for (lane, &is_active) in active.iter().enumerate() {
                if is_active {
                    for i in 0..n {
                        x[i * k + lane] += delta[i * k + lane];
                    }
                }
            }
            return Ok(true);
        }
        for (lane, &is_active) in active.iter().enumerate() {
            if is_active {
                let s = scale[lane];
                for i in 0..n {
                    x[i * k + lane] += s * delta[i * k + lane];
                }
            }
        }
        prev_damped = any_damped;
    }
    Ok(false)
}

/// Monomorphized body of [`newton_batch`] for `K == ws.k`: per-lane
/// norms and damping scales live in `K`-element register arrays and all
/// lane loops have const trip counts.
fn newton_batch_k<const K: usize>(
    ws: &mut BatchWorkspace,
    ckts: &[&Circuit],
    x: &mut [f64],
    t: f64,
    companions: &[(f64, f64)],
    active: &[bool],
    opts: &NewtonOpts,
) -> Result<bool, SpiceError> {
    debug_assert_eq!(ws.k, K);
    let n = ws.n;
    let n_nodes = ws.n_node_unknowns;
    let mut prev_rnorm = [f64::INFINITY; K];
    let mut prev_damped = false;
    let mut delta = vec![0.0f64; n * K];
    for _ in 0..opts.max_iterations {
        for (lane, stats) in ws.stats.iter_mut().enumerate() {
            if active[lane] {
                stats.newton_iterations += 1;
            }
        }
        ws.assemble_k::<K>(ckts, x, t, companions);
        // Residual r = b − A·x per lane.
        let mut resid = std::mem::take(&mut ws.resid);
        ws.pattern.mul_vec_lanes_into(&ws.values, K, x, &mut resid);
        for (ri, bi) in resid.iter_mut().zip(&ws.b) {
            *ri = *bi - *ri;
        }
        let mut rnorm = [0.0f64; K];
        for i in 0..n {
            for (lane, rn) in rnorm.iter_mut().enumerate() {
                *rn = rn.max(resid[i * K + lane].abs());
            }
        }
        // Stall/refresh policy is batch-wide: the factorization is
        // shared, so any active lane's stall refreshes all lanes.
        let stalled = !prev_damped
            && active
                .iter()
                .zip(rnorm.iter().zip(&prev_rnorm))
                .any(|(&a, (&rn, &prn))| a && rn > STALL_RATIO * prn);
        if ws.lu.is_none() || ws.stale_iters >= opts.max_stale || stalled || prev_damped {
            if let Err(e) = ws.refactor(t, active) {
                ws.resid = resid;
                return Err(e);
            }
        } else {
            ws.stale_iters += 1;
        }
        delta.copy_from_slice(&resid);
        ws.resid = resid;
        ws.lu
            .as_mut()
            .expect("factorization exists after refactor")
            .solve_in_place(&mut delta);
        for (lane, stats) in ws.stats.iter_mut().enumerate() {
            if active[lane] {
                stats.solves += 1;
            }
        }
        prev_rnorm = rnorm;

        let mut all_converged = true;
        let mut any_damped = false;
        let mut scale = [1.0f64; K];
        for (lane, &is_active) in active.iter().enumerate() {
            if !is_active {
                continue;
            }
            let mut max_dv = 0.0f64;
            let mut finite = true;
            for i in 0..n {
                let d = delta[i * K + lane];
                finite &= d.is_finite();
                if i < n_nodes {
                    max_dv = max_dv.max(d.abs());
                }
            }
            if !finite {
                return Ok(false);
            }
            let mut converged = max_dv <= opts.v_abstol;
            if !converged {
                converged = (0..n_nodes).all(|i| {
                    let d = delta[i * K + lane];
                    d.abs() <= opts.v_abstol + opts.reltol * (x[i * K + lane] + d).abs()
                });
            }
            all_converged &= converged;
            if max_dv > opts.v_step_limit {
                any_damped = true;
                scale[lane] = opts.v_step_limit / max_dv;
            }
        }
        if all_converged {
            for (lane, &is_active) in active.iter().enumerate() {
                if is_active {
                    for i in 0..n {
                        x[i * K + lane] += delta[i * K + lane];
                    }
                }
            }
            return Ok(true);
        }
        for (lane, &is_active) in active.iter().enumerate() {
            if is_active {
                let s = scale[lane];
                for i in 0..n {
                    x[i * K + lane] += s * delta[i * K + lane];
                }
            }
        }
        prev_damped = any_damped;
    }
    Ok(false)
}

/// Per-lane capacitor history (voltage across and branch current).
#[derive(Clone, Copy, Default)]
struct CapLane {
    v: f64,
    i: f64,
}

/// Runs one transient analysis over `ckts.len()` same-topology circuits
/// in lockstep, returning one [`TransientResult`] per lane.
///
/// All lanes share `spec` (grid, stop condition, recorded nodes); lanes
/// differ through their circuits' element values. Per-lane
/// [`SolverStats`] attribute symbolic analyses to lane 0 only and split
/// wall time equally, so summing lanes matches the batch totals.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidCircuit`] when the lanes' topologies
/// differ, [`SpiceError::InvalidSpec`] for a bad grid or a
/// `start_from_dcop` request (the batched engine starts from
/// `initial_voltages` only — ring measurements never use a dcop seed),
/// and the scalar engine's convergence/singularity errors otherwise.
pub fn transient_batch(
    ckts: &[&Circuit],
    spec: &TransientSpec,
) -> Result<Vec<TransientResult>, SpiceError> {
    if ckts.is_empty() {
        return Ok(Vec::new());
    }
    let k = ckts.len();
    let span = rotsv_obs::span!("transient_batch", "k" = k);
    let _ = &span;
    if spec.dt <= 0.0 || !spec.dt.is_finite() {
        return Err(SpiceError::InvalidSpec(format!(
            "time step must be positive, got {}",
            spec.dt
        )));
    }
    if spec.t_stop <= 0.0 || !spec.t_stop.is_finite() {
        return Err(SpiceError::InvalidSpec(format!(
            "stop time must be positive, got {}",
            spec.t_stop
        )));
    }
    if spec.start_from_dcop {
        return Err(SpiceError::InvalidSpec(
            "batched transient does not support start_from_dcop".into(),
        ));
    }
    if let StepControl::Adaptive(c) = &spec.step {
        let sane = c.lte_reltol > 0.0
            && c.lte_abstol > 0.0
            && c.min_shrink > 0.0
            && c.min_shrink <= 1.0
            && c.max_stretch >= 1.0
            && c.max_growth > 1.0
            && c.reject_threshold >= 1.0;
        if !sane {
            return Err(SpiceError::InvalidSpec(format!(
                "inconsistent adaptive step control: {c:?}"
            )));
        }
    }
    for &(node, _) in &spec.initial_voltages {
        if node.index() >= ckts[0].node_count() {
            return Err(SpiceError::InvalidCircuit(format!(
                "initial condition on unknown node {node}"
            )));
        }
    }

    let mut ws = BatchWorkspace::new(ckts)?;
    let wall_start = Instant::now();
    let n = ws.n;
    let n_node_unknowns = ws.n_node_unknowns;

    // Initial iterate: every lane starts from the same initial voltages.
    let mut x = vec![0.0f64; n * k];
    for &(node, v) in &spec.initial_voltages {
        if let Some(r) = row_of(node) {
            for lane in 0..k {
                x[r * k + lane] = v;
            }
        }
    }

    // Per-lane capacitor state and values, cap-major lane-interleaved.
    let cap_nodes: Vec<(NodeId, NodeId)> = ckts[0]
        .elements
        .iter()
        .filter_map(|e| match e {
            Element::Capacitor { a, b, .. } => Some((*a, *b)),
            _ => None,
        })
        .collect();
    let n_caps = cap_nodes.len();
    let mut farads = vec![0.0f64; n_caps * k];
    for (lane, c) in ckts.iter().enumerate() {
        let mut ci = 0usize;
        for e in &c.elements {
            if let Element::Capacitor { farads: f, .. } = e {
                farads[ci * k + lane] = *f;
                ci += 1;
            }
        }
    }
    let lane_voltage = |x: &[f64], node: NodeId, lane: usize| -> f64 {
        match row_of(node) {
            Some(r) => x[r * k + lane],
            None => 0.0,
        }
    };
    let mut caps = vec![CapLane::default(); n_caps * k];
    for (ci, &(a, b)) in cap_nodes.iter().enumerate() {
        for lane in 0..k {
            caps[ci * k + lane].v = lane_voltage(&x, a, lane) - lane_voltage(&x, b, lane);
        }
    }
    let mut companions = vec![(0.0f64, 0.0f64); n_caps * k];

    // Per-lane recording.
    let record_nodes: Vec<NodeId> = if spec.record_nodes.is_empty() {
        (0..ckts[0].node_count()).map(NodeId).collect()
    } else {
        let mut nodes = spec.record_nodes.clone();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    };
    let mut time: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut columns: Vec<BTreeMap<NodeId, Vec<f64>>> = (0..k)
        .map(|_| record_nodes.iter().map(|&nd| (nd, Vec::new())).collect())
        .collect();
    let mut current_columns: Vec<BTreeMap<usize, Vec<f64>>> = (0..k)
        .map(|_| {
            spec.record_currents
                .iter()
                .map(|vs| (vs.0, Vec::new()))
                .collect()
        })
        .collect();
    let record_lane = |lane: usize,
                       t: f64,
                       x: &[f64],
                       time: &mut [Vec<f64>],
                       columns: &mut [BTreeMap<NodeId, Vec<f64>>],
                       currents: &mut [BTreeMap<usize, Vec<f64>>]| {
        time[lane].push(t);
        for (&node, col) in columns[lane].iter_mut() {
            col.push(match row_of(node) {
                Some(r) => x[r * k + lane],
                None => 0.0,
            });
        }
        for (&branch, col) in currents[lane].iter_mut() {
            col.push(x[(n_node_unknowns + branch) * k + lane]);
        }
    };
    for lane in 0..k {
        record_lane(lane, 0.0, &x, &mut time, &mut columns, &mut current_columns);
    }

    // Per-lane stop/retirement tracking.
    let mut active = vec![true; k];
    let mut stopped_early = vec![false; k];
    let mut steps_taken = vec![0usize; k];
    let mut crossings_seen = vec![0usize; k];
    let mut stop_prev: Vec<Option<f64>> = (0..k)
        .map(|lane| {
            spec.stop
                .as_ref()
                .map(|StopCondition::RisingCrossings { node, .. }| lane_voltage(&x, *node, lane))
        })
        .collect();
    let occupancy_hist =
        rotsv_obs::metrics_enabled().then(|| rotsv_obs::histogram("mc.batch_occupancy"));

    let opts = NewtonOpts {
        max_iterations: spec.max_newton,
        ..NewtonOpts::default()
    };
    let adaptive = match spec.step {
        StepControl::Fixed => None,
        StepControl::Adaptive(c) => Some(c),
    };
    let dt_min = adaptive.map_or(spec.dt, |c| spec.dt * c.min_shrink);
    let dt_max = adaptive.map_or(spec.dt, |c| spec.dt * c.max_stretch);
    let mut dt_next = spec.dt;
    let mut hist: Option<(Vec<f64>, f64)> = None;

    let mut t = 0.0f64;
    let mut steps = 0usize;
    const MAX_HALVINGS: u32 = 12;

    'outer: while t < spec.t_stop - 1e-18 && active.iter().any(|&a| a) {
        let mut dt_try = dt_next.min(spec.t_stop - t);
        let mut halvings = 0u32;
        loop {
            let use_trap = spec.method == IntegrationMethod::Trapezoidal && steps >= 2;
            for (idx, comp) in companions.iter_mut().enumerate() {
                let c = caps[idx];
                let f = farads[idx];
                *comp = if f == 0.0 {
                    (0.0, 0.0)
                } else if use_trap {
                    let geq = 2.0 * f / dt_try;
                    (geq, -(geq * c.v + c.i))
                } else {
                    let geq = f / dt_try;
                    (geq, -geq * c.v)
                };
            }
            let t_next = t + dt_try;
            // Linear extrapolation start, per active lane; retired lanes
            // stay at their frozen solution.
            let mut x_try = x.clone();
            if let Some((x_prev, dt_prev)) = &hist {
                if steps >= 2 {
                    let scale = dt_try / dt_prev;
                    for i in 0..n {
                        for (lane, &is_active) in active.iter().enumerate() {
                            if is_active {
                                let xi = x[i * k + lane];
                                x_try[i * k + lane] = xi + (xi - x_prev[i * k + lane]) * scale;
                            }
                        }
                    }
                }
            }
            match newton_batch(
                &mut ws,
                ckts,
                &mut x_try,
                t_next,
                &companions,
                &active,
                &opts,
            ) {
                Ok(true) => {
                    // LTE test: worst scaled error over the active lanes;
                    // the shared dt is effectively min over lane proposals.
                    if let (Some(c), Some((x_prev, dt_prev))) = (adaptive.as_ref(), hist.as_ref()) {
                        if steps >= 2 {
                            let scale = dt_try / dt_prev;
                            let mut err = 0.0f64;
                            for i in 0..n_node_unknowns {
                                for (lane, &is_active) in active.iter().enumerate() {
                                    if !is_active {
                                        continue;
                                    }
                                    let xi = x[i * k + lane];
                                    let pred = xi + (xi - x_prev[i * k + lane]) * scale;
                                    let sol = x_try[i * k + lane];
                                    let tol = c.lte_abstol + c.lte_reltol * sol.abs().max(xi.abs());
                                    err = err.max((sol - pred).abs() / tol);
                                }
                            }
                            if err > c.reject_threshold && dt_try > dt_min * (1.0 + 1e-9) {
                                for (lane, stats) in ws.stats.iter_mut().enumerate() {
                                    if active[lane] {
                                        stats.steps_rejected += 1;
                                    }
                                }
                                dt_try = (dt_try * (0.9 / err.sqrt()).clamp(0.1, 0.5)).max(dt_min);
                                continue;
                            }
                            let grow = (0.9 / err.max(1e-12).sqrt()).min(c.max_growth);
                            dt_next = (dt_try * grow).clamp(dt_min, dt_max);
                        }
                    }
                    for (ci, &(a, b)) in cap_nodes.iter().enumerate() {
                        for (lane, &is_active) in active.iter().enumerate() {
                            if !is_active {
                                continue;
                            }
                            let idx = ci * k + lane;
                            let v_new =
                                lane_voltage(&x_try, a, lane) - lane_voltage(&x_try, b, lane);
                            let (geq, ieq) = companions[idx];
                            caps[idx].i = geq * v_new + ieq;
                            caps[idx].v = v_new;
                        }
                    }
                    hist = Some((std::mem::replace(&mut x, x_try), dt_try));
                    t = t_next;
                    steps += 1;
                    let n_active = active.iter().filter(|&&a| a).count();
                    if let Some(h) = &occupancy_hist {
                        h.observe(n_active as f64 / k as f64);
                    }
                    for lane in 0..k {
                        if !active[lane] {
                            continue;
                        }
                        ws.stats[lane].steps_accepted += 1;
                        steps_taken[lane] += 1;
                        record_lane(lane, t, &x, &mut time, &mut columns, &mut current_columns);
                        if let Some(StopCondition::RisingCrossings {
                            node,
                            threshold,
                            count,
                        }) = &spec.stop
                        {
                            let v_now = lane_voltage(&x, *node, lane);
                            let prev = stop_prev[lane].replace(v_now).unwrap_or(v_now);
                            if prev < *threshold && v_now >= *threshold {
                                crossings_seen[lane] += 1;
                                if crossings_seen[lane] >= *count {
                                    // Retire: freeze the lane, stop
                                    // recording, stop voting on dt.
                                    stopped_early[lane] = true;
                                    active[lane] = false;
                                }
                            }
                        }
                    }
                    if !active.iter().any(|&a| a) {
                        break 'outer;
                    }
                    break;
                }
                Ok(false) => {
                    for (lane, stats) in ws.stats.iter_mut().enumerate() {
                        if active[lane] {
                            stats.steps_rejected += 1;
                        }
                    }
                    if adaptive.is_some() {
                        if dt_try <= dt_min * (1.0 + 1e-9) {
                            return Err(SpiceError::NoConvergence {
                                analysis: "transient_batch",
                                time: t_next,
                                iterations: opts.max_iterations,
                            });
                        }
                        dt_try = (dt_try * 0.5).max(dt_min);
                    } else {
                        halvings += 1;
                        if halvings > MAX_HALVINGS {
                            return Err(SpiceError::NoConvergence {
                                analysis: "transient_batch",
                                time: t_next,
                                iterations: opts.max_iterations,
                            });
                        }
                        dt_try *= 0.5;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    // Wall time split equally: lanes ran in lockstep, so each lane's
    // share of the batch is 1/k (summing lanes matches the batch total).
    let wall = wall_start.elapsed().as_secs_f64();
    let mut out = Vec::with_capacity(k);
    for (lane, ((time, columns), current_columns)) in time
        .into_iter()
        .zip(columns)
        .zip(current_columns)
        .enumerate()
    {
        let mut stats = ws.stats[lane];
        stats.wall_seconds = wall / k as f64;
        out.push(TransientResult::from_parts(
            time,
            columns,
            current_columns,
            stopped_early[lane],
            steps_taken[lane],
            stats,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use crate::transient::TransientSpec;

    fn rc_circuit(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(vin, vout, r);
        ckt.add_capacitor(vout, Circuit::GROUND, c);
        (ckt, vout)
    }

    #[test]
    fn batched_rc_matches_scalar_per_lane() {
        // Three RC lanes with different time constants; fixed grid so the
        // scalar and batched runs share every time point exactly.
        let lanes = [(1e3, 1e-9), (1.3e3, 1e-9), (1e3, 0.7e-9)];
        let built: Vec<(Circuit, NodeId)> = lanes.iter().map(|&(r, c)| rc_circuit(r, c)).collect();
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let spec = TransientSpec::new(3e-6, 2e-9).record(&[built[0].1]);
        let batched = transient_batch(&ckts, &spec).unwrap();
        assert_eq!(batched.len(), 3);
        for ((ckt, vout), res) in built.iter().zip(&batched) {
            let scalar = ckt.transient(&spec).unwrap();
            let wb = res.waveform(*vout);
            let ws = scalar.waveform(*vout);
            assert_eq!(wb.time().len(), ws.time().len());
            for (a, b) in wb.values().iter().zip(ws.values()) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn batched_adaptive_tracks_scalar_within_tolerance() {
        // Identical lanes under adaptive stepping: every lane must agree
        // with the scalar adaptive run to interpolation accuracy.
        let (ckt, vout) = rc_circuit(1e3, 1e-9);
        let ckts = [&ckt, &ckt];
        let spec = TransientSpec::new(3e-6, 2e-9)
            .record(&[vout])
            .step_control(StepControl::adaptive());
        let batched = transient_batch(&ckts, &spec).unwrap();
        let scalar = ckt.transient(&spec).unwrap();
        for res in &batched {
            let wb = res.waveform(vout);
            for frac in [0.5f64, 1.0, 2.0] {
                let t = frac * 1e-6;
                let expect = scalar.waveform(vout).value_at(t);
                assert!((wb.value_at(t) - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn lane_retirement_freezes_finished_lanes() {
        // Lane 1's RC is much faster, so its rising crossing fires far
        // earlier; it must retire with fewer recorded points while lane 0
        // runs on.
        let built = [rc_circuit(1e3, 1e-9), rc_circuit(1e2, 1e-10)];
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let vout = built[0].1;
        let spec = TransientSpec::new(3e-6, 2e-9)
            .record(&[vout])
            .stop_after_rising(vout, 0.5, 1);
        let res = transient_batch(&ckts, &spec).unwrap();
        assert!(res[0].stopped_early());
        assert!(res[1].stopped_early());
        assert!(
            res[1].time().len() < res[0].time().len(),
            "fast lane must retire earlier: {} vs {}",
            res[1].time().len(),
            res[0].time().len()
        );
        // Retired lane's final sample is at its own stop time.
        assert!(res[1].time().last().unwrap() < res[0].time().last().unwrap());
    }

    #[test]
    fn topology_mismatch_is_rejected() {
        let (a, _) = rc_circuit(1e3, 1e-9);
        let mut b = Circuit::new();
        let n1 = b.node("in");
        b.add_resistor(n1, Circuit::GROUND, 1e3);
        let err = transient_batch(&[&a, &b], &TransientSpec::new(1e-6, 1e-9)).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidCircuit(_)));
    }

    #[test]
    fn dcop_start_is_rejected() {
        let (a, _) = rc_circuit(1e3, 1e-9);
        let err = transient_batch(&[&a], &TransientSpec::new(1e-6, 1e-9).from_dcop()).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidSpec(_)));
    }

    #[test]
    fn batch_shares_one_symbolic_analysis() {
        let built = [rc_circuit(1e3, 1e-9), rc_circuit(1.1e3, 1e-9)];
        let ckts: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let res = transient_batch(&ckts, &TransientSpec::new(1e-7, 1e-9)).unwrap();
        let analyses: u64 = res.iter().map(|r| r.stats().symbolic_analyses).sum();
        assert_eq!(analyses, 1, "one analysis for the whole batch");
        assert!(res[1].stats().factorizations > 0);
    }
}
