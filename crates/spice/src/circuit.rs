//! Netlist construction.

use std::fmt;
use std::sync::Arc;

use rotsv_num::sparse::AnalyzeOptions;
use rotsv_num::SymbolicCache;

use crate::device::NonlinearDevice;
use crate::node::NodeId;
use crate::source::SourceWaveform;

/// Default minimum node-to-ground conductance (SPICE `GMIN`).
///
/// Keeps the MNA matrix non-singular when nodes float, e.g. behind a
/// tri-stated driver or an opened TSV.
pub const DEFAULT_GMIN: f64 = 1e-12;

/// Handle to a voltage source, usable to read back its branch current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VSourceId(pub(crate) usize);

pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        farads: f64,
    },
    VSource {
        pos: NodeId,
        neg: NodeId,
        wave: SourceWaveform,
        branch: usize,
    },
    ISource {
        from: NodeId,
        to: NodeId,
        wave: SourceWaveform,
    },
    Nonlinear(Box<dyn NonlinearDevice>),
}

impl fmt::Debug for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Resistor { a, b, ohms } => write!(f, "R({a},{b})={ohms}"),
            Element::Capacitor { a, b, farads } => write!(f, "C({a},{b})={farads}"),
            Element::VSource { pos, neg, .. } => write!(f, "V({pos},{neg})"),
            Element::ISource { from, to, .. } => write!(f, "I({from},{to})"),
            Element::Nonlinear(d) => write!(f, "X({})", d.name()),
        }
    }
}

/// A circuit netlist.
///
/// Nodes are created with [`Circuit::node`]; node 0 ([`Circuit::GROUND`]) is
/// implicit. Elements connect nodes; nonlinear devices are added as boxed
/// [`NonlinearDevice`] implementations.
///
/// # Examples
///
/// ```
/// use rotsv_spice::{Circuit, SourceWaveform};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.0));
/// ckt.add_resistor(a, Circuit::GROUND, 50.0);
/// assert_eq!(ckt.node_count(), 2); // ground + "a"
/// ```
#[derive(Debug)]
pub struct Circuit {
    node_names: Vec<String>,
    pub(crate) elements: Vec<Element>,
    pub(crate) n_vsources: usize,
    pub(crate) n_capacitors: usize,
    gmin: f64,
    symbolic_cache: Option<Arc<SymbolicCache>>,
    solver_options: AnalyzeOptions,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// The ground node (0 V reference).
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self {
            node_names: vec!["gnd".to_owned()],
            elements: Vec::new(),
            n_vsources: 0,
            n_capacitors: 0,
            gmin: DEFAULT_GMIN,
            symbolic_cache: None,
            solver_options: AnalyzeOptions::default(),
        }
    }

    /// Allocates a new node with a diagnostic `name`.
    pub fn node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_owned());
        id
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name given to `node` at creation.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of MNA unknowns: non-ground node voltages plus voltage-source
    /// branch currents.
    pub fn unknown_count(&self) -> usize {
        self.node_count() - 1 + self.n_vsources
    }

    /// Number of voltage sources.
    pub fn vsource_count(&self) -> usize {
        self.n_vsources
    }

    /// Minimum node-to-ground conductance applied during analysis.
    pub fn gmin(&self) -> f64 {
        self.gmin
    }

    /// Overrides the default gmin.
    ///
    /// # Panics
    ///
    /// Panics if `gmin` is negative or non-finite.
    pub fn set_gmin(&mut self, gmin: f64) {
        assert!(gmin >= 0.0 && gmin.is_finite(), "gmin must be >= 0");
        self.gmin = gmin;
    }

    fn check_node(&self, n: NodeId) {
        assert!(
            n.0 < self.node_names.len(),
            "node {n} does not belong to this circuit"
        );
    }

    /// Adds a resistor of `ohms` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive and finite, or if either
    /// node is foreign.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) {
        self.check_node(a);
        self.check_node(b);
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive and finite, got {ohms}"
        );
        self.elements.push(Element::Resistor { a, b, ohms });
    }

    /// Adds a capacitor of `farads` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative or non-finite, or if either node is
    /// foreign. A zero-value capacitor is accepted and ignored numerically.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) {
        self.check_node(a);
        self.check_node(b);
        assert!(
            farads >= 0.0 && farads.is_finite(),
            "capacitance must be >= 0 and finite, got {farads}"
        );
        self.n_capacitors += 1;
        self.elements.push(Element::Capacitor { a, b, farads });
    }

    /// Adds an independent voltage source: `pos − neg = wave(t)`.
    ///
    /// Returns a handle usable to read the branch current from solutions.
    ///
    /// # Panics
    ///
    /// Panics if either node is foreign.
    pub fn add_vsource(&mut self, pos: NodeId, neg: NodeId, wave: SourceWaveform) -> VSourceId {
        self.check_node(pos);
        self.check_node(neg);
        let branch = self.n_vsources;
        self.n_vsources += 1;
        self.elements.push(Element::VSource {
            pos,
            neg,
            wave,
            branch,
        });
        VSourceId(branch)
    }

    /// Adds an independent current source pushing `wave(t)` amps from
    /// `from` to `to` (leaving `from`, entering `to`).
    ///
    /// # Panics
    ///
    /// Panics if either node is foreign.
    pub fn add_isource(&mut self, from: NodeId, to: NodeId, wave: SourceWaveform) {
        self.check_node(from);
        self.check_node(to);
        self.elements.push(Element::ISource { from, to, wave });
    }

    /// Adds a nonlinear device.
    ///
    /// # Panics
    ///
    /// Panics if any of the device's terminals is foreign.
    pub fn add_device(&mut self, device: Box<dyn NonlinearDevice>) {
        for &n in device.nodes() {
            self.check_node(n);
        }
        self.elements.push(Element::Nonlinear(device));
    }

    /// Number of elements in the netlist.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Attaches a shared topology-keyed symbolic-analysis cache.
    ///
    /// Analyses on this circuit then go through the cache, so circuits
    /// with the same sparsity pattern (e.g. the T1 and T2 rings of one
    /// ΔT measurement, or all dies of an MC population) pay one
    /// `lu_analyze` per topology instead of one per transient.
    /// Correctness is unaffected: the cached pivot order re-analyzes
    /// automatically if a circuit's values make it unstable.
    pub fn set_symbolic_cache(&mut self, cache: Arc<SymbolicCache>) {
        self.symbolic_cache = Some(cache);
    }

    /// The symbolic-analysis cache attached to this circuit, if any.
    pub fn symbolic_cache(&self) -> Option<&Arc<SymbolicCache>> {
        self.symbolic_cache.as_ref()
    }

    /// Chooses how the sparse solver analyzes this circuit's Jacobian
    /// (BTF + minimum-degree ordering, equilibration scaling). The
    /// default [`AnalyzeOptions`] suit MNA systems; tests and benchmarks
    /// override them to isolate individual pipeline stages.
    ///
    /// Options participate in the [`SymbolicCache`] key, so circuits
    /// sharing a cache but analyzed under different options never share
    /// an analysis.
    pub fn set_solver_options(&mut self, opts: AnalyzeOptions) {
        self.solver_options = opts;
    }

    /// The analysis options the sparse solver uses for this circuit.
    pub fn solver_options(&self) -> AnalyzeOptions {
        self.solver_options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_circuit_has_only_ground() {
        let ckt = Circuit::new();
        assert_eq!(ckt.node_count(), 1);
        assert_eq!(ckt.unknown_count(), 0);
        assert_eq!(ckt.node_name(Circuit::GROUND), "gnd");
    }

    #[test]
    fn nodes_and_unknowns_are_counted() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor(a, b, 1.0);
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_capacitor(b, Circuit::GROUND, 1e-12);
        assert_eq!(ckt.node_count(), 3);
        assert_eq!(ckt.unknown_count(), 3); // two node voltages + one branch
        assert_eq!(ckt.element_count(), 3);
        assert_eq!(ckt.vsource_count(), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_resistance_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor(a, Circuit::GROUND, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_capacitance_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor(a, Circuit::GROUND, -1.0);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_node_rejected() {
        let mut ckt = Circuit::new();
        ckt.add_resistor(NodeId(5), Circuit::GROUND, 1.0);
    }

    #[test]
    fn vsource_ids_are_sequential() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v0 = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.0));
        let v1 = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(2.0));
        assert_eq!(v0.0, 0);
        assert_eq!(v1.0, 1);
    }
}
