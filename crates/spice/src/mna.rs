//! Modified Nodal Analysis assembly and the shared Newton iteration.
//!
//! Unknown ordering: `x = [v(node 1), …, v(node N−1), i(branch 0), …]`.
//!
//! The MNA matrix of a fixed netlist has a fixed sparsity pattern — Newton
//! iterations, time steps and Monte-Carlo samples only change the values.
//! `MnaWorkspace::new` therefore walks the element list once to record
//! the stamp coordinates, builds a [`SparseMatrix`] from them, and keeps
//! the per-stamp value-slot sequence. Every subsequent
//! `MnaWorkspace::assemble` replays exactly that sequence through a
//! cursor, writing values straight into the CSR slots with no searching.
//! (Capacitors stamp in every mode — a zero conductance under
//! `CapMode::Open` — precisely so the replayed sequence never changes.)
//!
//! The Newton loop is formulated in **delta form**: it solves
//! `J·Δ = b(x) − A(x)·x` and updates `x += Δ`. Because the right-hand side
//! is the true residual of the linearized system, the factorization of `J`
//! may be *stale* (reused from an earlier iteration or even an earlier
//! time step) without changing the fixed point — only the convergence
//! rate. `NewtonOpts::max_stale` bounds the reuse and a residual stall
//! check triggers an early refresh, giving modified-Newton savings on the
//! smooth stretches and full-Newton robustness on the switching edges.

use std::sync::Arc;

use rotsv_num::sparse::{AnalyzeOptions, SolverStats, SparseLu, SparseMatrix, SymbolicCache};

use crate::circuit::{Circuit, Element};
use crate::device::DeviceStamp;
use crate::error::SpiceError;
use crate::node::NodeId;

/// How capacitors enter the system.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CapMode<'a> {
    /// DC: capacitors are open circuits.
    Open,
    /// Transient: each capacitor `k` is a Norton companion
    /// `(geq, ieq)` with `i = geq·v + ieq`.
    Companion(&'a [(f64, f64)]),
}

/// Reusable workspace for repeated assembly/solve cycles.
///
/// Owns the sparse matrix, the slot-replay sequence, the cached
/// [`SparseLu`] factorization and the [`SolverStats`] counters for
/// everything solved through it.
pub(crate) struct MnaWorkspace {
    a: SparseMatrix,
    pub b: Vec<f64>,
    /// Value-slot sequence in stamp order; `assemble` replays it.
    slots: Vec<usize>,
    stamps: Vec<DeviceStamp>,
    n_node_unknowns: usize,
    /// Cached factorization; `None` until the first Newton iteration.
    lu: Option<SparseLu>,
    /// Newton iterations solved since `lu` was last refactored.
    stale_iters: usize,
    /// Snapshot of the matrix values `lu` was computed from; a refactor
    /// request with identical values is a no-op (linear circuits hit this
    /// on every iteration and every fixed-dt time step).
    last_factored: Vec<f64>,
    /// Residual scratch buffer.
    resid: Vec<f64>,
    /// Topology-keyed symbolic-analysis cache inherited from the
    /// circuit; `None` keeps the workspace fully private.
    cache: Option<Arc<SymbolicCache>>,
    /// Analysis options inherited from the circuit; every analysis of
    /// this workspace's Jacobian (first factor and drift fallbacks) uses
    /// them.
    opts: AnalyzeOptions,
    /// Work counters, accumulated across every solve through this
    /// workspace.
    pub stats: SolverStats,
    /// Staleness-at-refactor histogram handle; resolved once at
    /// construction (only when metrics are enabled) so the Newton hot
    /// path never touches the metrics registry.
    staleness_hist: Option<std::sync::Arc<rotsv_obs::Histogram>>,
}

/// Voltage of `node` under solution vector `x`.
#[inline]
pub(crate) fn node_voltage(x: &[f64], node: NodeId) -> f64 {
    if node.is_ground() {
        0.0
    } else {
        x[node.index() - 1]
    }
}

/// MNA row of `node`'s voltage unknown; `None` for ground.
#[inline]
pub(crate) fn row_of(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

/// Emits the coordinates of a two-terminal conductance stamp in the same
/// order [`MnaWorkspace::stamp_conductance`] writes values.
fn conductance_coords(a: NodeId, b: NodeId, coords: &mut Vec<(usize, usize)>) {
    match (row_of(a), row_of(b)) {
        (Some(ra), Some(rb)) => {
            coords.push((ra, ra));
            coords.push((rb, rb));
            coords.push((ra, rb));
            coords.push((rb, ra));
        }
        (Some(ra), None) => coords.push((ra, ra)),
        (None, Some(rb)) => coords.push((rb, rb)),
        (None, None) => {}
    }
}

/// One topology walk recording every stamp coordinate in the exact
/// order the scalar and batched `assemble` replays produce values.
pub(crate) fn stamp_coords(ckt: &Circuit) -> Vec<(usize, usize)> {
    let n_nodes = ckt.node_count() - 1;
    let mut coords = Vec::new();
    for i in 0..n_nodes {
        coords.push((i, i)); // gmin shunt
    }
    for elem in &ckt.elements {
        match elem {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                conductance_coords(*a, *b, &mut coords);
            }
            Element::VSource {
                pos, neg, branch, ..
            } => {
                let rb = n_nodes + branch;
                if let Some(rp) = row_of(*pos) {
                    coords.push((rp, rb));
                    coords.push((rb, rp));
                }
                if let Some(rn) = row_of(*neg) {
                    coords.push((rn, rb));
                    coords.push((rb, rn));
                }
            }
            Element::ISource { .. } => {}
            Element::Nonlinear(dev) => {
                for &nk in dev.nodes() {
                    let Some(rk) = row_of(nk) else { continue };
                    for &nj in dev.nodes() {
                        if let Some(cj) = row_of(nj) {
                            coords.push((rk, cj));
                        }
                    }
                }
            }
        }
    }
    coords
}

impl MnaWorkspace {
    pub fn new(ckt: &Circuit) -> Self {
        let n = ckt.unknown_count();
        let n_nodes = ckt.node_count() - 1;
        let stamps: Vec<DeviceStamp> = ckt
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Nonlinear(d) => Some(DeviceStamp::new(d.nodes().len())),
                _ => None,
            })
            .collect();

        let coords = stamp_coords(ckt);
        let (a, slots) = SparseMatrix::from_coords(n, &coords);

        Self {
            a,
            b: vec![0.0; n],
            slots,
            stamps,
            n_node_unknowns: n_nodes,
            lu: None,
            stale_iters: 0,
            last_factored: Vec::new(),
            resid: vec![0.0; n],
            cache: ckt.symbolic_cache().cloned(),
            opts: ckt.solver_options(),
            stats: SolverStats::default(),
            staleness_hist: rotsv_obs::metrics_enabled()
                .then(|| rotsv_obs::histogram("mna.factor_staleness")),
        }
    }

    /// Assembles `A` and `b` at iterate `x`, time `t`, with independent
    /// sources scaled by `alpha` (used by source stepping) and an extra
    /// node-to-ground conductance `gmin`.
    pub fn assemble(
        &mut self,
        ckt: &Circuit,
        x: &[f64],
        t: f64,
        alpha: f64,
        gmin: f64,
        caps: CapMode<'_>,
    ) {
        let n_nodes = self.n_node_unknowns;
        self.a.zero_values();
        self.b.fill(0.0);
        let mut cursor = 0usize;
        // gmin from every node to ground.
        for _ in 0..n_nodes {
            self.a.add_slot(self.slots[cursor], gmin);
            cursor += 1;
        }
        let mut cap_idx = 0usize;
        let mut dev_idx = 0usize;
        for elem in &ckt.elements {
            match elem {
                Element::Resistor { a, b, ohms } => {
                    cursor = self.stamp_conductance(cursor, *a, *b, 1.0 / ohms);
                }
                Element::Capacitor { a, b, .. } => {
                    // Stamp in every mode so the slot replay stays aligned;
                    // under CapMode::Open the conductance is simply zero.
                    let (geq, ieq) = match caps {
                        CapMode::Open => (0.0, 0.0),
                        CapMode::Companion(companions) => companions[cap_idx],
                    };
                    cursor = self.stamp_conductance(cursor, *a, *b, geq);
                    // i = geq·v + ieq flows a→b inside the device:
                    // ieq leaves node a, enters node b.
                    if let Some(ra) = row_of(*a) {
                        self.b[ra] -= ieq;
                    }
                    if let Some(rb) = row_of(*b) {
                        self.b[rb] += ieq;
                    }
                    cap_idx += 1;
                }
                Element::VSource {
                    pos,
                    neg,
                    wave,
                    branch,
                } => {
                    let rb = n_nodes + branch;
                    if row_of(*pos).is_some() {
                        self.a.add_slot(self.slots[cursor], 1.0);
                        self.a.add_slot(self.slots[cursor + 1], 1.0);
                        cursor += 2;
                    }
                    if row_of(*neg).is_some() {
                        self.a.add_slot(self.slots[cursor], -1.0);
                        self.a.add_slot(self.slots[cursor + 1], -1.0);
                        cursor += 2;
                    }
                    self.b[rb] = alpha * wave.value(t);
                }
                Element::ISource { from, to, wave } => {
                    let i = alpha * wave.value(t);
                    if let Some(rf) = row_of(*from) {
                        self.b[rf] -= i;
                    }
                    if let Some(rt) = row_of(*to) {
                        self.b[rt] += i;
                    }
                }
                Element::Nonlinear(dev) => {
                    let stamp = &mut self.stamps[dev_idx];
                    dev_idx += 1;
                    stamp.clear();
                    let nodes = dev.nodes();
                    let v: Vec<f64> = nodes.iter().map(|&n| node_voltage(x, n)).collect();
                    dev.eval(&v, stamp);
                    // Norton linearization: I(v) ≈ I0 + G·(v − v0)
                    // ⇒ stamp G on the LHS and (G·v0 − I0) on the RHS.
                    for (k, &nk) in nodes.iter().enumerate() {
                        let Some(rk) = row_of(nk) else { continue };
                        let mut rhs = -stamp.current[k];
                        for (j, &nj) in nodes.iter().enumerate() {
                            let g = stamp.jacobian[(k, j)];
                            rhs += g * v[j];
                            if row_of(nj).is_some() {
                                self.a.add_slot(self.slots[cursor], g);
                                cursor += 1;
                            }
                        }
                        self.b[rk] += rhs;
                    }
                }
            }
        }
        debug_assert_eq!(cursor, self.slots.len(), "stamp replay out of sync");
    }

    fn stamp_conductance(&mut self, mut cursor: usize, a: NodeId, b: NodeId, g: f64) -> usize {
        match (row_of(a), row_of(b)) {
            (Some(_), Some(_)) => {
                self.a.add_slot(self.slots[cursor], g);
                self.a.add_slot(self.slots[cursor + 1], g);
                self.a.add_slot(self.slots[cursor + 2], -g);
                self.a.add_slot(self.slots[cursor + 3], -g);
                cursor += 4;
            }
            (Some(_), None) | (None, Some(_)) => {
                self.a.add_slot(self.slots[cursor], g);
                cursor += 1;
            }
            (None, None) => {}
        }
        cursor
    }

    /// (Re)factors the current matrix values, reusing the symbolic
    /// analysis and pivot order when available.
    fn refactor(&mut self, t: f64) -> Result<(), SpiceError> {
        if self.lu.is_some() && self.last_factored == self.a.values() {
            // The cached factorization is exact for these values.
            self.stale_iters = 0;
            return Ok(());
        }
        let map_err = |source| SpiceError::SingularSystem { time: t, source };
        match &mut self.lu {
            None => {
                // First factorization: go through the shared symbolic
                // cache when the circuit carries one, so same-topology
                // workspaces pay one analysis between them. The cache
                // reports how many fresh analyses this call performed
                // (0 on a hit), keeping the counters honest.
                let lu = match &self.cache {
                    Some(cache) => {
                        let (lu, analyses) =
                            cache.factor_with(&self.a, self.opts).map_err(map_err)?;
                        self.stats.symbolic_analyses += analyses;
                        lu
                    }
                    None => {
                        let lu = SparseLu::new_with(&self.a, self.opts).map_err(map_err)?;
                        self.stats.symbolic_analyses += 1;
                        lu
                    }
                };
                self.lu = Some(lu);
            }
            Some(lu) => {
                let reanalyzed = lu.refactor(&self.a).map_err(map_err)?;
                if reanalyzed {
                    self.stats.symbolic_analyses += 1;
                }
            }
        }
        self.stats.factorizations += 1;
        if let Some(hist) = &self.staleness_hist {
            // How many Newton iterations the replaced factors served.
            hist.observe(self.stale_iters as f64);
        }
        self.stale_iters = 0;
        self.last_factored.clear();
        self.last_factored.extend_from_slice(self.a.values());
        Ok(())
    }
}

/// Settings for the shared Newton loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonOpts {
    pub max_iterations: usize,
    /// Absolute voltage tolerance, volts.
    pub v_abstol: f64,
    /// Relative tolerance on all unknowns.
    pub reltol: f64,
    /// Largest per-iteration node-voltage move before the update is scaled
    /// down (keeps exponential devices from overshooting).
    pub v_step_limit: f64,
    /// Modified-Newton budget: how many iterations may reuse a stale
    /// Jacobian factorization before a refresh is forced. `0` recovers
    /// classic full Newton (refactor every iteration).
    pub max_stale: usize,
}

impl Default for NewtonOpts {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            v_abstol: 1e-6,
            reltol: 1e-4,
            v_step_limit: 0.5,
            max_stale: 6,
        }
    }
}

/// A stale factorization is refreshed early when the residual norm fails
/// to shrink by at least this factor between iterations.
pub(crate) const STALL_RATIO: f64 = 0.3;

/// Runs Newton iterations from initial iterate `x`, assembling with the
/// provided parameters, until the update is below tolerance.
///
/// Delta formulation: every iteration solves `J·Δ = b − A·x` with the
/// cached (possibly stale) factorization of `J`, so the fixed point is
/// exact regardless of factorization age.
///
/// Returns the converged solution or the iteration count at failure.
#[allow(clippy::too_many_arguments)] // crate-private solver entry point
pub(crate) fn newton_solve(
    ws: &mut MnaWorkspace,
    ckt: &Circuit,
    mut x: Vec<f64>,
    t: f64,
    alpha: f64,
    gmin: f64,
    caps: CapMode<'_>,
    opts: &NewtonOpts,
) -> Result<Vec<f64>, NewtonFailure> {
    let _span = rotsv_obs::span!("newton");
    let n_nodes = ckt.node_count() - 1;
    let mut prev_rnorm = f64::INFINITY;
    // A damped update shrinks the residual slowly no matter how fresh the
    // Jacobian is, so it must not trip the stall detector.
    let mut prev_damped = false;
    for iter in 0..opts.max_iterations {
        ws.stats.newton_iterations += 1;
        ws.assemble(ckt, &x, t, alpha, gmin, caps);
        // Residual of the linearization at x: r = b − A·x. (For the
        // converged x this is the true device-equation residual, which is
        // what makes stale-factorization reuse sound.)
        let n = x.len();
        let mut resid = std::mem::take(&mut ws.resid);
        ws.a.mul_vec_into(&x, &mut resid);
        for (ri, bi) in resid.iter_mut().zip(&ws.b) {
            *ri = bi - *ri;
        }
        let rnorm = resid.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        // Refresh the factorization when missing, over budget, or when a
        // stale Jacobian stops making progress. A damped previous update
        // means the iterate is far from the solution: full Newton is
        // needed there, and slow residual decrease is expected (so it is
        // not evidence of staleness either).
        let stalled = !prev_damped && rnorm > STALL_RATIO * prev_rnorm;
        if ws.lu.is_none() || ws.stale_iters >= opts.max_stale || stalled || prev_damped {
            if let Err(error) = ws.refactor(t) {
                ws.resid = resid;
                return Err(NewtonFailure {
                    iterations: iter,
                    error: Some(error),
                });
            }
        } else {
            ws.stale_iters += 1;
        }
        let lu = ws.lu.as_ref().expect("factorization exists after refactor");
        ws.stats.solves += 1;
        let delta = match lu.solve(&resid) {
            Ok(d) => d,
            Err(source) => {
                ws.resid = resid;
                return Err(NewtonFailure {
                    iterations: iter,
                    error: Some(SpiceError::SingularSystem { time: t, source }),
                });
            }
        };
        ws.resid = resid;
        prev_rnorm = rnorm;

        // Largest node-voltage move decides both damping and convergence.
        let mut max_dv = 0.0f64;
        for d in delta.iter().take(n_nodes) {
            max_dv = max_dv.max(d.abs());
        }
        if !delta.iter().all(|v| v.is_finite()) {
            return Err(NewtonFailure {
                iterations: iter,
                error: None,
            });
        }
        let mut converged = max_dv <= opts.v_abstol;
        if !converged {
            // Also allow relative convergence for large swings.
            converged = (0..n_nodes)
                .all(|i| delta[i].abs() <= opts.v_abstol + opts.reltol * (x[i] + delta[i]).abs());
        }
        if converged {
            for i in 0..n {
                x[i] += delta[i];
            }
            return Ok(x);
        }
        prev_damped = max_dv > opts.v_step_limit;
        if prev_damped {
            // Damped update: move only part of the way.
            let s = opts.v_step_limit / max_dv;
            for i in 0..n {
                x[i] += s * delta[i];
            }
        } else {
            for i in 0..n {
                x[i] += delta[i];
            }
        }
    }
    Err(NewtonFailure {
        iterations: opts.max_iterations,
        error: None,
    })
}

/// Failure report from [`newton_solve`].
#[derive(Debug)]
pub(crate) struct NewtonFailure {
    pub iterations: usize,
    /// A hard error (singular matrix); `None` means plain non-convergence.
    pub error: Option<SpiceError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    #[test]
    fn divider_assembles_and_solves() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(2.0));
        ckt.add_resistor(a, b, 1e3);
        ckt.add_resistor(b, Circuit::GROUND, 1e3);
        let mut ws = MnaWorkspace::new(&ckt);
        let x0 = vec![0.0; ckt.unknown_count()];
        let x = newton_solve(
            &mut ws,
            &ckt,
            x0,
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        assert!((node_voltage(&x, a) - 2.0).abs() < 1e-9);
        assert!((node_voltage(&x, b) - 1.0).abs() < 1e-6);
        // Branch current: 2 V across 2 kΩ = 1 mA, flowing out of the
        // source's positive terminal, i.e. branch current is −1 mA by the
        // pos→through-source convention.
        let i_branch = x[2];
        assert!((i_branch + 1e-3).abs() < 1e-8, "i = {i_branch}");
        // Linear circuit: one analysis, one factorization.
        assert_eq!(ws.stats.symbolic_analyses, 1);
        assert_eq!(ws.stats.factorizations, 1);
    }

    #[test]
    fn solver_options_flow_into_the_analysis_and_its_cache_key() {
        use rotsv_num::sparse::{OrderingStrategy, Scaling, SymbolicCache};

        let build = |opts: AnalyzeOptions, cache: &Arc<SymbolicCache>| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(2.0));
            ckt.add_resistor(a, b, 1e3);
            ckt.add_resistor(b, Circuit::GROUND, 1e3);
            ckt.set_symbolic_cache(Arc::clone(cache));
            ckt.set_solver_options(opts);
            let mut ws = MnaWorkspace::new(&ckt);
            let x = newton_solve(
                &mut ws,
                &ckt,
                vec![0.0; ckt.unknown_count()],
                0.0,
                1.0,
                ckt.gmin(),
                CapMode::Open,
                &NewtonOpts::default(),
            )
            .unwrap();
            (node_voltage(&x, b), ws.stats.symbolic_analyses)
        };

        let cache = Arc::new(SymbolicCache::new());
        let staged = AnalyzeOptions::default();
        let classic = AnalyzeOptions {
            ordering: OrderingStrategy::Natural,
            scaling: Scaling::Off,
        };
        let (v_staged, n1) = build(staged, &cache);
        let (v_classic, n2) = build(classic, &cache);
        assert_eq!((n1, n2), (1, 1));
        // Same topology under different options: two distinct cache
        // entries, never a shared analysis.
        assert_eq!(cache.len(), 2);
        assert!((v_staged - v_classic).abs() < 1e-9);
        // Re-running either configuration hits its cache entry.
        let (_, n3) = build(staged, &cache);
        assert_eq!(n3, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn isource_direction_matches_convention() {
        // 1 mA pushed from ground into node a through the source, across 1 kΩ.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource(Circuit::GROUND, a, SourceWaveform::dc(1e-3));
        ckt.add_resistor(a, Circuit::GROUND, 1e3);
        let mut ws = MnaWorkspace::new(&ckt);
        let x = newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; 1],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        assert!((node_voltage(&x, a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_held_by_gmin() {
        let mut ckt = Circuit::new();
        let a = ckt.node("float");
        let _ = a;
        let mut ws = MnaWorkspace::new(&ckt);
        let x = newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; 1],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn capacitor_open_in_dc() {
        // V -- R -- C to ground: DC voltage across C equals source voltage.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.5));
        ckt.add_resistor(a, b, 1e3);
        ckt.add_capacitor(b, Circuit::GROUND, 1e-12);
        let mut ws = MnaWorkspace::new(&ckt);
        let x = newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; ckt.unknown_count()],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        assert!((node_voltage(&x, b) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn cap_mode_switch_keeps_stamp_replay_aligned() {
        // The same workspace must assemble correctly in Open mode, then in
        // Companion mode, then in Open again (the dcop → transient path).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor(a, b, 1e3);
        ckt.add_capacitor(b, Circuit::GROUND, 1e-9);
        let mut ws = MnaWorkspace::new(&ckt);
        let x = vec![0.0; ckt.unknown_count()];
        ws.assemble(&ckt, &x, 0.0, 1.0, ckt.gmin(), CapMode::Open);
        let companions = [(1e-3, -2e-3)];
        ws.assemble(
            &ckt,
            &x,
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Companion(&companions),
        );
        // Companion conductance lands on the diagonal of node b.
        let lhs_open_then_companion = ws.b.clone();
        assert!((lhs_open_then_companion[1] - 2e-3).abs() < 1e-15);
        ws.assemble(&ckt, &x, 0.0, 1.0, ckt.gmin(), CapMode::Open);
        assert_eq!(ws.b[1], 0.0);
    }

    #[test]
    fn nonlinear_diode_converges() {
        use crate::device::test_devices::Diode;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(5.0));
        ckt.add_resistor(a, d, 1e3);
        ckt.add_device(Box::new(Diode {
            nodes: [d, Circuit::GROUND],
            i_sat: 1e-14,
            v_t: 0.02585,
        }));
        let mut ws = MnaWorkspace::new(&ckt);
        let x = newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; ckt.unknown_count()],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        let vd = node_voltage(&x, d);
        // Forward drop should land in the usual 0.6–0.8 V window and satisfy
        // KCL: (5 − vd)/1k = Is (exp(vd/vt) − 1).
        assert!((0.5..0.9).contains(&vd), "vd = {vd}");
        let i_r = (5.0 - vd) / 1e3;
        let i_d = 1e-14 * ((vd / 0.02585).exp() - 1.0);
        assert!((i_r - i_d).abs() / i_r < 1e-3);
        assert!(ws.stats.newton_iterations > 1);
        assert!(ws.stats.solves >= ws.stats.factorizations);
    }

    #[test]
    fn full_newton_mode_refactors_every_iteration() {
        use crate::device::test_devices::Diode;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(5.0));
        ckt.add_resistor(a, d, 1e3);
        ckt.add_device(Box::new(Diode {
            nodes: [d, Circuit::GROUND],
            i_sat: 1e-14,
            v_t: 0.02585,
        }));
        let mut ws = MnaWorkspace::new(&ckt);
        let opts = NewtonOpts {
            max_stale: 0,
            ..NewtonOpts::default()
        };
        newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; ckt.unknown_count()],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &opts,
        )
        .unwrap();
        assert_eq!(ws.stats.factorizations, ws.stats.newton_iterations);
    }
}
