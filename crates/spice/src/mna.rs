//! Modified Nodal Analysis assembly and the shared Newton iteration.
//!
//! Unknown ordering: `x = [v(node 1), …, v(node N−1), i(branch 0), …]`.
//! Each Newton iteration assembles the Norton linearization `A·x = b` of
//! the circuit at the previous iterate and solves for the next iterate
//! directly (the classic SPICE companion-model formulation).

use rotsv_num::linsolve::LuFactors;
use rotsv_num::matrix::Matrix;

use crate::circuit::{Circuit, Element};
use crate::device::DeviceStamp;
use crate::error::SpiceError;
use crate::node::NodeId;

/// How capacitors enter the system.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CapMode<'a> {
    /// DC: capacitors are open circuits.
    Open,
    /// Transient: each capacitor `k` is a Norton companion
    /// `(geq, ieq)` with `i = geq·v + ieq`.
    Companion(&'a [(f64, f64)]),
}

/// Reusable workspace for repeated assembly/solve cycles.
pub(crate) struct MnaWorkspace {
    pub a: Matrix,
    pub b: Vec<f64>,
    stamps: Vec<DeviceStamp>,
    n_node_unknowns: usize,
}

/// Voltage of `node` under solution vector `x`.
#[inline]
pub(crate) fn node_voltage(x: &[f64], node: NodeId) -> f64 {
    if node.is_ground() {
        0.0
    } else {
        x[node.index() - 1]
    }
}

#[inline]
fn row_of(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

impl MnaWorkspace {
    pub fn new(ckt: &Circuit) -> Self {
        let n = ckt.unknown_count();
        let stamps = ckt
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Nonlinear(d) => Some(DeviceStamp::new(d.nodes().len())),
                _ => None,
            })
            .collect();
        Self {
            a: Matrix::zeros(n, n),
            b: vec![0.0; n],
            stamps,
            n_node_unknowns: ckt.node_count() - 1,
        }
    }

    /// Assembles `A` and `b` at iterate `x`, time `t`, with independent
    /// sources scaled by `alpha` (used by source stepping) and an extra
    /// node-to-ground conductance `gmin`.
    pub fn assemble(
        &mut self,
        ckt: &Circuit,
        x: &[f64],
        t: f64,
        alpha: f64,
        gmin: f64,
        caps: CapMode<'_>,
    ) {
        let n_nodes = self.n_node_unknowns;
        self.a.fill_zero();
        self.b.fill(0.0);
        // gmin from every node to ground.
        for i in 0..n_nodes {
            self.a.add(i, i, gmin);
        }
        let mut cap_idx = 0usize;
        let mut dev_idx = 0usize;
        for elem in &ckt.elements {
            match elem {
                Element::Resistor { a, b, ohms } => {
                    self.stamp_conductance(*a, *b, 1.0 / ohms);
                }
                Element::Capacitor { a, b, .. } => {
                    if let CapMode::Companion(companions) = caps {
                        let (geq, ieq) = companions[cap_idx];
                        self.stamp_conductance(*a, *b, geq);
                        // i = geq·v + ieq flows a→b inside the device:
                        // ieq leaves node a, enters node b.
                        if let Some(ra) = row_of(*a) {
                            self.b[ra] -= ieq;
                        }
                        if let Some(rb) = row_of(*b) {
                            self.b[rb] += ieq;
                        }
                    }
                    cap_idx += 1;
                }
                Element::VSource {
                    pos,
                    neg,
                    wave,
                    branch,
                } => {
                    let rb = n_nodes + branch;
                    if let Some(rp) = row_of(*pos) {
                        self.a.add(rp, rb, 1.0);
                        self.a.add(rb, rp, 1.0);
                    }
                    if let Some(rn) = row_of(*neg) {
                        self.a.add(rn, rb, -1.0);
                        self.a.add(rb, rn, -1.0);
                    }
                    self.b[rb] = alpha * wave.value(t);
                }
                Element::ISource { from, to, wave } => {
                    let i = alpha * wave.value(t);
                    if let Some(rf) = row_of(*from) {
                        self.b[rf] -= i;
                    }
                    if let Some(rt) = row_of(*to) {
                        self.b[rt] += i;
                    }
                }
                Element::Nonlinear(dev) => {
                    let stamp = &mut self.stamps[dev_idx];
                    dev_idx += 1;
                    stamp.clear();
                    let nodes = dev.nodes();
                    let v: Vec<f64> = nodes.iter().map(|&n| node_voltage(x, n)).collect();
                    dev.eval(&v, stamp);
                    // Norton linearization: I(v) ≈ I0 + G·(v − v0)
                    // ⇒ stamp G on the LHS and (G·v0 − I0) on the RHS.
                    for (k, &nk) in nodes.iter().enumerate() {
                        let Some(rk) = row_of(nk) else { continue };
                        let mut rhs = -stamp.current[k];
                        for (j, &nj) in nodes.iter().enumerate() {
                            let g = stamp.jacobian[(k, j)];
                            rhs += g * v[j];
                            if let Some(cj) = row_of(nj) {
                                self.a.add(rk, cj, g);
                            }
                        }
                        self.b[rk] += rhs;
                    }
                }
            }
        }
    }

    fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        match (row_of(a), row_of(b)) {
            (Some(ra), Some(rb)) => {
                self.a.add(ra, ra, g);
                self.a.add(rb, rb, g);
                self.a.add(ra, rb, -g);
                self.a.add(rb, ra, -g);
            }
            (Some(ra), None) => self.a.add(ra, ra, g),
            (None, Some(rb)) => self.a.add(rb, rb, g),
            (None, None) => {}
        }
    }
}

/// Settings for the shared Newton loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonOpts {
    pub max_iterations: usize,
    /// Absolute voltage tolerance, volts.
    pub v_abstol: f64,
    /// Relative tolerance on all unknowns.
    pub reltol: f64,
    /// Largest per-iteration node-voltage move before the update is scaled
    /// down (keeps exponential devices from overshooting).
    pub v_step_limit: f64,
}

impl Default for NewtonOpts {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            v_abstol: 1e-6,
            reltol: 1e-4,
            v_step_limit: 0.5,
        }
    }
}

/// Runs Newton iterations from initial iterate `x`, assembling with the
/// provided parameters, until the update is below tolerance.
///
/// Returns the converged solution or the iteration count at failure.
pub(crate) fn newton_solve(
    ws: &mut MnaWorkspace,
    ckt: &Circuit,
    mut x: Vec<f64>,
    t: f64,
    alpha: f64,
    gmin: f64,
    caps: CapMode<'_>,
    opts: &NewtonOpts,
) -> Result<Vec<f64>, NewtonFailure> {
    let n_nodes = ckt.node_count() - 1;
    for iter in 0..opts.max_iterations {
        ws.assemble(ckt, &x, t, alpha, gmin, caps);
        let lu = match LuFactors::factor(ws.a.clone()) {
            Ok(lu) => lu,
            Err(source) => {
                return Err(NewtonFailure {
                    iterations: iter,
                    error: Some(SpiceError::SingularSystem { time: t, source }),
                })
            }
        };
        let x_new = match lu.solve(&ws.b) {
            Ok(v) => v,
            Err(source) => {
                return Err(NewtonFailure {
                    iterations: iter,
                    error: Some(SpiceError::SingularSystem { time: t, source }),
                })
            }
        };
        // Largest node-voltage move decides both damping and convergence.
        let mut max_dv = 0.0f64;
        for i in 0..n_nodes {
            max_dv = max_dv.max((x_new[i] - x[i]).abs());
        }
        let mut converged = max_dv <= opts.v_abstol;
        if !converged {
            // Also allow relative convergence for large swings.
            converged = (0..n_nodes).all(|i| {
                (x_new[i] - x[i]).abs() <= opts.v_abstol + opts.reltol * x_new[i].abs()
            });
        }
        if !x_new.iter().all(|v| v.is_finite()) {
            return Err(NewtonFailure {
                iterations: iter,
                error: None,
            });
        }
        if converged {
            // Branch currents are linear consequences of node voltages in
            // this formulation; accept the final solve.
            return Ok(x_new);
        }
        if max_dv > opts.v_step_limit {
            // Damped update: move only part of the way.
            let s = opts.v_step_limit / max_dv;
            for i in 0..x.len() {
                x[i] += s * (x_new[i] - x[i]);
            }
        } else {
            x = x_new;
        }
    }
    Err(NewtonFailure {
        iterations: opts.max_iterations,
        error: None,
    })
}

/// Failure report from [`newton_solve`].
#[derive(Debug)]
pub(crate) struct NewtonFailure {
    pub iterations: usize,
    /// A hard error (singular matrix); `None` means plain non-convergence.
    pub error: Option<SpiceError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    #[test]
    fn divider_assembles_and_solves() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(2.0));
        ckt.add_resistor(a, b, 1e3);
        ckt.add_resistor(b, Circuit::GROUND, 1e3);
        let mut ws = MnaWorkspace::new(&ckt);
        let x0 = vec![0.0; ckt.unknown_count()];
        let x = newton_solve(
            &mut ws,
            &ckt,
            x0,
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        assert!((node_voltage(&x, a) - 2.0).abs() < 1e-9);
        assert!((node_voltage(&x, b) - 1.0).abs() < 1e-6);
        // Branch current: 2 V across 2 kΩ = 1 mA, flowing out of the
        // source's positive terminal, i.e. branch current is −1 mA by the
        // pos→through-source convention.
        let i_branch = x[2];
        assert!((i_branch + 1e-3).abs() < 1e-8, "i = {i_branch}");
    }

    #[test]
    fn isource_direction_matches_convention() {
        // 1 mA pushed from ground into node a through the source, across 1 kΩ.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource(Circuit::GROUND, a, SourceWaveform::dc(1e-3));
        ckt.add_resistor(a, Circuit::GROUND, 1e3);
        let mut ws = MnaWorkspace::new(&ckt);
        let x = newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; 1],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        assert!((node_voltage(&x, a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_held_by_gmin() {
        let mut ckt = Circuit::new();
        let a = ckt.node("float");
        let _ = a;
        let mut ws = MnaWorkspace::new(&ckt);
        let x = newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; 1],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn capacitor_open_in_dc() {
        // V -- R -- C to ground: DC voltage across C equals source voltage.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.5));
        ckt.add_resistor(a, b, 1e3);
        ckt.add_capacitor(b, Circuit::GROUND, 1e-12);
        let mut ws = MnaWorkspace::new(&ckt);
        let x = newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; ckt.unknown_count()],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        assert!((node_voltage(&x, b) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn nonlinear_diode_converges() {
        use crate::device::test_devices::Diode;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(5.0));
        ckt.add_resistor(a, d, 1e3);
        ckt.add_device(Box::new(Diode {
            nodes: [d, Circuit::GROUND],
            i_sat: 1e-14,
            v_t: 0.02585,
        }));
        let mut ws = MnaWorkspace::new(&ckt);
        let x = newton_solve(
            &mut ws,
            &ckt,
            vec![0.0; ckt.unknown_count()],
            0.0,
            1.0,
            ckt.gmin(),
            CapMode::Open,
            &NewtonOpts::default(),
        )
        .unwrap();
        let vd = node_voltage(&x, d);
        // Forward drop should land in the usual 0.6–0.8 V window and satisfy
        // KCL: (5 − vd)/1k = Is (exp(vd/vt) − 1).
        assert!((0.5..0.9).contains(&vd), "vd = {vd}");
        let i_r = (5.0 - vd) / 1e3;
        let i_d = 1e-14 * ((vd / 0.02585).exp() - 1.0);
        assert!((i_r - i_d).abs() / i_r < 1e-3);
    }
}
