//! DC sweep analysis.
//!
//! Steps the value of one independent voltage source across a range,
//! re-solving the operating point at each step with the previous solution
//! as the initial guess (continuation). Used for transfer curves — e.g.
//! extracting the switching threshold of the skewed receiver that sets
//! the leakage oscillation-stop point.

use std::time::Instant;

use rotsv_num::sparse::SolverStats;

use crate::circuit::{Circuit, Element, VSourceId};
use crate::dcop::DcSolution;
use crate::error::SpiceError;
use crate::mna::{newton_solve, CapMode, MnaWorkspace, NewtonOpts};
use crate::node::NodeId;
use crate::source::SourceWaveform;

/// Result of a DC sweep: one operating point per sweep value.
#[derive(Debug, Clone)]
pub struct DcSweepResult {
    values: Vec<f64>,
    solutions: Vec<DcSolution>,
    stats: SolverStats,
}

impl DcSweepResult {
    /// The swept source values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Aggregate numerical-work counters over the whole sweep. The sweep
    /// shares one workspace, so the symbolic analysis is typically done
    /// exactly once for all points.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The operating point at sweep step `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn solution(&self, i: usize) -> &DcSolution {
        &self.solutions[i]
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The voltage of `node` at every sweep step.
    pub fn node_trace(&self, node: NodeId) -> Vec<f64> {
        self.solutions.iter().map(|s| s.voltage(node)).collect()
    }

    /// The sweep value at which `node` crosses `threshold` (linear
    /// interpolation between adjacent steps), if it does.
    pub fn crossing(&self, node: NodeId, threshold: f64) -> Option<f64> {
        let trace = self.node_trace(node);
        for i in 1..trace.len() {
            let (y0, y1) = (trace[i - 1], trace[i]);
            if (y0 - threshold) * (y1 - threshold) <= 0.0 && y0 != y1 {
                let t = (threshold - y0) / (y1 - y0);
                return Some(self.values[i - 1] + t * (self.values[i] - self.values[i - 1]));
            }
        }
        None
    }
}

impl Circuit {
    /// Sweeps voltage source `source` from `start` to `stop` in `steps`
    /// equal increments (inclusive of both endpoints) and solves the DC
    /// operating point at each value.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidSpec`] for a degenerate sweep and
    /// propagates operating-point failures.
    ///
    /// # Panics
    ///
    /// Panics if `source` does not belong to this circuit.
    pub fn dc_sweep(
        &mut self,
        source: VSourceId,
        start: f64,
        stop: f64,
        steps: usize,
    ) -> Result<DcSweepResult, SpiceError> {
        let _span = rotsv_obs::span!("dcsweep", "steps" = steps);
        if steps < 1 {
            return Err(SpiceError::InvalidSpec(
                "dc sweep needs at least one step".to_owned(),
            ));
        }
        if !(start.is_finite() && stop.is_finite()) {
            return Err(SpiceError::InvalidSpec(
                "dc sweep bounds must be finite".to_owned(),
            ));
        }
        assert!(
            source.0 < self.n_vsources,
            "voltage source does not belong to this circuit"
        );

        // Remember the original waveform so the circuit is unchanged after
        // the sweep.
        let original = self.set_vsource_value(source, start);

        let wall_start = Instant::now();
        let mut ws = MnaWorkspace::new(self);
        // Full Newton for DC robustness; see the note in `dcop`.
        let opts = NewtonOpts {
            max_stale: 0,
            ..NewtonOpts::default()
        };
        let mut values = Vec::with_capacity(steps + 1);
        let mut solutions = Vec::with_capacity(steps + 1);
        let mut x = vec![0.0; self.unknown_count()];
        let mut result: Result<(), SpiceError> = Ok(());
        for k in 0..=steps {
            let v = start + (stop - start) * k as f64 / steps as f64;
            self.set_vsource_value(source, v);
            match newton_solve(
                &mut ws,
                self,
                x.clone(),
                0.0,
                1.0,
                self.gmin(),
                CapMode::Open,
                &opts,
            ) {
                Ok(sol) => {
                    x = sol.clone();
                    values.push(v);
                    solutions.push(DcSolution::from_raw(sol, self.node_count()));
                }
                Err(fail) => {
                    result = Err(fail.error.unwrap_or(SpiceError::NoConvergence {
                        analysis: "dcop",
                        time: 0.0,
                        iterations: fail.iterations,
                    }));
                    break;
                }
            }
        }
        // Restore the original source waveform.
        self.restore_vsource(source, original);
        let mut stats = ws.stats;
        stats.wall_seconds = wall_start.elapsed().as_secs_f64();
        result.map(|()| DcSweepResult {
            values,
            solutions,
            stats,
        })
    }

    /// Replaces the waveform of `source` with a DC value, returning the
    /// previous waveform.
    fn set_vsource_value(&mut self, source: VSourceId, value: f64) -> SourceWaveform {
        for e in &mut self.elements {
            if let Element::VSource { branch, wave, .. } = e {
                if *branch == source.0 {
                    return std::mem::replace(wave, SourceWaveform::dc(value));
                }
            }
        }
        unreachable!("vsource id validated before use")
    }

    fn restore_vsource(&mut self, source: VSourceId, original: SourceWaveform) {
        for e in &mut self.elements {
            if let Element::VSource { branch, wave, .. } = e {
                if *branch == source.0 {
                    *wave = original;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reproduces_linear_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let vs = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(0.0));
        ckt.add_resistor(a, b, 1e3);
        ckt.add_resistor(b, Circuit::GROUND, 1e3);
        let sweep = ckt.dc_sweep(vs, 0.0, 2.0, 4).unwrap();
        assert_eq!(sweep.len(), 5);
        let trace = sweep.node_trace(b);
        for (k, v) in trace.iter().enumerate() {
            let expect = 0.5 * (0.5 * k as f64);
            assert!((v - expect).abs() < 1e-6, "step {k}: {v} vs {expect}");
        }
    }

    #[test]
    fn crossing_is_interpolated() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let vs = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(0.0));
        let sweep = ckt.dc_sweep(vs, 0.0, 1.0, 10).unwrap();
        let x = sweep.crossing(a, 0.55).expect("crosses");
        assert!((x - 0.55).abs() < 1e-9);
        assert!(sweep.crossing(a, 2.0).is_none());
    }

    #[test]
    fn circuit_is_restored_after_sweep() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let vs = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(1.5));
        let _ = ckt.dc_sweep(vs, 0.0, 1.0, 2).unwrap();
        let sol = ckt.dcop(&crate::dcop::DcOpSpec::default()).unwrap();
        assert!((sol.voltage(a) - 1.5).abs() < 1e-9, "waveform restored");
    }

    #[test]
    fn degenerate_sweep_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let vs = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(0.0));
        assert!(matches!(
            ckt.dc_sweep(vs, 0.0, 1.0, 0),
            Err(SpiceError::InvalidSpec(_))
        ));
    }

    #[test]
    fn diode_sweep_uses_continuation() {
        use crate::device::test_devices::Diode;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        let vs = ckt.add_vsource(a, Circuit::GROUND, SourceWaveform::dc(0.0));
        ckt.add_resistor(a, d, 100.0);
        ckt.add_device(Box::new(Diode {
            nodes: [d, Circuit::GROUND],
            i_sat: 1e-14,
            v_t: 0.02585,
        }));
        let sweep = ckt.dc_sweep(vs, 0.0, 5.0, 50).unwrap();
        let trace = sweep.node_trace(d);
        // Diode clamps: final voltage stays under a volt even at 5 V drive.
        assert!(trace.last().unwrap() < &1.0);
        // Monotone non-decreasing.
        assert!(trace.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }
}
