//! Calibration probe: prints the raw delay/period numbers the
//! higher-level experiments depend on. Used during development to tune
//! the technology cards; kept as a diagnostic.

use rotsv_mosfet::model::Nominal;
use rotsv_num::units::Ohms;
use rotsv_ro::io_cell::{step_response, IoCellConfig};
use rotsv_ro::{MeasureOpts, RingOscillator, RoConfig};
use rotsv_tsv::TsvFault;

fn main() {
    let vdd = 1.1;
    println!("== I/O cell step response at {vdd} V ==");
    for (label, fault) in [
        ("fault-free", TsvFault::None),
        (
            "open 3k x=0.5",
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(3e3),
            },
        ),
        ("leak 3k", TsvFault::Leakage { r: Ohms(3e3) }),
        ("leak 1.5k", TsvFault::Leakage { r: Ohms(1.5e3) }),
        ("leak 1k", TsvFault::Leakage { r: Ohms(1e3) }),
    ] {
        let r = step_response(&IoCellConfig::new(vdd).with_fault(fault), &mut Nominal).unwrap();
        println!(
            "{label:14} delay={:?} ps  tsv_final={:.3} V",
            r.delay.map(|d| (d * 1e12 * 10.0).round() / 10.0),
            r.tsv.final_value()
        );
    }

    println!("== Ring oscillator N=5, TSV0 enabled, at {vdd} V ==");
    let opts = MeasureOpts::default();
    let t2 = {
        let ro = RingOscillator::build(&RoConfig::new(5, vdd), &mut Nominal);
        ro.measure(&opts).unwrap().period()
    };
    println!("all-bypassed T2 = {:?} ns", t2.map(|t| t * 1e9));
    let t2 = t2.unwrap();
    for (label, fault) in [
        ("fault-free", TsvFault::None),
        (
            "open 0.5k",
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(0.5e3),
            },
        ),
        (
            "open 1k",
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(1e3),
            },
        ),
        (
            "open 3k",
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(3e3),
            },
        ),
        ("leak 10k", TsvFault::Leakage { r: Ohms(10e3) }),
        ("leak 5k", TsvFault::Leakage { r: Ohms(5e3) }),
        ("leak 3k", TsvFault::Leakage { r: Ohms(3e3) }),
        ("leak 2k", TsvFault::Leakage { r: Ohms(2e3) }),
        ("leak 1.5k", TsvFault::Leakage { r: Ohms(1.5e3) }),
        ("leak 1.2k", TsvFault::Leakage { r: Ohms(1.2e3) }),
        ("leak 1k", TsvFault::Leakage { r: Ohms(1e3) }),
        ("leak 0.8k", TsvFault::Leakage { r: Ohms(0.8e3) }),
    ] {
        let config = RoConfig::new(5, vdd).enable_only(&[0]).with_fault(0, fault);
        let ro = RingOscillator::build(&config, &mut Nominal);
        match ro.measure(&opts).unwrap().period() {
            Some(t1) => println!(
                "{label:12} T1={:.4} ns  dT={:+.1} ps",
                t1 * 1e9,
                (t1 - t2) * 1e12
            ),
            None => println!("{label:12} STUCK"),
        }
    }

    println!("== Voltage dependence (fault-free enabled, leak 3k) ==");
    for vdd in [1.2, 1.1, 0.95, 0.8, 0.75, 0.7] {
        let t2 = RingOscillator::build(&RoConfig::new(5, vdd), &mut Nominal)
            .measure(&MeasureOpts {
                max_time: 400e-9,
                ..opts
            })
            .unwrap()
            .period();
        let tff = RingOscillator::build(&RoConfig::new(5, vdd).enable_only(&[0]), &mut Nominal)
            .measure(&MeasureOpts {
                max_time: 400e-9,
                ..opts
            })
            .unwrap()
            .period();
        let tlk = RingOscillator::build(
            &RoConfig::new(5, vdd)
                .enable_only(&[0])
                .with_fault(0, TsvFault::Leakage { r: Ohms(3e3) }),
            &mut Nominal,
        )
        .measure(&MeasureOpts {
            max_time: 400e-9,
            ..opts
        })
        .unwrap()
        .period();
        println!(
            "vdd={vdd:.2}  T2={:?}  dT_ff={:?} ps  dT_leak3k={:?} ps",
            t2.map(|t| (t * 1e12).round() / 1e3),
            t2.and_then(|t2| tff.map(|t| ((t - t2) * 1e12).round())),
            t2.and_then(|t2| tlk.map(|t| ((t - t2) * 1e12).round())),
        );
    }
}
