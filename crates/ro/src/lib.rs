#![warn(missing_docs)]

//! Ring-oscillator DfT construction and measurement (Fig. 3 of the paper).
//!
//! The DfT wraps `N` TSV I/O segments and one inverter into a ring
//! oscillator:
//!
//! ```text
//!          TE mux                         segment i
//!  func ──┐                 ┌──────────────────────────────────────┐
//!         ├─▶ seg1 ─▶ … ─▶ │ in ─▶ TBUF_X4 ─▶ TSV_i ─▶ BUF_X1 ─┐  │
//!  loop ──┘                 │   └───────────── BY[i] mux ◀──────┴─▶│ out
//!                           └──────────────────────────────────────┘
//!   … ─▶ segN ─▶ INV_X1 ─▶ loop (back to the TE mux)
//! ```
//!
//! * `TE` selects test mode (oscillator loop closed) vs. functional mode,
//! * `BY[i]` bypasses segment *i*'s TSV path (BY = 1 ⇒ bypassed),
//! * `OE` enables the tri-state TSV drivers,
//! * the shared inverter provides the signal inversion that makes the
//!   loop oscillate.
//!
//! Measuring the oscillation period once with the TSV under test enabled
//! (T₁) and once with every TSV bypassed (T₂) isolates the delay of the
//! enabled I/O segment: ΔT = T₁ − T₂ (the paper's two-run procedure).
//!
//! [`RingOscillator::measure`] runs the transient simulation and extracts
//! the period — or reports [`OscillationOutcome::Stuck`] when the ring
//! does not oscillate, which the paper observes for leakage faults
//! stronger than roughly 1 kΩ.

pub mod io_cell;
pub mod ring;

pub use ring::{MeasureOpts, OscillationOutcome, RingOscillator, RoConfig};
