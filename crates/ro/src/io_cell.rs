//! Single I/O-cell step-response experiment (Fig. 4 of the paper).
//!
//! A step is applied at the input of a bidirectional I/O cell (tri-state
//! X4 driver onto the TSV, X1 receiver back "to core") and the
//! propagation delay to the receiver output is measured. The paper uses
//! this experiment to show the opposite delay signatures of the two
//! fault classes: a 3 kΩ resistive open at x = 0.5 *shortens* the delay,
//! a 3 kΩ leakage fault *lengthens* it.

use rotsv_mosfet::model::VariationSource;
use rotsv_mosfet::tech45::DriveStrength;
use rotsv_spice::{Circuit, Edge, NodeId, SourceWaveform, SpiceError, TransientSpec, Waveform};
use rotsv_stdcell::CellBuilder;
use rotsv_tsv::{Tsv, TsvFault, TsvModel, TsvTech};

/// Configuration of the single-cell step experiment.
#[derive(Debug, Clone)]
pub struct IoCellConfig {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// TSV technology.
    pub tech: TsvTech,
    /// TSV discretization.
    pub tsv_model: TsvModel,
    /// Injected TSV fault.
    pub fault: TsvFault,
    /// Step direction: `true` applies a rising input step.
    pub rising: bool,
}

impl IoCellConfig {
    /// A fault-free rising-step experiment at `vdd`.
    pub fn new(vdd: f64) -> Self {
        Self {
            vdd,
            tech: TsvTech::default(),
            tsv_model: TsvModel::Lumped,
            fault: TsvFault::None,
            rising: true,
        }
    }

    /// Sets the injected fault.
    pub fn with_fault(mut self, fault: TsvFault) -> Self {
        self.fault = fault;
        self
    }

    /// Selects a falling input step.
    pub fn falling(mut self) -> Self {
        self.rising = false;
        self
    }
}

/// Waveforms and extracted delay of one step-response run.
#[derive(Debug, Clone)]
pub struct IoCellResponse {
    /// Input step waveform.
    pub input: Waveform,
    /// Voltage on the TSV front node.
    pub tsv: Waveform,
    /// Receiver output ("to core") waveform.
    pub output: Waveform,
    /// Input-to-output propagation delay at V_DD/2, seconds; `None` when
    /// the output never switches (e.g. very strong leakage).
    pub delay: Option<f64>,
}

/// Runs the step experiment.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the configuration is invalid (non-positive V_DD or
/// out-of-range fault parameters).
pub fn step_response(
    config: &IoCellConfig,
    vary: &mut dyn VariationSource,
) -> Result<IoCellResponse, SpiceError> {
    assert!(
        config.vdd > 0.0 && config.vdd.is_finite(),
        "vdd must be positive"
    );
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(config.vdd));
    let oe = ckt.node("OE");
    let oe_b = ckt.node("OE_B");
    ckt.add_vsource(oe, Circuit::GROUND, SourceWaveform::dc(config.vdd));
    ckt.add_vsource(oe_b, Circuit::GROUND, SourceWaveform::dc(0.0));

    let input: NodeId = ckt.node("in");
    let t_step = 0.2e-9;
    let (v0, v1) = if config.rising {
        (0.0, config.vdd)
    } else {
        (config.vdd, 0.0)
    };
    ckt.add_vsource(input, Circuit::GROUND, SourceWaveform::step(v0, v1, t_step));

    let tsv_front = ckt.node("tsv");
    let out = ckt.node("to_core");
    Tsv::new(config.tech, config.fault).stamp(&mut ckt, tsv_front, config.tsv_model);

    let mut cells = CellBuilder::new(&mut ckt, vdd, vary);
    cells.tri_state_buffer("drv", input, tsv_front, oe, oe_b, DriveStrength::X4);
    cells.receiver_buffer("rcv", tsv_front, out);

    let spec = TransientSpec::new(3e-9, 1e-12).record(&[input, tsv_front, out]);
    let res = ckt.transient(&spec)?;
    let w_in = res.waveform(input);
    let w_tsv = res.waveform(tsv_front);
    let w_out = res.waveform(out);
    let edge = if config.rising {
        Edge::Rising
    } else {
        Edge::Falling
    };
    let half = config.vdd / 2.0;
    let delay = w_in.delay_to(&w_out, 0.0, half, edge, half, edge);
    Ok(IoCellResponse {
        input: w_in,
        tsv: w_tsv,
        output: w_out,
        delay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_mosfet::model::Nominal;
    use rotsv_num::units::Ohms;

    fn delay_of(fault: TsvFault) -> f64 {
        step_response(&IoCellConfig::new(1.1).with_fault(fault), &mut Nominal)
            .unwrap()
            .delay
            .expect("output switches")
    }

    /// The Fig. 4 signature: an open shortens, a leak lengthens the delay.
    #[test]
    fn fault_signatures_have_opposite_sign() {
        let d_ff = delay_of(TsvFault::None);
        let d_open = delay_of(TsvFault::ResistiveOpen {
            x: 0.5,
            r: Ohms(3000.0),
        });
        let d_leak = delay_of(TsvFault::Leakage { r: Ohms(3000.0) });
        assert!(
            d_open < d_ff - 5e-12,
            "open must shorten delay: {d_open} vs {d_ff}"
        );
        assert!(
            d_leak > d_ff + 5e-12,
            "leak must lengthen delay: {d_leak} vs {d_ff}"
        );
    }

    #[test]
    fn delay_magnitude_is_tens_of_picoseconds() {
        let d_ff = delay_of(TsvFault::None);
        assert!(
            d_ff > 10e-12 && d_ff < 1e-9,
            "fault-free delay {d_ff} out of range"
        );
    }

    #[test]
    fn falling_step_also_measures() {
        let r = step_response(&IoCellConfig::new(1.1).falling(), &mut Nominal).unwrap();
        assert!(r.delay.is_some());
        // Falling input: receiver output ends low.
        assert!(r.output.final_value() < 0.1);
    }

    #[test]
    fn strong_leakage_prevents_output_switching() {
        let r = step_response(
            &IoCellConfig::new(1.1).with_fault(TsvFault::Leakage { r: Ohms(200.0) }),
            &mut Nominal,
        )
        .unwrap();
        assert!(r.delay.is_none(), "200 Ω leak should clamp the TSV");
        assert!(r.tsv.final_value() < 0.4);
    }

    #[test]
    fn tsv_node_settles_to_divider_voltage_under_leak() {
        let r = step_response(
            &IoCellConfig::new(1.1).with_fault(TsvFault::Leakage { r: Ohms(3000.0) }),
            &mut Nominal,
        )
        .unwrap();
        let v = r.tsv.final_value();
        // Divider against the X4 driver's ~1 kΩ pull-up: noticeably below
        // VDD but above the receiver threshold.
        assert!(v > 0.6 && v < 1.05, "tsv settles at {v}");
    }
}
