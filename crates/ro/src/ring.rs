//! Ring-oscillator netlist construction and period measurement.

use std::sync::Arc;

use rotsv_mosfet::model::VariationSource;
use rotsv_mosfet::tech45::DriveStrength;
use rotsv_num::SymbolicCache;
use rotsv_spice::{
    transient_batch, transient_queue, transient_stream, Circuit, IntegrationMethod, NodeId,
    PeriodMeasurement, SolverStats, SourceWaveform, SpiceError, StepControl, TransientResult,
    TransientSpec, Waveform,
};
use rotsv_stdcell::CellBuilder;
use rotsv_tsv::{Tsv, TsvFault, TsvModel, TsvTech};

/// Configuration of one ring-oscillator group.
#[derive(Debug, Clone)]
pub struct RoConfig {
    /// Number of I/O segments `N` in the loop (the paper uses N = 5).
    pub n_segments: usize,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// TSV technology parameters.
    pub tech: TsvTech,
    /// Electrical TSV discretization.
    pub tsv_model: TsvModel,
    /// Fault injected in each segment's TSV (`faults[i]` for segment i).
    pub faults: Vec<TsvFault>,
    /// Which TSVs are in the loop: `enabled[i] = true` ⇒ BY\[i\] = 0.
    pub enabled: Vec<bool>,
}

impl RoConfig {
    /// A fault-free configuration with `n_segments` segments at `vdd`,
    /// all TSVs bypassed.
    pub fn new(n_segments: usize, vdd: f64) -> Self {
        Self {
            n_segments,
            vdd,
            tech: TsvTech::default(),
            tsv_model: TsvModel::Lumped,
            faults: vec![TsvFault::None; n_segments],
            enabled: vec![false; n_segments],
        }
    }

    /// Enables exactly the segments listed in `indices` (bypasses the
    /// rest).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn enable_only(mut self, indices: &[usize]) -> Self {
        self.enabled = vec![false; self.n_segments];
        for &i in indices {
            assert!(i < self.n_segments, "segment index {i} out of range");
            self.enabled[i] = true;
        }
        self
    }

    /// Injects `fault` into segment `index`'s TSV.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_fault(mut self, index: usize, fault: TsvFault) -> Self {
        assert!(
            index < self.n_segments,
            "segment index {index} out of range"
        );
        self.faults[index] = fault;
        self
    }

    fn validate(&self) {
        assert!(self.n_segments >= 1, "a ring needs at least one segment");
        assert!(
            self.vdd > 0.0 && self.vdd.is_finite(),
            "vdd must be positive"
        );
        assert_eq!(self.faults.len(), self.n_segments, "faults length mismatch");
        assert_eq!(
            self.enabled.len(),
            self.n_segments,
            "enabled length mismatch"
        );
    }
}

/// Options for the transient period measurement.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOpts {
    /// Integration step, seconds. Under adaptive stepping this is the
    /// *reference* step: the controller starts here and stretches or
    /// shrinks around it as the local truncation error allows.
    pub dt: f64,
    /// Oscillation cycles to average over.
    pub cycles: usize,
    /// Startup cycles to discard.
    pub skip_cycles: usize,
    /// Hard simulation-time budget, seconds (reached only when the ring
    /// is stuck).
    pub max_time: f64,
    /// Integration method.
    pub method: IntegrationMethod,
    /// Time-step control. Defaults to LTE-adaptive stepping; switch to
    /// [`StepControl::Fixed`] (e.g. via [`MeasureOpts::fixed_step`]) to
    /// cross-check adaptive results against the uniform-grid reference.
    pub step: StepControl,
}

impl Default for MeasureOpts {
    fn default() -> Self {
        Self {
            dt: 2e-12,
            cycles: 6,
            skip_cycles: 2,
            max_time: 60e-9,
            method: IntegrationMethod::Trapezoidal,
            step: StepControl::adaptive(),
        }
    }
}

impl MeasureOpts {
    /// A faster, coarser measurement for tests and benches.
    pub fn fast() -> Self {
        Self {
            dt: 4e-12,
            cycles: 4,
            skip_cycles: 2,
            max_time: 40e-9,
            ..Self::default()
        }
    }

    /// The same measurement on a fixed uniform grid — the cross-check
    /// mode the adaptive controller is validated against.
    pub fn fixed_step(mut self) -> Self {
        self.step = StepControl::Fixed;
        self
    }

    fn validate(&self) {
        assert!(self.dt > 0.0, "dt must be positive");
        assert!(self.cycles >= 2, "need at least two cycles to average");
        assert!(self.max_time > 0.0, "max_time must be positive");
    }
}

/// Result of a period measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum OscillationOutcome {
    /// The ring oscillates; the extracted period statistics.
    Oscillating(PeriodMeasurement),
    /// The ring does not oscillate (stuck) — the behaviour of strong
    /// leakage faults.
    Stuck {
        /// Final voltage of the probe node.
        final_voltage: f64,
        /// Peak-to-peak swing observed on the probe node.
        swing: f64,
    },
}

impl OscillationOutcome {
    /// The mean period, or `None` when stuck.
    pub fn period(&self) -> Option<f64> {
        match self {
            OscillationOutcome::Oscillating(m) => Some(m.mean),
            OscillationOutcome::Stuck { .. } => None,
        }
    }

    /// `true` when the ring oscillates.
    pub fn is_oscillating(&self) -> bool {
        matches!(self, OscillationOutcome::Oscillating(_))
    }
}

/// Period extraction from a finished transient: everything it needs
/// (probe node, V_DD) is shared across a measurement group, so the
/// streaming path can extract outcomes without keeping the consumed
/// [`RingOscillator`] alive.
fn extract_outcome_at(
    res: &TransientResult,
    probe: NodeId,
    vdd: f64,
    opts: &MeasureOpts,
) -> (OscillationOutcome, SolverStats) {
    let stats = res.stats();
    let wave = res.waveform(probe);
    let outcome = match wave.period(vdd / 2.0, opts.skip_cycles) {
        Some(m) => OscillationOutcome::Oscillating(m),
        None => OscillationOutcome::Stuck {
            final_voltage: wave.final_value(),
            swing: wave.max() - wave.min(),
        },
    };
    (outcome, stats)
}

/// A fully built ring-oscillator DfT group.
#[derive(Debug)]
pub struct RingOscillator {
    circuit: Circuit,
    probe: NodeId,
    tsv_fronts: Vec<NodeId>,
    vdd: f64,
}

impl RingOscillator {
    /// Builds the circuit of Fig. 3 for `config`, drawing per-transistor
    /// process variation from `vary`.
    ///
    /// Build order is deterministic, so two builds with identical
    /// variation streams produce electrically identical dies — this is
    /// how the two-run ΔT procedure models measuring *the same die*
    /// twice.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (mismatched vector lengths,
    /// non-positive V_DD, out-of-range fault parameters).
    pub fn build(config: &RoConfig, vary: &mut dyn VariationSource) -> Self {
        config.validate();
        let n = config.n_segments;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(config.vdd));

        // Static control nets. OE = 1 (drivers on) and TE = 1 (loop
        // closed) during test mode; BY[i] per segment.
        let hi = |ckt: &mut Circuit, name: &str, v: f64| {
            let node = ckt.node(name);
            ckt.add_vsource(node, Circuit::GROUND, SourceWaveform::dc(v));
            node
        };
        let oe = hi(&mut ckt, "OE", config.vdd);
        let oe_b = hi(&mut ckt, "OE_B", 0.0);
        let te = hi(&mut ckt, "TE", config.vdd);
        let func_in = hi(&mut ckt, "func_in", 0.0);
        let by: Vec<NodeId> = (0..n)
            .map(|i| {
                let v = if config.enabled[i] { 0.0 } else { config.vdd };
                hi(&mut ckt, &format!("BY{i}"), v)
            })
            .collect();

        // Loop nodes.
        let loop_head = ckt.node("loop_head"); // output of the TE mux
        let loop_tail = ckt.node("loop_tail"); // output of the inverter
        let seg_in: Vec<NodeId> = (0..n)
            .map(|i| {
                if i == 0 {
                    loop_head
                } else {
                    ckt.node(&format!("seg{i}_in"))
                }
            })
            .collect();
        let seg_out: Vec<NodeId> = (0..n)
            .map(|i| {
                if i + 1 < n {
                    seg_in[i + 1]
                } else {
                    ckt.node("ring_out")
                }
            })
            .collect();
        let tsv_fronts: Vec<NodeId> = (0..n).map(|i| ckt.node(&format!("tsv{i}"))).collect();

        // Stamp the TSVs (with faults) first, then the cells.
        for (i, &front) in tsv_fronts.iter().enumerate() {
            let tsv = Tsv::new(config.tech, config.faults[i]);
            tsv.stamp(&mut ckt, front, config.tsv_model);
        }

        let mut cells = CellBuilder::new(&mut ckt, vdd, vary);
        // TE mux: functional input vs. oscillator feedback.
        cells.mux2("te_mux", func_in, loop_tail, te, loop_head);
        for i in 0..n {
            let recv_out = cells.circuit().node(&format!("recv{i}_out"));
            // Bidirectional I/O cell: tri-state driver onto the TSV …
            cells.tri_state_buffer(
                &format!("drv{i}"),
                seg_in[i],
                tsv_fronts[i],
                oe,
                oe_b,
                DriveStrength::X4,
            );
            // … and the receiver back "to core".
            cells.receiver_buffer(&format!("rcv{i}"), tsv_fronts[i], recv_out);
            // Bypass mux: BY[i] = 1 selects the direct path.
            cells.mux2(
                &format!("by{i}_mux"),
                recv_out,
                seg_in[i],
                by[i],
                seg_out[i],
            );
        }
        // The shared inverter closing the loop.
        cells.inverter("ring_inv", seg_out[n - 1], loop_tail, DriveStrength::X1);

        Self {
            circuit: ckt,
            probe: loop_tail,
            tsv_fronts,
            vdd: config.vdd,
        }
    }

    /// The node observed by the measurement logic (the inverter output).
    pub fn probe(&self) -> NodeId {
        self.probe
    }

    /// Front-side TSV nodes, one per segment.
    pub fn tsv_fronts(&self) -> &[NodeId] {
        &self.tsv_fronts
    }

    /// The built netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Shares a symbolic-analysis cache with this ring's transients:
    /// runs over the same matrix sparsity pattern reuse one fill-in
    /// analysis and pivot order instead of re-deriving them per run.
    pub fn set_symbolic_cache(&mut self, cache: Arc<SymbolicCache>) {
        self.circuit.set_symbolic_cache(cache);
    }

    /// Simulates the ring and extracts the oscillation period.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`SpiceError`]); a non-oscillating
    /// ring is *not* an error — it returns
    /// [`OscillationOutcome::Stuck`].
    ///
    /// # Panics
    ///
    /// Panics if `opts` is invalid (non-positive step or budget).
    pub fn measure(&self, opts: &MeasureOpts) -> Result<OscillationOutcome, SpiceError> {
        self.measure_with_stats(opts).map(|(outcome, _)| outcome)
    }

    /// Like [`RingOscillator::measure`], additionally returning the
    /// numerical-work counters of the underlying transient run.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; see [`RingOscillator::measure`].
    ///
    /// # Panics
    ///
    /// Panics if `opts` is invalid (non-positive step or budget).
    pub fn measure_with_stats(
        &self,
        opts: &MeasureOpts,
    ) -> Result<(OscillationOutcome, SolverStats), SpiceError> {
        opts.validate();
        let res = self.circuit.transient(&self.measure_spec(opts))?;
        Ok(self.extract_outcome(&res, opts))
    }

    /// The transient specification of one period measurement.
    fn measure_spec(&self, opts: &MeasureOpts) -> TransientSpec {
        let needed = opts.skip_cycles + opts.cycles + 2;
        TransientSpec::new(opts.max_time, opts.dt)
            .record(&[self.probe])
            .method(opts.method)
            .step_control(opts.step)
            .stop_after_rising(self.probe, self.vdd / 2.0, needed)
    }

    /// Period extraction from a finished transient (shared by the scalar
    /// and batched measurement paths).
    fn extract_outcome(
        &self,
        res: &TransientResult,
        opts: &MeasureOpts,
    ) -> (OscillationOutcome, SolverStats) {
        extract_outcome_at(res, self.probe, self.vdd, opts)
    }

    /// Measures `ros` — same-topology rings differing only in element
    /// values (process variation, fault severity) — in one batched
    /// transient ([`transient_batch`]): one shared symbolic analysis,
    /// one Newton loop evaluating all lanes (each on its own clock),
    /// per-lane retirement as each ring's crossing count completes.
    ///
    /// Returns one `(outcome, stats)` per ring, in input order. Empty
    /// input returns an empty vector.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; [`SpiceError::InvalidCircuit`] when
    /// the rings are not topology-identical.
    ///
    /// # Panics
    ///
    /// Panics if `opts` is invalid or the rings disagree on V_DD or
    /// probe node (different build configurations).
    pub fn measure_batch_with_stats(
        ros: &[&RingOscillator],
        opts: &MeasureOpts,
    ) -> Result<Vec<(OscillationOutcome, SolverStats)>, SpiceError> {
        let Some(first) = ros.first() else {
            return Ok(Vec::new());
        };
        opts.validate();
        for ro in ros {
            assert_eq!(ro.vdd, first.vdd, "batched rings must share V_DD");
            assert_eq!(
                ro.probe, first.probe,
                "batched rings must share the probe node"
            );
        }
        let spec = first.measure_spec(opts);
        let circuits: Vec<&Circuit> = ros.iter().map(|ro| ro.circuit()).collect();
        let results = transient_batch(&circuits, &spec)?;
        Ok(ros
            .iter()
            .zip(&results)
            .map(|(ro, res)| ro.extract_outcome(res, opts))
            .collect())
    }

    /// Like [`RingOscillator::measure_batch_with_stats`], but streams the
    /// whole ring queue through `lanes` SIMD lanes with mid-transient
    /// refill ([`transient_queue`]): when a ring's crossing count
    /// completes, the next queued ring is seated into its lane
    /// immediately, so a large population never decays to a half-empty
    /// batch. Per-ring outcomes are bit-identical to
    /// [`RingOscillator::measure_batch_with_stats`] at any lane count.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; [`SpiceError::InvalidCircuit`] when
    /// the rings are not topology-identical.
    ///
    /// # Panics
    ///
    /// Panics if `opts` is invalid or the rings disagree on V_DD or
    /// probe node (different build configurations).
    pub fn measure_queue_with_stats(
        ros: &[&RingOscillator],
        lanes: usize,
        opts: &MeasureOpts,
    ) -> Result<Vec<(OscillationOutcome, SolverStats)>, SpiceError> {
        let Some(first) = ros.first() else {
            return Ok(Vec::new());
        };
        opts.validate();
        for ro in ros {
            assert_eq!(ro.vdd, first.vdd, "batched rings must share V_DD");
            assert_eq!(
                ro.probe, first.probe,
                "batched rings must share the probe node"
            );
        }
        let spec = first.measure_spec(opts);
        let circuits: Vec<&Circuit> = ros.iter().map(|ro| ro.circuit()).collect();
        let results = transient_queue(&circuits, lanes, &spec)?;
        Ok(ros
            .iter()
            .zip(&results)
            .map(|(ro, res)| ro.extract_outcome(res, opts))
            .collect())
    }

    /// Open-ended streaming form of
    /// [`RingOscillator::measure_queue_with_stats`], built on
    /// [`transient_stream`]: retiring lanes refill from `source`
    /// instead of a fixed population, and each ring's `(outcome,
    /// stats)` is handed to `sink` the moment its measurement
    /// completes. This is the measurement loop a resident screening
    /// server drives — rings admitted while a group is mid-transient
    /// seat into retiring lanes without draining the batch.
    ///
    /// The rings are consumed: the engine owns their circuits for the
    /// lifetime of the streaming session. `source` is polled
    /// non-blockingly at each retirement; returning `None` idles the
    /// lane for the rest of the session. `sink` receives the ring index
    /// (0-based over `initial` then each sourced ring, in pull order).
    /// Per-ring outcomes are bit-identical to every other measurement
    /// path over the same circuits. Returns the number of rings
    /// measured and delivered.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; [`SpiceError::InvalidCircuit`] when
    /// a sourced ring is not topology-identical to the first.
    ///
    /// # Panics
    ///
    /// Panics if `opts` is invalid or any ring disagrees with the first
    /// on V_DD or probe node (different build configurations).
    pub fn measure_stream_with_stats(
        initial: Vec<RingOscillator>,
        lanes: usize,
        opts: &MeasureOpts,
        source: &mut dyn FnMut() -> Option<RingOscillator>,
        sink: &mut dyn FnMut(usize, OscillationOutcome, SolverStats),
    ) -> Result<usize, SpiceError> {
        opts.validate();
        let mut initial = initial;
        if initial.is_empty() {
            match source() {
                Some(ro) => initial.push(ro),
                None => return Ok(0),
            }
        }
        let (probe, vdd) = (initial[0].probe, initial[0].vdd);
        let spec = initial[0].measure_spec(opts);
        let check = |ro: &RingOscillator| {
            assert_eq!(ro.vdd, vdd, "streamed rings must share V_DD");
            assert_eq!(ro.probe, probe, "streamed rings must share the probe node");
        };
        initial.iter().for_each(check);
        let circuits: Vec<Arc<Circuit>> =
            initial.into_iter().map(|ro| Arc::new(ro.circuit)).collect();
        let mut ckt_source = || {
            source().map(|ro| {
                check(&ro);
                Arc::new(ro.circuit)
            })
        };
        let mut ckt_sink = |die: usize, res: TransientResult| {
            let (outcome, stats) = extract_outcome_at(&res, probe, vdd, opts);
            sink(die, outcome, stats);
        };
        transient_stream(circuits, lanes, &spec, &mut ckt_source, &mut ckt_sink)
    }

    /// Simulates the ring and returns the probe waveform (for plotting
    /// and debugging rather than measurement).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn probe_waveform(&self, t_stop: f64, dt: f64) -> Result<Waveform, SpiceError> {
        let spec = TransientSpec::new(t_stop, dt).record(&[self.probe]);
        Ok(self.circuit.transient(&spec)?.waveform(self.probe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_mosfet::model::Nominal;
    use rotsv_num::units::Ohms;

    fn measure(config: &RoConfig) -> OscillationOutcome {
        let ro = RingOscillator::build(config, &mut Nominal);
        ro.measure(&MeasureOpts::fast()).unwrap()
    }

    #[test]
    fn fault_free_ring_oscillates() {
        let out = measure(&RoConfig::new(2, 1.1).enable_only(&[0]));
        let m = match out {
            OscillationOutcome::Oscillating(m) => m,
            OscillationOutcome::Stuck {
                final_voltage,
                swing,
            } => {
                panic!("stuck at {final_voltage} (swing {swing})")
            }
        };
        // A couple of segments with a TSV load: period in the ns range.
        assert!(
            m.mean > 100e-12 && m.mean < 20e-9,
            "period {} out of range",
            m.mean
        );
        assert!(m.jitter < 0.05 * m.mean, "jitter {}", m.jitter);
    }

    #[test]
    fn enabling_tsv_slows_the_ring() {
        let t_bypassed = measure(&RoConfig::new(2, 1.1))
            .period()
            .expect("bypassed ring oscillates");
        let t_enabled = measure(&RoConfig::new(2, 1.1).enable_only(&[0]))
            .period()
            .expect("enabled ring oscillates");
        assert!(
            t_enabled > t_bypassed + 20e-12,
            "TSV load must add delay: enabled {t_enabled}, bypassed {t_bypassed}"
        );
    }

    #[test]
    fn resistive_open_speeds_up_the_enabled_ring() {
        let base = RoConfig::new(2, 1.1).enable_only(&[0]);
        let t_ff = measure(&base).period().unwrap();
        let t_open = measure(&base.clone().with_fault(
            0,
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(3000.0),
            },
        ))
        .period()
        .unwrap();
        assert!(
            t_open < t_ff,
            "open detaches load: open {t_open} vs fault-free {t_ff}"
        );
    }

    #[test]
    fn leakage_slows_the_enabled_ring() {
        let base = RoConfig::new(2, 1.1).enable_only(&[0]);
        let t_ff = measure(&base).period().unwrap();
        let t_leak = measure(
            &base
                .clone()
                .with_fault(0, TsvFault::Leakage { r: Ohms(3000.0) }),
        )
        .period()
        .unwrap();
        assert!(
            t_leak > t_ff,
            "leakage slows charging: leak {t_leak} vs fault-free {t_ff}"
        );
    }

    #[test]
    fn strong_leakage_sticks_the_ring() {
        let out = measure(
            &RoConfig::new(2, 1.1)
                .enable_only(&[0])
                .with_fault(0, TsvFault::Leakage { r: Ohms(300.0) }),
        );
        match out {
            OscillationOutcome::Stuck {
                final_voltage,
                swing,
            } => {
                // The loop latches at a rail (the paper's stuck-at-0 TSV
                // behaviour; the probe is an inverter output so it may
                // latch at either rail). No sustained oscillation.
                let near_rail = !(0.6..=0.9).contains(&final_voltage);
                assert!(near_rail, "final {final_voltage}");
                assert!(swing <= 1.2, "swing {swing}");
            }
            OscillationOutcome::Oscillating(m) => {
                panic!("expected stuck ring, oscillates at {}", m.mean)
            }
        }
    }

    #[test]
    fn fault_in_bypassed_segment_is_invisible() {
        let clean = measure(&RoConfig::new(2, 1.1)).period().unwrap();
        let with_hidden_fault =
            measure(&RoConfig::new(2, 1.1).with_fault(0, TsvFault::Leakage { r: Ohms(2000.0) }))
                .period()
                .unwrap();
        let rel = (with_hidden_fault - clean).abs() / clean;
        assert!(rel < 0.01, "bypassed fault changed period by {rel}");
    }

    /// One batch over rings that differ only in fault severity must
    /// agree with per-ring scalar measurements to well under the
    /// engine's 0.5 % acceptance budget, while performing a single
    /// symbolic analysis for the whole batch.
    #[test]
    fn batched_measure_matches_scalar() {
        let opts = MeasureOpts::fast();
        let configs: Vec<RoConfig> = [2000.0, 4000.0, 8000.0]
            .iter()
            .map(|&r| {
                RoConfig::new(1, 1.1)
                    .enable_only(&[0])
                    .with_fault(0, TsvFault::Leakage { r: Ohms(r) })
            })
            .collect();
        let ros: Vec<RingOscillator> = configs
            .iter()
            .map(|c| RingOscillator::build(c, &mut Nominal))
            .collect();
        let refs: Vec<&RingOscillator> = ros.iter().collect();
        let batched = RingOscillator::measure_batch_with_stats(&refs, &opts).unwrap();
        assert_eq!(batched.len(), ros.len());
        let analyses: u64 = batched.iter().map(|(_, s)| s.symbolic_analyses).sum();
        assert_eq!(analyses, 1, "one symbolic analysis for the whole batch");
        for (ro, (outcome, _)) in ros.iter().zip(&batched) {
            let scalar = ro.measure(&opts).unwrap();
            let t_b = outcome.period().expect("batched lane oscillates");
            let t_s = scalar.period().expect("scalar run oscillates");
            let rel = (t_b - t_s).abs() / t_s;
            assert!(rel < 5e-3, "batched {t_b} vs scalar {t_s} (rel {rel})");
        }
    }

    #[test]
    fn config_validation_catches_mismatch() {
        let mut config = RoConfig::new(2, 1.1);
        config.faults.pop();
        let r = std::panic::catch_unwind(|| RingOscillator::build(&config, &mut Nominal));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn enable_only_checks_bounds() {
        let _ = RoConfig::new(2, 1.1).enable_only(&[5]);
    }
}
