#![warn(missing_docs)]

//! A smooth compact MOSFET model for the `rotsv` circuit simulator.
//!
//! The original paper simulates with 45 nm PTM low-power BSIM4 cards in
//! HSPICE. Re-implementing BSIM4 is neither feasible nor necessary: the
//! paper's conclusions rest on *qualitative* transistor behaviour — drive
//! strength falling steeply as V_DD approaches V_th, subthreshold
//! conduction, and threshold-voltage/channel-length sensitivity to process
//! variation. This crate provides a single-equation, continuously
//! differentiable model capturing exactly that:
//!
//! * square-law strong inversion with mobility degradation (θ) and
//!   channel-length modulation (λ),
//! * exponential subthreshold conduction blended in smoothly through a
//!   softplus effective overdrive (EKV-style interpolation),
//! * a simple body effect (γ, φ),
//! * drain/source symmetry (the device is swapped for V_DS < 0),
//! * per-instance ΔV_th / ΔL_eff perturbations for Monte-Carlo process
//!   variation ([`model::MosDelta`]).
//!
//! [`tech45`] supplies NMOS/PMOS parameter cards calibrated so that the
//! Nangate-like X4 buffer of the paper's TSV driver presents an effective
//! output resistance near 1 kΩ at V_DD = 1.1 V — the value that puts the
//! paper's leakage oscillation-stop threshold at R_L ≈ 1 kΩ.
//!
//! # Examples
//!
//! ```
//! use rotsv_mosfet::tech45::{self, DriveStrength};
//! use rotsv_mosfet::model::Polarity;
//!
//! let nmos = tech45::nmos(DriveStrength::X1);
//! // Saturation current at nominal supply.
//! let id = nmos.ids(1.1, 1.1, 0.0, 0.0);
//! assert!(id > 5e-5 && id < 1e-3, "Idsat = {id}");
//! assert_eq!(nmos.polarity, Polarity::Nmos);
//! ```

pub mod batch;
pub mod device;
pub mod model;
pub mod tech45;

pub use batch::MosfetBank;
pub use device::Mosfet;
pub use model::{MosDelta, MosParams, Nominal, Polarity, VariationSource};
