//! 45 nm low-power parameter cards.
//!
//! Values are inspired by the 45 nm PTM low-power node and the Nangate
//! 45 nm Open Cell Library sizing the paper uses (X4 buffers as TSV
//! drivers, X1 gates elsewhere). They are calibrated to reproduce the
//! behaviours the paper's results depend on, not to match PTM curve for
//! curve:
//!
//! * V_th magnitudes near 0.46 V (N) / 0.49 V (P) so the circuit still
//!   operates at V_DD = 0.7 V but slows dramatically,
//! * an X4 buffer effective output resistance of roughly 1 kΩ at 1.1 V
//!   (this puts the leakage-induced oscillation-stop threshold at
//!   R_L ≈ 1 kΩ, matching Fig. 8 of the paper),
//! * P/N strength ratio near 1 for roughly symmetric edges.

use crate::model::{MosDelta, MosParams, Polarity};

/// Nominal supply voltage of the node, volts.
pub const VDD_NOMINAL: f64 = 1.1;

/// Drawn channel length, meters.
pub const L_DRAWN: f64 = 50e-9;

/// Unit NMOS width (Nangate INV_X1 pull-down), meters.
pub const W_NMOS_X1: f64 = 0.415e-6;

/// Unit PMOS width (Nangate INV_X1 pull-up), meters.
pub const W_PMOS_X1: f64 = 0.630e-6;

/// Cell drive strength: multiplies the unit transistor width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriveStrength {
    /// Unit drive.
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive (the paper's TSV driver strength).
    X4,
}

impl DriveStrength {
    /// Width multiplier.
    pub fn factor(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 2.0,
            DriveStrength::X4 => 4.0,
        }
    }
}

fn base(polarity: Polarity, vth0: f64, kp: f64, w: f64) -> MosParams {
    MosParams {
        polarity,
        vth0,
        kp,
        w,
        l: L_DRAWN,
        n_sub: 1.4,
        theta: 1.6,
        lambda: 0.15,
        gamma: 0.20,
        phi: 0.85,
        // tox ≈ 1.4 nm -> Cox ≈ 24.7 fF/µm².
        cox: 0.0247,
        // Overlap ≈ 0.35 fF/µm of width.
        cov: 0.35e-9,
        // Junction ≈ 1 fF/µm² over a 100 nm diffusion extension.
        cj: 1.0e-3,
        diff_ext: 100e-9,
        delta: MosDelta::NOMINAL,
    }
}

/// NMOS card at the given drive strength.
pub fn nmos(drive: DriveStrength) -> MosParams {
    base(Polarity::Nmos, 0.466, 2.2e-4, W_NMOS_X1 * drive.factor())
}

/// PMOS card at the given drive strength.
pub fn pmos(drive: DriveStrength) -> MosParams {
    base(Polarity::Pmos, 0.490, 1.35e-4, W_PMOS_X1 * drive.factor())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_strength_scales_width() {
        assert_eq!(nmos(DriveStrength::X4).w, 4.0 * nmos(DriveStrength::X1).w);
        assert_eq!(pmos(DriveStrength::X2).w, 2.0 * pmos(DriveStrength::X1).w);
    }

    #[test]
    fn pn_strength_roughly_balanced() {
        // Equal-magnitude on-currents within 2x keeps inverter thresholds
        // near VDD/2.
        let idn = nmos(DriveStrength::X1).ids(1.1, 1.1, 0.0, 0.0);
        let idp = pmos(DriveStrength::X1).ids(0.0, 0.0, 1.1, 1.1).abs();
        let ratio = idn / idp;
        assert!((0.5..2.0).contains(&ratio), "N/P ratio {ratio}");
    }

    #[test]
    fn x4_pullup_resistance_near_one_kiloohm() {
        // Effective pull-up resistance of the X4 PMOS at mid swing: this
        // calibration pins the paper's leakage stop threshold near 1 kΩ.
        let p = pmos(DriveStrength::X4);
        let vdd = VDD_NOMINAL;
        let i = p.ids(vdd / 2.0, 0.0, vdd, vdd).abs();
        let r_eff = (vdd / 2.0) / i;
        assert!(
            (500.0..2500.0).contains(&r_eff),
            "X4 pull-up R_eff = {r_eff} Ω"
        );
    }

    #[test]
    fn still_conducts_at_low_voltage() {
        // The multi-voltage test sweeps down to 0.7 V; gates must still
        // switch there.
        let n = nmos(DriveStrength::X1);
        let i = n.ids(0.7, 0.7, 0.0, 0.0);
        assert!(i > 1e-6, "current at 0.7 V: {i}");
    }
}
