//! Integration of the compact model with the circuit simulator.

use rotsv_spice::{BatchedDeviceEval, DeviceStamp, NodeId, NonlinearDevice};

use crate::batch::MosfetBank;
use crate::model::MosParams;

/// A MOSFET instance wired into a circuit.
///
/// Terminals are ordered **drain, gate, source, bulk**. The Jacobian is
/// analytic ([`MosParams::ids_with_grad`]): one model evaluation per
/// Newton iteration instead of the five a forward-difference Jacobian
/// costs, on the hottest path of every transient.
///
/// Gate and bulk are treated as perfect insulators at DC; their
/// capacitances are added as linear circuit elements by the standard-cell
/// layer (see `rotsv-stdcell`).
#[derive(Debug, Clone)]
pub struct Mosfet {
    name: String,
    params: MosParams,
    nodes: [NodeId; 4],
}

impl Mosfet {
    /// Creates a MOSFET named `name` with the given parameters and
    /// drain/gate/source/bulk nodes.
    pub fn new(
        name: impl Into<String>,
        params: MosParams,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        bulk: NodeId,
    ) -> Self {
        Self {
            name: name.into(),
            params,
            nodes: [drain, gate, source, bulk],
        }
    }

    /// Model parameters of this instance.
    pub fn params(&self) -> &MosParams {
        &self.params
    }
}

impl NonlinearDevice for Mosfet {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn eval(&self, v: &[f64], stamp: &mut DeviceStamp) {
        debug_assert_eq!(v.len(), 4);
        let (id0, grad) = self.params.ids_with_grad(v[0], v[1], v[2], v[3]);
        // Channel current flows drain -> source; no DC gate/bulk current.
        // Rows for gate (1) and bulk (3) stay zero; the source row is the
        // negated drain row by charge conservation.
        stamp.current[0] = id0;
        stamp.current[2] = -id0;
        for (j, g) in grad.iter().enumerate() {
            stamp.jacobian[(0, j)] = *g;
            stamp.jacobian[(2, j)] = -g;
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn batch_with(&self, lanes: &[&dyn NonlinearDevice]) -> Option<Box<dyn BatchedDeviceEval>> {
        let mosfets: Option<Vec<&Mosfet>> = lanes
            .iter()
            .map(|d| d.as_any().and_then(|a| a.downcast_ref::<Mosfet>()))
            .collect();
        MosfetBank::try_new(&mosfets?).map(|bank| Box::new(bank) as Box<dyn BatchedDeviceEval>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech45::{self, DriveStrength};
    use rotsv_spice::{Circuit, DcOpSpec, SourceWaveform};

    #[test]
    fn stamp_obeys_kcl() {
        let m = Mosfet::new(
            "m1",
            tech45::nmos(DriveStrength::X1),
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
        );
        let mut s = DeviceStamp::new(4);
        m.eval(&[1.1, 0.8, 0.0, 0.0], &mut s);
        // Currents sum to zero.
        let total: f64 = s.current.iter().sum();
        assert!(total.abs() < 1e-18);
        // Each Jacobian column sums to zero and gate/bulk rows are zero.
        for j in 0..4 {
            let col: f64 = (0..4).map(|i| s.jacobian[(i, j)]).sum();
            assert!(col.abs() < 1e-12, "column {j} sums to {col}");
        }
        for j in 0..4 {
            assert_eq!(s.jacobian[(1, j)], 0.0);
            assert_eq!(s.jacobian[(3, j)], 0.0);
        }
    }

    #[test]
    fn jacobian_matches_shift_invariance() {
        // dId/dVd + dId/dVg + dId/dVs + dId/dVb = 0 because the model only
        // sees voltage differences.
        let m = Mosfet::new(
            "m1",
            tech45::pmos(DriveStrength::X4),
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
        );
        let mut s = DeviceStamp::new(4);
        m.eval(&[0.4, 0.2, 1.1, 1.1], &mut s);
        let row: f64 = (0..4).map(|j| s.jacobian[(0, j)]).sum();
        assert!(row.abs() < 1e-7, "row sum {row}");
    }

    /// A resistive-load NMOS inverter: checks that a complete DC solve
    /// lands at the right output voltage.
    #[test]
    fn resistive_inverter_dc_transfer() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(1.1));
        ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.1));
        ckt.add_resistor(vdd, vout, 10e3);
        ckt.add_device(Box::new(Mosfet::new(
            "mn",
            tech45::nmos(DriveStrength::X1),
            vout,
            vin,
            Circuit::GROUND,
            Circuit::GROUND,
        )));
        let sol = ckt.dcop(&DcOpSpec::default()).unwrap();
        // Strong drive against 10k load: output pulled well below VDD/2.
        let v = sol.voltage(vout);
        assert!(v < 0.3, "output high? v = {v}");
    }

    /// CMOS inverter DC transfer: output swings rail to rail and crosses
    /// near VDD/2.
    #[test]
    fn cmos_inverter_transfer_curve() {
        let vdd_v = 1.1;
        let eval = |vin_v: f64| -> f64 {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let vin = ckt.node("in");
            let vout = ckt.node("out");
            ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(vdd_v));
            ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(vin_v));
            ckt.add_device(Box::new(Mosfet::new(
                "mp",
                tech45::pmos(DriveStrength::X1),
                vout,
                vin,
                vdd,
                vdd,
            )));
            ckt.add_device(Box::new(Mosfet::new(
                "mn",
                tech45::nmos(DriveStrength::X1),
                vout,
                vin,
                Circuit::GROUND,
                Circuit::GROUND,
            )));
            ckt.dcop(&DcOpSpec::default()).unwrap().voltage(vout)
        };
        let v_low_in = eval(0.0);
        let v_high_in = eval(1.1);
        assert!(v_low_in > 1.05, "output should be ~VDD, got {v_low_in}");
        assert!(v_high_in < 0.05, "output should be ~0, got {v_high_in}");
        // Switching threshold between 0.4 and 0.7 V.
        let v_mid = eval(0.55);
        assert!(
            (0.05..1.05).contains(&v_mid),
            "mid transfer point v = {v_mid}"
        );
        // Monotone decreasing transfer curve.
        let mut prev = f64::INFINITY;
        for k in 0..=11 {
            let v = eval(0.1 * k as f64);
            assert!(v <= prev + 1e-6, "transfer curve not monotone at {k}");
            prev = v;
        }
    }
}
