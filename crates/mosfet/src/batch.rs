//! Structure-of-arrays MOSFET evaluation for the batched transient engine.
//!
//! A Monte-Carlo batch instantiates the *same* transistor slot on K dies;
//! only the per-instance variation delta (ΔV_th, ΔL_eff) differs. The
//! [`MosfetBank`] therefore keeps the two varying quantities as per-lane
//! arrays — the effective threshold `vth0 + ΔV_th` and the geometry
//! factor `kp·W/L_eff` — and every other parameter once, then evaluates
//! all lanes in one straight-line pass. The lane loop is branch-free
//! (drain/source mirroring and the saturation selects compile to blends,
//! the elementary functions come from `rotsv_num::lanes`), which is what
//! lets the compiler autovectorize the model evaluation that dominates
//! every transient's wall time.
//!
//! Accuracy: identical formulation to [`MosParams::ids_with_grad`], with
//! `lanes::softplus_sig` in place of `libm` — a few ulp of relative
//! difference, orders of magnitude inside the batched engine's 0.5 %
//! agreement budget against the scalar engine.

use rotsv_num::lanes;
use rotsv_spice::{BatchedDeviceEval, NonlinearDevice};

use crate::device::Mosfet;
use crate::model::{MosParams, Polarity, PHI_T};

/// One transistor slot across K lanes, structure-of-arrays.
#[derive(Debug)]
pub struct MosfetBank {
    k: usize,
    /// Per-lane `vth0 + ΔV_th` (before the body-effect term), volts.
    vth_base: Vec<f64>,
    /// Per-lane `kp·W/L_eff`, A/V².
    wl: Vec<f64>,
    /// `+1` for NMOS, `−1` for PMOS (terminal-voltage mirror).
    sign: f64,
    /// Softplus scale `2·n·φt` (shared by body clamp and overdrive).
    s: f64,
    gamma: f64,
    phi: f64,
    sqrt_phi: f64,
    theta: f64,
    lambda: f64,
    /// Uniformity fingerprint of the founding lanes; a refill re-seat
    /// must match it (plus `phi`) to reuse the shared-parameter kernel.
    key: (Polarity, [f64; 8]),
}

/// The parameters that must be uniform across lanes for the SoA kernel
/// (everything the I–V evaluation reads except the variation delta).
fn uniform_key(p: &MosParams) -> (Polarity, [f64; 8]) {
    (
        p.polarity,
        [p.vth0, p.kp, p.w, p.l, p.n_sub, p.theta, p.lambda, p.gamma],
    )
}

impl MosfetBank {
    /// Builds a bank over one device slot's K lane instances.
    ///
    /// Returns `None` when the lanes are not parameter-uniform up to
    /// their variation deltas (the batched workspace then falls back to
    /// per-lane scalar evaluation for this slot).
    pub fn try_new(lanes: &[&Mosfet]) -> Option<Self> {
        let first = lanes.first()?.params();
        let key = uniform_key(first);
        if !lanes.iter().all(|m| {
            let p = m.params();
            uniform_key(p) == key && p.phi == first.phi
        }) {
            return None;
        }
        Some(Self {
            k: lanes.len(),
            vth_base: lanes
                .iter()
                .map(|m| m.params().vth0 + m.params().delta.dvth)
                .collect(),
            wl: lanes
                .iter()
                .map(|m| {
                    let p = m.params();
                    p.kp * p.w / p.l_eff()
                })
                .collect(),
            sign: match first.polarity {
                Polarity::Nmos => 1.0,
                Polarity::Pmos => -1.0,
            },
            s: 2.0 * first.n_sub * PHI_T,
            gamma: first.gamma,
            phi: first.phi,
            sqrt_phi: first.phi.sqrt(),
            theta: first.theta,
            lambda: first.lambda,
            key,
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.k
    }
}

impl MosfetBank {
    /// Monomorphized evaluation: all `K == self.k` lanes advance through
    /// the model together as `[f64; K]` arrays, so every model step
    /// compiles to vector instructions and the serial latency of the
    /// elementary-function polynomials is hidden across lanes.
    fn eval_k<const K: usize>(&self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]) {
        debug_assert_eq!(self.k, K);
        let (sign, s) = (self.sign, self.s);
        let (gamma, phi, sqrt_phi) = (self.gamma, self.phi, self.sqrt_phi);
        let (theta, lambda) = (self.theta, self.lambda);
        // Lane-interleaved layout means one terminal's K lanes are
        // contiguous: plain slice loads, no gathers.
        let mut vd = [0.0; K];
        let mut vg = [0.0; K];
        let mut vs = [0.0; K];
        let mut vb = [0.0; K];
        for l in 0..K {
            vd[l] = sign * v[l];
            vg[l] = sign * v[K + l];
            vs[l] = sign * v[2 * K + l];
            vb[l] = sign * v[3 * K + l];
        }
        let mut fwd = [false; K];
        let mut t0 = [0.0; K];
        let mut vds = [0.0; K];
        let mut vgs = [0.0; K];
        let mut vsb = [0.0; K];
        for l in 0..K {
            fwd[l] = vd[l] >= vs[l];
            let lo = if fwd[l] { vs[l] } else { vd[l] };
            let hi = if fwd[l] { vd[l] } else { vs[l] };
            vds[l] = hi - lo;
            vgs[l] = vg[l] - lo;
            vsb[l] = lo - vb[l];
            t0[l] = (vsb[l] + phi) / s;
        }
        let (sp0, sig0) = lanes::softplus_sig_k(t0);
        let mut vth = [0.0; K];
        let mut dvth_dvsb = [0.0; K];
        let mut t1 = [0.0; K];
        for l in 0..K {
            let vsb_eff = s * sp0[l];
            let sqrt_vsb_eff = vsb_eff.sqrt();
            vth[l] = self.vth_base[l] + gamma * (sqrt_vsb_eff - sqrt_phi);
            dvth_dvsb[l] = gamma * sig0[l] / (2.0 * sqrt_vsb_eff);
            t1[l] = (vgs[l] - vth[l]) / s;
        }
        let (sp1, sig1) = lanes::softplus_sig_k(t1);
        for l in 0..K {
            let vov = s * sp1[l];
            let theta_den = 1.0 + theta * vov;
            let beta = self.wl[l] / theta_den;
            let dbeta_dvov = -beta * theta / theta_den;
            let vdsat = vov.max(1e-12);
            let u = vds[l] / vdsat;
            let u2 = u * u;
            let u4 = u2 * u2;
            let den = (1.0 + u4).sqrt().sqrt();
            let vds_eff = vds[l] / den;
            let den4 = den * den * den * den;
            let dveff_dvds = 1.0 / (den4 * den);
            let dveff_dvdsat = if vov > 1e-12 {
                u4 * u * dveff_dvds
            } else {
                0.0
            };
            let clm = 1.0 + lambda * vds[l];
            let q = (vov - vds_eff / 2.0) * vds_eff;
            let i_core = beta * q * clm;
            let dq_dveff = vov - vds_eff;
            let d_vds = beta * clm * dq_dveff * dveff_dvds + beta * q * lambda;
            let di_dvov = (dbeta_dvov * q + beta * (vds_eff + dq_dveff * dveff_dvdsat)) * clm;
            let d_vgs = di_dvov * sig1[l];
            let d_vsb = -di_dvov * sig1[l] * dvth_dvsb[l];
            let (i_n, gd, gg, gs, gb) = if fwd[l] {
                (i_core, d_vds, d_vgs, -d_vds - d_vgs + d_vsb, -d_vsb)
            } else {
                (-i_core, d_vds + d_vgs - d_vsb, -d_vgs, -d_vds, d_vsb)
            };
            let id = sign * i_n;
            current[l] = id;
            current[K + l] = 0.0;
            current[2 * K + l] = -id;
            current[3 * K + l] = 0.0;
            let grad = [gd, gg, gs, gb];
            for (j, g) in grad.iter().enumerate() {
                jacobian[j * K + l] = *g;
                jacobian[(4 + j) * K + l] = 0.0;
                jacobian[(8 + j) * K + l] = -g;
                jacobian[(12 + j) * K + l] = 0.0;
            }
        }
    }

    /// Dynamic-lane-count fallback for batch sizes without a
    /// monomorphized kernel (remainder batches).
    fn eval_dyn(&self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]) {
        let k = self.k;
        let (sign, s) = (self.sign, self.s);
        let (gamma, phi, sqrt_phi) = (self.gamma, self.phi, self.sqrt_phi);
        let (theta, lambda) = (self.theta, self.lambda);
        for lane in 0..k {
            // Polarity mirror: PMOS evaluates the NMOS equations at
            // negated terminal voltages and negates the current.
            let vd = sign * v[lane];
            let vg = sign * v[k + lane];
            let vs = sign * v[2 * k + lane];
            let vb = sign * v[3 * k + lane];
            // Drain/source symmetry: operate on the lower terminal as
            // source (select, not branch — both sides cost the same).
            let fwd = vd >= vs;
            let lo = if fwd { vs } else { vd };
            let hi = if fwd { vd } else { vs };
            let vds = hi - lo;
            let vgs = vg - lo;
            let vsb = lo - vb;
            // Body effect with the smooth clamp (see MosParams::ids_core_grad).
            let (sp0, sig0) = lanes::softplus_sig((vsb + phi) / s);
            let vsb_eff = s * sp0;
            let sqrt_vsb_eff = vsb_eff.sqrt();
            let vth = self.vth_base[lane] + gamma * (sqrt_vsb_eff - sqrt_phi);
            let dvth_dvsb = gamma * sig0 / (2.0 * sqrt_vsb_eff);
            // Smooth effective overdrive.
            let (sp1, sig1) = lanes::softplus_sig((vgs - vth) / s);
            let vov = s * sp1;
            let theta_den = 1.0 + theta * vov;
            let beta = self.wl[lane] / theta_den;
            let dbeta_dvov = -beta * theta / theta_den;
            let vdsat = vov.max(1e-12);
            let u = vds / vdsat;
            let u2 = u * u;
            let u4 = u2 * u2;
            let den = (1.0 + u4).sqrt().sqrt();
            let vds_eff = vds / den;
            let den4 = den * den * den * den;
            let dveff_dvds = 1.0 / (den4 * den);
            let dveff_dvdsat = if vov > 1e-12 {
                u4 * u * dveff_dvds
            } else {
                0.0
            };
            let clm = 1.0 + lambda * vds;
            let q = (vov - vds_eff / 2.0) * vds_eff;
            let i_core = beta * q * clm;
            let dq_dveff = vov - vds_eff;
            let d_vds = beta * clm * dq_dveff * dveff_dvds + beta * q * lambda;
            let di_dvov = (dbeta_dvov * q + beta * (vds_eff + dq_dveff * dveff_dvdsat)) * clm;
            let d_vgs = di_dvov * sig1;
            let d_vsb = -di_dvov * sig1 * dvth_dvsb;
            // Un-mirror drain/source, then polarity (gradient is
            // polarity-invariant: f(v) = −g(−v) ⇒ f′(v) = g′(−v)).
            let (i_n, gd, gg, gs, gb) = if fwd {
                (i_core, d_vds, d_vgs, -d_vds - d_vgs + d_vsb, -d_vsb)
            } else {
                (-i_core, d_vds + d_vgs - d_vsb, -d_vgs, -d_vds, d_vsb)
            };
            let id = sign * i_n;
            // Channel current drain → source; gate and bulk rows zero.
            current[lane] = id;
            current[k + lane] = 0.0;
            current[2 * k + lane] = -id;
            current[3 * k + lane] = 0.0;
            let grad = [gd, gg, gs, gb];
            for (j, g) in grad.iter().enumerate() {
                jacobian[j * k + lane] = *g; // row 0: drain
                jacobian[(4 + j) * k + lane] = 0.0; // row 1: gate
                jacobian[(8 + j) * k + lane] = -g; // row 2: source
                jacobian[(12 + j) * k + lane] = 0.0; // row 3: bulk
            }
        }
    }
}

impl BatchedDeviceEval for MosfetBank {
    fn eval_lanes(&mut self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]) {
        let k = self.k;
        debug_assert_eq!(v.len(), 4 * k);
        debug_assert_eq!(current.len(), 4 * k);
        debug_assert_eq!(jacobian.len(), 16 * k);
        // Monomorphized kernels for the common batch widths; lane results
        // are bit-identical across the dispatch arms (the array-form
        // elementary functions match the scalar ones bit for bit).
        match k {
            1 => self.eval_k::<1>(v, current, jacobian),
            2 => self.eval_k::<2>(v, current, jacobian),
            4 => self.eval_k::<4>(v, current, jacobian),
            8 => self.eval_k::<8>(v, current, jacobian),
            16 => self.eval_k::<16>(v, current, jacobian),
            _ => self.eval_dyn(v, current, jacobian),
        }
    }

    /// O(1) refill re-seat: only the two per-lane arrays depend on the
    /// die, so seating a new die's transistor into `lane` is two stores —
    /// provided its shared parameters match the bank's fingerprint.
    fn reseat_lane(&mut self, lane: usize, device: &dyn NonlinearDevice) -> bool {
        debug_assert!(lane < self.k);
        let Some(m) = device.as_any().and_then(|a| a.downcast_ref::<Mosfet>()) else {
            return false;
        };
        let p = m.params();
        if uniform_key(p) != self.key || p.phi != self.phi {
            return false;
        }
        self.vth_base[lane] = p.vth0 + p.delta.dvth;
        self.wl[lane] = p.kp * p.w / p.l_eff();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MosDelta;
    use crate::tech45::{self, DriveStrength};
    use rotsv_spice::{Circuit, DeviceStamp, NodeId, NonlinearDevice};

    fn four_nodes() -> [NodeId; 4] {
        let mut ckt = Circuit::new();
        [ckt.node("d"), ckt.node("g"), ckt.node("s"), ckt.node("b")]
    }

    fn lane_devices_n(pmos: bool, n: usize) -> Vec<Mosfet> {
        let base = if pmos {
            tech45::pmos(DriveStrength::X2)
        } else {
            tech45::nmos(DriveStrength::X2)
        };
        let deltas = [
            MosDelta::NOMINAL,
            MosDelta {
                dvth: 0.02,
                dleff_rel: -0.05,
            },
            MosDelta {
                dvth: -0.015,
                dleff_rel: 0.08,
            },
        ];
        (0..n)
            .map(|i| {
                let delta = deltas[i % deltas.len()];
                let [d, g, s, b] = four_nodes();
                Mosfet::new("m", base.with_delta(delta), d, g, s, b)
            })
            .collect()
    }

    fn lane_devices(pmos: bool) -> Vec<Mosfet> {
        lane_devices_n(pmos, 3)
    }

    /// The bank must agree with the scalar device evaluation to ~1e-9
    /// relative across bias points, polarities and variation deltas
    /// (the `lanes` elementary functions differ from libm by a few ulp,
    /// which the subthreshold exponential amplifies slightly).
    #[test]
    fn bank_matches_scalar_eval() {
        // 3 lanes exercises the dynamic fallback; 4/8/16 the
        // monomorphized kernels.
        for (pmos, n) in [(false, 3), (true, 3), (false, 4), (true, 8), (false, 16)] {
            let devs = lane_devices_n(pmos, n);
            let refs: Vec<&Mosfet> = devs.iter().collect();
            let mut bank = MosfetBank::try_new(&refs).expect("uniform lanes");
            let k = bank.lanes();
            let biases = [
                [1.1, 1.1, 0.0, 0.0],
                [0.4, 0.9, 0.1, 0.0],
                [0.2, 1.0, 0.8, 0.0], // reversed drain/source
                [1.1, 0.0, 0.0, 0.0], // subthreshold
                [0.0, 0.0, 1.1, 1.1], // PMOS-style bias
            ];
            for bias in biases {
                let mut v = vec![0.0; 4 * k];
                for (ti, &b) in bias.iter().enumerate() {
                    for (lane, item) in v[ti * k..(ti + 1) * k].iter_mut().enumerate() {
                        // Slightly different voltages per lane.
                        *item = b + 0.013 * lane as f64;
                    }
                }
                let mut c = vec![0.0; 4 * k];
                let mut j = vec![0.0; 16 * k];
                bank.eval_lanes(&v, &mut c, &mut j);
                for (lane, dev) in devs.iter().enumerate() {
                    let vl: Vec<f64> = (0..4).map(|ti| v[ti * k + lane]).collect();
                    let mut stamp = DeviceStamp::new(4);
                    dev.eval(&vl, &mut stamp);
                    for ti in 0..4 {
                        let got = c[ti * k + lane];
                        let want = stamp.current[ti];
                        assert!(
                            (got - want).abs() <= 1e-9 * want.abs().max(1e-15),
                            "current[{ti}] lane {lane}: {got} vs {want}"
                        );
                        for tj in 0..4 {
                            let got = j[(ti * 4 + tj) * k + lane];
                            let want = stamp.jacobian[(ti, tj)];
                            assert!(
                                (got - want).abs() <= 1e-9 * want.abs().max(1e-12),
                                "jac[{ti},{tj}] lane {lane}: {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_polarity_lanes_refuse_to_batch() {
        let [d, g, s, b] = four_nodes();
        let n = Mosfet::new("n", tech45::nmos(DriveStrength::X1), d, g, s, b);
        let p = Mosfet::new("p", tech45::pmos(DriveStrength::X1), d, g, s, b);
        assert!(MosfetBank::try_new(&[&n, &p]).is_none());
    }

    /// Re-seating a lane must be indistinguishable from building a fresh
    /// bank over the swapped composition (bit-identical evaluation), and
    /// must refuse devices whose shared parameters differ.
    #[test]
    fn reseat_lane_matches_a_fresh_bank() {
        let devs = lane_devices_n(false, 4);
        let refs: Vec<&Mosfet> = devs.iter().collect();
        let mut bank = MosfetBank::try_new(&refs).unwrap();
        let k = bank.lanes();
        let [d, g, s, b] = four_nodes();
        let incoming = Mosfet::new(
            "m",
            tech45::nmos(DriveStrength::X2).with_delta(MosDelta {
                dvth: 0.011,
                dleff_rel: 0.027,
            }),
            d,
            g,
            s,
            b,
        );
        assert!(BatchedDeviceEval::reseat_lane(&mut bank, 2, &incoming));
        let swapped: Vec<&Mosfet> = vec![&devs[0], &devs[1], &incoming, &devs[3]];
        let mut fresh = MosfetBank::try_new(&swapped).unwrap();
        let v: Vec<f64> = (0..4 * k).map(|i| 0.1 + 0.07 * i as f64).collect();
        let (mut c0, mut j0) = (vec![0.0; 4 * k], vec![0.0; 16 * k]);
        let (mut c1, mut j1) = (vec![0.0; 4 * k], vec![0.0; 16 * k]);
        bank.eval_lanes(&v, &mut c0, &mut j0);
        fresh.eval_lanes(&v, &mut c1, &mut j1);
        assert_eq!(c0, c1, "re-seated bank currents drifted");
        assert_eq!(j0, j1, "re-seated bank jacobians drifted");

        // A different drive strength breaks uniformity: the bank must
        // refuse so the workspace rebuilds (or degrades) the slot.
        let alien = Mosfet::new("m", tech45::nmos(DriveStrength::X1), d, g, s, b);
        assert!(!BatchedDeviceEval::reseat_lane(&mut bank, 1, &alien));
        let mut c2 = vec![0.0; 4 * k];
        let mut j2 = vec![0.0; 16 * k];
        bank.eval_lanes(&v, &mut c2, &mut j2);
        assert_eq!(c0, c2, "a refused re-seat must not touch the bank");
    }

    #[test]
    fn batch_with_builds_a_bank_for_uniform_lanes() {
        let devs = lane_devices(false);
        let refs: Vec<&dyn NonlinearDevice> =
            devs.iter().map(|d| d as &dyn NonlinearDevice).collect();
        assert!(devs[0].batch_with(&refs).is_some());
    }
}
