//! Structure-of-arrays MOSFET evaluation for the batched transient engine.
//!
//! A Monte-Carlo batch instantiates the *same* transistor slot on K dies;
//! only the per-instance variation delta (ΔV_th, ΔL_eff) differs. The
//! [`MosfetBank`] therefore keeps the two varying quantities as per-lane
//! arrays — the effective threshold `vth0 + ΔV_th` and the geometry
//! factor `kp·W/L_eff` — and every other parameter once, then evaluates
//! all lanes in one straight-line pass. The model body is written once,
//! generic over a [`rotsv_num::simd::Simd`] ISA token (drain/source
//! mirroring and the saturation selects are compare + blend, the
//! elementary functions are the vector forms from `rotsv_num::lanes`),
//! and dispatched at runtime to AVX-512, AVX2 or scalar lanes — the
//! model evaluation dominates every transient's wall time, so this is
//! the kernel the explicit-SIMD port pays off most on.
//!
//! Accuracy: identical formulation to [`MosParams::ids_with_grad`], with
//! the `lanes` elementary functions in place of `libm` — a few ulp of
//! relative difference, orders of magnitude inside the batched engine's
//! 0.5 % agreement budget against the scalar engine. Across its own
//! dispatch arms the bank is *bit*-identical: every arm performs the
//! same IEEE-exact operations in the same association order, with
//! select-form conditionals and no fused multiply-adds.

use rotsv_num::lanes;
use rotsv_num::simd::{ScalarLanes, Simd};
use rotsv_spice::{BatchedDeviceEval, NonlinearDevice};

use crate::device::Mosfet;
use crate::model::{MosParams, Polarity, PHI_T};

/// One transistor slot across K lanes, structure-of-arrays.
#[derive(Debug)]
pub struct MosfetBank {
    k: usize,
    /// Per-lane `vth0 + ΔV_th` (before the body-effect term), volts.
    vth_base: Vec<f64>,
    /// Per-lane `kp·W/L_eff`, A/V².
    wl: Vec<f64>,
    /// `+1` for NMOS, `−1` for PMOS (terminal-voltage mirror).
    sign: f64,
    /// Softplus scale `2·n·φt` (shared by body clamp and overdrive).
    s: f64,
    gamma: f64,
    phi: f64,
    sqrt_phi: f64,
    theta: f64,
    lambda: f64,
    /// Uniformity fingerprint of the founding lanes; a refill re-seat
    /// must match it (plus `phi`) to reuse the shared-parameter kernel.
    key: (Polarity, [f64; 8]),
}

/// The parameters that must be uniform across lanes for the SoA kernel
/// (everything the I–V evaluation reads except the variation delta).
fn uniform_key(p: &MosParams) -> (Polarity, [f64; 8]) {
    (
        p.polarity,
        [p.vth0, p.kp, p.w, p.l, p.n_sub, p.theta, p.lambda, p.gamma],
    )
}

impl MosfetBank {
    /// Builds a bank over one device slot's K lane instances.
    ///
    /// Returns `None` when the lanes are not parameter-uniform up to
    /// their variation deltas (the batched workspace then falls back to
    /// per-lane scalar evaluation for this slot).
    pub fn try_new(lanes: &[&Mosfet]) -> Option<Self> {
        let first = lanes.first()?.params();
        let key = uniform_key(first);
        if !lanes.iter().all(|m| {
            let p = m.params();
            uniform_key(p) == key && p.phi == first.phi
        }) {
            return None;
        }
        Some(Self {
            k: lanes.len(),
            vth_base: lanes
                .iter()
                .map(|m| m.params().vth0 + m.params().delta.dvth)
                .collect(),
            wl: lanes
                .iter()
                .map(|m| {
                    let p = m.params();
                    p.kp * p.w / p.l_eff()
                })
                .collect(),
            sign: match first.polarity {
                Polarity::Nmos => 1.0,
                Polarity::Pmos => -1.0,
            },
            s: 2.0 * first.n_sub * PHI_T,
            gamma: first.gamma,
            phi: first.phi,
            sqrt_phi: first.phi.sqrt(),
            theta: first.theta,
            lambda: first.lambda,
            key,
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.k
    }
}

impl MosfetBank {
    /// Monomorphized evaluation: dispatches the lane sweep to the widest
    /// SIMD arm `K` is a multiple of. Lane results are bit-identical
    /// across arms (identical operations, association and selects), so
    /// the dispatch decision never changes a transient.
    fn eval_k<const K: usize>(&self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]) {
        debug_assert_eq!(self.k, K);
        #[cfg(target_arch = "x86_64")]
        {
            use rotsv_num::simd::{self, Level};
            let level = simd::level();
            if K.is_multiple_of(8) && level == Level::Avx512 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.eval_avx512::<K>(v, current, jacobian) };
            }
            if K.is_multiple_of(4) && level >= Level::Avx2 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.eval_avx2::<K>(v, current, jacobian) };
            }
        }
        // SAFETY: the scalar arm has no ISA requirements.
        unsafe { self.eval_body::<K, ScalarLanes>(v, current, jacobian) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    fn eval_avx512<const K: usize>(&self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]) {
        // SAFETY: caller verified avx512f; we are in a matching region.
        unsafe { self.eval_body::<K, rotsv_num::simd::Avx512Lanes>(v, current, jacobian) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn eval_avx2<const K: usize>(&self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]) {
        // SAFETY: caller verified avx2; we are in a matching region.
        unsafe { self.eval_body::<K, rotsv_num::simd::Avx2Lanes>(v, current, jacobian) }
    }

    /// The model sweep: `K` lanes in `K / S::W` vector chunks. Every
    /// operation mirrors [`MosfetBank::eval_dyn`] exactly — same IEEE
    /// ops, same association, compare + blend for every conditional
    /// (`max` included), no fused multiply-adds — so all dispatch arms
    /// and the dynamic fallback agree to the bit.
    ///
    /// # Safety
    ///
    /// `S`'s ISA must be available and enabled in the enclosing region;
    /// `K` must be a multiple of `S::W` and equal `self.k` (slices sized
    /// as in [`BatchedDeviceEval::eval_lanes`]).
    #[inline(always)]
    unsafe fn eval_body<const K: usize, S: Simd>(
        &self,
        v: &[f64],
        current: &mut [f64],
        jacobian: &mut [f64],
    ) {
        debug_assert_eq!(K % S::W, 0);
        let vp = v.as_ptr();
        let cp = current.as_mut_ptr();
        let jp = jacobian.as_mut_ptr();
        let vthp = self.vth_base.as_ptr();
        let wlp = self.wl.as_ptr();
        // SAFETY (whole body): all offsets stay inside the 4·K / 16·K /
        // K-sized slices asserted by `eval_lanes`; chunks are W-aligned
        // within each terminal's contiguous K-lane group.
        unsafe {
            let sign = S::splat(self.sign);
            let s = S::splat(self.s);
            let phi = S::splat(self.phi);
            let sqrt_phi = S::splat(self.sqrt_phi);
            let gamma = S::splat(self.gamma);
            let theta = S::splat(self.theta);
            let lambda = S::splat(self.lambda);
            let zero = S::splat(0.0);
            let one = S::splat(1.0);
            let two = S::splat(2.0);
            let eps = S::splat(1e-12);
            for c in (0..K).step_by(S::W) {
                // Polarity mirror; lane-interleaved layout means one
                // terminal's K lanes are contiguous: plain vector loads.
                let vd = S::mul(sign, S::ld(vp.add(c)));
                let vg = S::mul(sign, S::ld(vp.add(K + c)));
                let vs = S::mul(sign, S::ld(vp.add(2 * K + c)));
                let vb = S::mul(sign, S::ld(vp.add(3 * K + c)));
                // Drain/source symmetry: operate on the lower terminal
                // as source (compare + blend).
                let fwd = S::ge(vd, vs);
                let lo = S::sel(fwd, vs, vd);
                let hi = S::sel(fwd, vd, vs);
                let vds = S::sub(hi, lo);
                let vgs = S::sub(vg, lo);
                let vsb = S::sub(lo, vb);
                // Body effect with the smooth clamp.
                let (sp0, sig0) = lanes::softplus_sig_v::<S>(S::div(S::add(vsb, phi), s));
                let vsb_eff = S::mul(s, sp0);
                let sqrt_vsb_eff = S::sqrt(vsb_eff);
                let vth = S::add(
                    S::ld(vthp.add(c)),
                    S::mul(gamma, S::sub(sqrt_vsb_eff, sqrt_phi)),
                );
                let dvth_dvsb = S::div(S::mul(gamma, sig0), S::mul(two, sqrt_vsb_eff));
                // Smooth effective overdrive.
                let (sp1, sig1) = lanes::softplus_sig_v::<S>(S::div(S::sub(vgs, vth), s));
                let vov = S::mul(s, sp1);
                let theta_den = S::add(one, S::mul(theta, vov));
                let beta = S::div(S::ld(wlp.add(c)), theta_den);
                let dbeta_dvov = S::div(S::mul(S::neg(beta), theta), theta_den);
                // `vov.max(1e-12)` in select form: identical values
                // (vov ≥ 0 by construction; a NaN picks eps both ways).
                let vov_big = S::gt(vov, eps);
                let vdsat = S::sel(vov_big, vov, eps);
                let u = S::div(vds, vdsat);
                let u2 = S::mul(u, u);
                let u4 = S::mul(u2, u2);
                let den = S::sqrt(S::sqrt(S::add(one, u4)));
                let vds_eff = S::div(vds, den);
                let den4 = S::mul(S::mul(S::mul(den, den), den), den);
                let dveff_dvds = S::div(one, S::mul(den4, den));
                let dveff_dvdsat = S::sel(vov_big, S::mul(S::mul(u4, u), dveff_dvds), zero);
                let clm = S::add(one, S::mul(lambda, vds));
                let q = S::mul(S::sub(vov, S::div(vds_eff, two)), vds_eff);
                let i_core = S::mul(S::mul(beta, q), clm);
                let dq_dveff = S::sub(vov, vds_eff);
                let d_vds = S::add(
                    S::mul(S::mul(S::mul(beta, clm), dq_dveff), dveff_dvds),
                    S::mul(S::mul(beta, q), lambda),
                );
                let di_dvov = S::mul(
                    S::add(
                        S::mul(dbeta_dvov, q),
                        S::mul(beta, S::add(vds_eff, S::mul(dq_dveff, dveff_dvdsat))),
                    ),
                    clm,
                );
                let d_vgs = S::mul(di_dvov, sig1);
                let d_vsb = S::mul(S::mul(S::neg(di_dvov), sig1), dvth_dvsb);
                // Un-mirror drain/source, then polarity.
                let i_n = S::sel(fwd, i_core, S::neg(i_core));
                let gd = S::sel(fwd, d_vds, S::sub(S::add(d_vds, d_vgs), d_vsb));
                let gg = S::sel(fwd, d_vgs, S::neg(d_vgs));
                let gs = S::sel(
                    fwd,
                    S::add(S::sub(S::neg(d_vds), d_vgs), d_vsb),
                    S::neg(d_vds),
                );
                let gb = S::sel(fwd, S::neg(d_vsb), d_vsb);
                let id = S::mul(sign, i_n);
                // Channel current drain → source; gate and bulk rows zero.
                S::st(cp.add(c), id);
                S::st(cp.add(K + c), zero);
                S::st(cp.add(2 * K + c), S::neg(id));
                S::st(cp.add(3 * K + c), zero);
                let grad = [gd, gg, gs, gb];
                for (j, &g) in grad.iter().enumerate() {
                    S::st(jp.add(j * K + c), g); // row 0: drain
                    S::st(jp.add((4 + j) * K + c), zero); // row 1: gate
                    S::st(jp.add((8 + j) * K + c), S::neg(g)); // row 2: source
                    S::st(jp.add((12 + j) * K + c), zero); // row 3: bulk
                }
            }
        }
    }

    /// Dynamic-lane-count fallback for batch sizes without a
    /// monomorphized kernel (remainder batches).
    fn eval_dyn(&self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]) {
        let k = self.k;
        let (sign, s) = (self.sign, self.s);
        let (gamma, phi, sqrt_phi) = (self.gamma, self.phi, self.sqrt_phi);
        let (theta, lambda) = (self.theta, self.lambda);
        for lane in 0..k {
            // Polarity mirror: PMOS evaluates the NMOS equations at
            // negated terminal voltages and negates the current.
            let vd = sign * v[lane];
            let vg = sign * v[k + lane];
            let vs = sign * v[2 * k + lane];
            let vb = sign * v[3 * k + lane];
            // Drain/source symmetry: operate on the lower terminal as
            // source (select, not branch — both sides cost the same).
            let fwd = vd >= vs;
            let lo = if fwd { vs } else { vd };
            let hi = if fwd { vd } else { vs };
            let vds = hi - lo;
            let vgs = vg - lo;
            let vsb = lo - vb;
            // Body effect with the smooth clamp (see MosParams::ids_core_grad).
            let (sp0, sig0) = lanes::softplus_sig((vsb + phi) / s);
            let vsb_eff = s * sp0;
            let sqrt_vsb_eff = vsb_eff.sqrt();
            let vth = self.vth_base[lane] + gamma * (sqrt_vsb_eff - sqrt_phi);
            let dvth_dvsb = gamma * sig0 / (2.0 * sqrt_vsb_eff);
            // Smooth effective overdrive.
            let (sp1, sig1) = lanes::softplus_sig((vgs - vth) / s);
            let vov = s * sp1;
            let theta_den = 1.0 + theta * vov;
            let beta = self.wl[lane] / theta_den;
            let dbeta_dvov = -beta * theta / theta_den;
            let vdsat = vov.max(1e-12);
            let u = vds / vdsat;
            let u2 = u * u;
            let u4 = u2 * u2;
            let den = (1.0 + u4).sqrt().sqrt();
            let vds_eff = vds / den;
            let den4 = den * den * den * den;
            let dveff_dvds = 1.0 / (den4 * den);
            let dveff_dvdsat = if vov > 1e-12 {
                u4 * u * dveff_dvds
            } else {
                0.0
            };
            let clm = 1.0 + lambda * vds;
            let q = (vov - vds_eff / 2.0) * vds_eff;
            let i_core = beta * q * clm;
            let dq_dveff = vov - vds_eff;
            let d_vds = beta * clm * dq_dveff * dveff_dvds + beta * q * lambda;
            let di_dvov = (dbeta_dvov * q + beta * (vds_eff + dq_dveff * dveff_dvdsat)) * clm;
            let d_vgs = di_dvov * sig1;
            let d_vsb = -di_dvov * sig1 * dvth_dvsb;
            // Un-mirror drain/source, then polarity (gradient is
            // polarity-invariant: f(v) = −g(−v) ⇒ f′(v) = g′(−v)).
            let (i_n, gd, gg, gs, gb) = if fwd {
                (i_core, d_vds, d_vgs, -d_vds - d_vgs + d_vsb, -d_vsb)
            } else {
                (-i_core, d_vds + d_vgs - d_vsb, -d_vgs, -d_vds, d_vsb)
            };
            let id = sign * i_n;
            // Channel current drain → source; gate and bulk rows zero.
            current[lane] = id;
            current[k + lane] = 0.0;
            current[2 * k + lane] = -id;
            current[3 * k + lane] = 0.0;
            let grad = [gd, gg, gs, gb];
            for (j, g) in grad.iter().enumerate() {
                jacobian[j * k + lane] = *g; // row 0: drain
                jacobian[(4 + j) * k + lane] = 0.0; // row 1: gate
                jacobian[(8 + j) * k + lane] = -g; // row 2: source
                jacobian[(12 + j) * k + lane] = 0.0; // row 3: bulk
            }
        }
    }
}

impl BatchedDeviceEval for MosfetBank {
    fn eval_lanes(&mut self, v: &[f64], current: &mut [f64], jacobian: &mut [f64]) {
        let k = self.k;
        debug_assert_eq!(v.len(), 4 * k);
        debug_assert_eq!(current.len(), 4 * k);
        debug_assert_eq!(jacobian.len(), 16 * k);
        // Monomorphized kernels for the common batch widths; lane results
        // are bit-identical across the dispatch arms and the dynamic
        // fallback (the vector-form elementary functions match the
        // scalar ones bit for bit).
        match k {
            1 => self.eval_k::<1>(v, current, jacobian),
            2 => self.eval_k::<2>(v, current, jacobian),
            4 => self.eval_k::<4>(v, current, jacobian),
            8 => self.eval_k::<8>(v, current, jacobian),
            16 => self.eval_k::<16>(v, current, jacobian),
            32 => self.eval_k::<32>(v, current, jacobian),
            64 => self.eval_k::<64>(v, current, jacobian),
            _ => self.eval_dyn(v, current, jacobian),
        }
    }

    /// O(1) refill re-seat: only the two per-lane arrays depend on the
    /// die, so seating a new die's transistor into `lane` is two stores —
    /// provided its shared parameters match the bank's fingerprint.
    fn reseat_lane(&mut self, lane: usize, device: &dyn NonlinearDevice) -> bool {
        debug_assert!(lane < self.k);
        let Some(m) = device.as_any().and_then(|a| a.downcast_ref::<Mosfet>()) else {
            return false;
        };
        let p = m.params();
        if uniform_key(p) != self.key || p.phi != self.phi {
            return false;
        }
        self.vth_base[lane] = p.vth0 + p.delta.dvth;
        self.wl[lane] = p.kp * p.w / p.l_eff();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MosDelta;
    use crate::tech45::{self, DriveStrength};
    use rotsv_spice::{Circuit, DeviceStamp, NodeId, NonlinearDevice};

    fn four_nodes() -> [NodeId; 4] {
        let mut ckt = Circuit::new();
        [ckt.node("d"), ckt.node("g"), ckt.node("s"), ckt.node("b")]
    }

    fn lane_devices_n(pmos: bool, n: usize) -> Vec<Mosfet> {
        let base = if pmos {
            tech45::pmos(DriveStrength::X2)
        } else {
            tech45::nmos(DriveStrength::X2)
        };
        let deltas = [
            MosDelta::NOMINAL,
            MosDelta {
                dvth: 0.02,
                dleff_rel: -0.05,
            },
            MosDelta {
                dvth: -0.015,
                dleff_rel: 0.08,
            },
        ];
        (0..n)
            .map(|i| {
                let delta = deltas[i % deltas.len()];
                let [d, g, s, b] = four_nodes();
                Mosfet::new("m", base.with_delta(delta), d, g, s, b)
            })
            .collect()
    }

    fn lane_devices(pmos: bool) -> Vec<Mosfet> {
        lane_devices_n(pmos, 3)
    }

    /// The bank must agree with the scalar device evaluation to ~1e-9
    /// relative across bias points, polarities and variation deltas
    /// (the `lanes` elementary functions differ from libm by a few ulp,
    /// which the subthreshold exponential amplifies slightly).
    #[test]
    fn bank_matches_scalar_eval() {
        // 3 lanes exercises the dynamic fallback; 4/8/16 the
        // monomorphized kernels.
        for (pmos, n) in [(false, 3), (true, 3), (false, 4), (true, 8), (false, 16)] {
            let devs = lane_devices_n(pmos, n);
            let refs: Vec<&Mosfet> = devs.iter().collect();
            let mut bank = MosfetBank::try_new(&refs).expect("uniform lanes");
            let k = bank.lanes();
            let biases = [
                [1.1, 1.1, 0.0, 0.0],
                [0.4, 0.9, 0.1, 0.0],
                [0.2, 1.0, 0.8, 0.0], // reversed drain/source
                [1.1, 0.0, 0.0, 0.0], // subthreshold
                [0.0, 0.0, 1.1, 1.1], // PMOS-style bias
            ];
            for bias in biases {
                let mut v = vec![0.0; 4 * k];
                for (ti, &b) in bias.iter().enumerate() {
                    for (lane, item) in v[ti * k..(ti + 1) * k].iter_mut().enumerate() {
                        // Slightly different voltages per lane.
                        *item = b + 0.013 * lane as f64;
                    }
                }
                let mut c = vec![0.0; 4 * k];
                let mut j = vec![0.0; 16 * k];
                bank.eval_lanes(&v, &mut c, &mut j);
                for (lane, dev) in devs.iter().enumerate() {
                    let vl: Vec<f64> = (0..4).map(|ti| v[ti * k + lane]).collect();
                    let mut stamp = DeviceStamp::new(4);
                    dev.eval(&vl, &mut stamp);
                    for ti in 0..4 {
                        let got = c[ti * k + lane];
                        let want = stamp.current[ti];
                        assert!(
                            (got - want).abs() <= 1e-9 * want.abs().max(1e-15),
                            "current[{ti}] lane {lane}: {got} vs {want}"
                        );
                        for tj in 0..4 {
                            let got = j[(ti * 4 + tj) * k + lane];
                            let want = stamp.jacobian[(ti, tj)];
                            assert!(
                                (got - want).abs() <= 1e-9 * want.abs().max(1e-12),
                                "jac[{ti},{tj}] lane {lane}: {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_polarity_lanes_refuse_to_batch() {
        let [d, g, s, b] = four_nodes();
        let n = Mosfet::new("n", tech45::nmos(DriveStrength::X1), d, g, s, b);
        let p = Mosfet::new("p", tech45::pmos(DriveStrength::X1), d, g, s, b);
        assert!(MosfetBank::try_new(&[&n, &p]).is_none());
    }

    /// Re-seating a lane must be indistinguishable from building a fresh
    /// bank over the swapped composition (bit-identical evaluation), and
    /// must refuse devices whose shared parameters differ.
    #[test]
    fn reseat_lane_matches_a_fresh_bank() {
        let devs = lane_devices_n(false, 4);
        let refs: Vec<&Mosfet> = devs.iter().collect();
        let mut bank = MosfetBank::try_new(&refs).unwrap();
        let k = bank.lanes();
        let [d, g, s, b] = four_nodes();
        let incoming = Mosfet::new(
            "m",
            tech45::nmos(DriveStrength::X2).with_delta(MosDelta {
                dvth: 0.011,
                dleff_rel: 0.027,
            }),
            d,
            g,
            s,
            b,
        );
        assert!(BatchedDeviceEval::reseat_lane(&mut bank, 2, &incoming));
        let swapped: Vec<&Mosfet> = vec![&devs[0], &devs[1], &incoming, &devs[3]];
        let mut fresh = MosfetBank::try_new(&swapped).unwrap();
        let v: Vec<f64> = (0..4 * k).map(|i| 0.1 + 0.07 * i as f64).collect();
        let (mut c0, mut j0) = (vec![0.0; 4 * k], vec![0.0; 16 * k]);
        let (mut c1, mut j1) = (vec![0.0; 4 * k], vec![0.0; 16 * k]);
        bank.eval_lanes(&v, &mut c0, &mut j0);
        fresh.eval_lanes(&v, &mut c1, &mut j1);
        assert_eq!(c0, c1, "re-seated bank currents drifted");
        assert_eq!(j0, j1, "re-seated bank jacobians drifted");

        // A different drive strength breaks uniformity: the bank must
        // refuse so the workspace rebuilds (or degrades) the slot.
        let alien = Mosfet::new("m", tech45::nmos(DriveStrength::X1), d, g, s, b);
        assert!(!BatchedDeviceEval::reseat_lane(&mut bank, 1, &alien));
        let mut c2 = vec![0.0; 4 * k];
        let mut j2 = vec![0.0; 16 * k];
        bank.eval_lanes(&v, &mut c2, &mut j2);
        assert_eq!(c0, c2, "a refused re-seat must not touch the bank");
    }

    #[test]
    fn batch_with_builds_a_bank_for_uniform_lanes() {
        let devs = lane_devices(false);
        let refs: Vec<&dyn NonlinearDevice> =
            devs.iter().map(|d| d as &dyn NonlinearDevice).collect();
        assert!(devs[0].batch_with(&refs).is_some());
    }
}
