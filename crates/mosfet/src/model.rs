//! The compact model equations.

/// Thermal voltage kT/q at 300 K, volts.
pub const PHI_T: f64 = 0.02585;

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Per-instance process-variation perturbation.
///
/// The paper's Monte-Carlo model varies the threshold voltage
/// (3σ = 30 mV) and the effective gate length (3σ = 10 %) of every
/// transistor independently.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosDelta {
    /// Threshold-voltage shift, volts (added to the magnitude of V_th).
    pub dvth: f64,
    /// Relative effective-length change (e.g. +0.05 = 5 % longer channel).
    pub dleff_rel: f64,
}

impl MosDelta {
    /// The nominal (no-variation) delta.
    pub const NOMINAL: MosDelta = MosDelta {
        dvth: 0.0,
        dleff_rel: 0.0,
    };
}

/// A supplier of per-transistor process-variation deltas.
///
/// The standard-cell layer pulls one delta per instantiated transistor;
/// `rotsv-variation` provides a seeded Gaussian implementation, and
/// [`Nominal`] provides the no-variation case.
pub trait VariationSource {
    /// Delta for the next transistor instance.
    fn next_delta(&mut self) -> MosDelta;
}

/// The no-variation source: every transistor is nominal.
///
/// # Examples
///
/// ```
/// use rotsv_mosfet::model::{MosDelta, Nominal, VariationSource};
///
/// let mut v = Nominal;
/// assert_eq!(v.next_delta(), MosDelta::NOMINAL);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Nominal;

impl VariationSource for Nominal {
    fn next_delta(&mut self) -> MosDelta {
        MosDelta::NOMINAL
    }
}

/// A fully-sized MOSFET parameter set.
///
/// All voltages are absolute terminal voltages; polarity mirroring is
/// internal. Capacitances are *not* part of the I–V evaluation — the
/// standard-cell layer adds them as linear circuit elements via
/// [`MosParams::c_gs`] and friends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Channel polarity.
    pub polarity: Polarity,
    /// Threshold-voltage magnitude at zero back-bias, volts.
    pub vth0: f64,
    /// Transconductance factor µ·C_ox, A/V².
    pub kp: f64,
    /// Drawn channel width, meters.
    pub w: f64,
    /// Drawn channel length, meters.
    pub l: f64,
    /// Subthreshold slope factor (dimensionless, ≳ 1).
    pub n_sub: f64,
    /// Vertical-field mobility degradation, 1/V.
    pub theta: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Body-effect coefficient, √V.
    pub gamma: f64,
    /// Surface potential 2φ_F, volts.
    pub phi: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Gate overlap capacitance per width, F/m.
    pub cov: f64,
    /// Junction capacitance per area, F/m².
    pub cj: f64,
    /// Source/drain diffusion extension, meters (sets junction area).
    pub diff_ext: f64,
    /// Process-variation perturbation applied to this instance.
    pub delta: MosDelta,
}

/// Numerically safe exponential (clamps the argument).
#[inline]
fn safe_exp(x: f64) -> f64 {
    x.clamp(-60.0, 60.0).exp()
}

/// Softplus with scale `s` — smooth max(0, x), `s·ln(1 + exp(x/s))` —
/// and its derivative (the logistic function) in one pass.
#[inline]
fn softplus_grad(x: f64, s: f64) -> (f64, f64) {
    if x > 30.0 * s {
        (x, 1.0)
    } else {
        let e = safe_exp(x / s);
        (s * (1.0 + e).ln(), e / (1.0 + e))
    }
}

/// `(1 + u⁴)^(1/4)` via two hardware square roots — `powf` through libm
/// costs more than the whole rest of the I–V evaluation.
#[inline]
fn quartic_norm(u: f64) -> f64 {
    let u2 = u * u;
    (1.0 + u2 * u2).sqrt().sqrt()
}

impl MosParams {
    /// Effective channel length including the instance ΔL_eff.
    pub fn l_eff(&self) -> f64 {
        self.l * (1.0 + self.delta.dleff_rel)
    }

    /// Returns a copy with the given variation delta applied.
    pub fn with_delta(mut self, delta: MosDelta) -> Self {
        self.delta = delta;
        self
    }

    /// Returns a copy scaled to width `w`.
    pub fn with_width(mut self, w: f64) -> Self {
        self.w = w;
        self
    }

    /// Gate–source (and gate–drain) capacitance: half the channel charge
    /// plus overlap, farads.
    pub fn c_gs(&self) -> f64 {
        0.5 * self.cox * self.w * self.l_eff() + self.cov * self.w
    }

    /// Gate–drain capacitance, farads (symmetric with [`Self::c_gs`]).
    pub fn c_gd(&self) -> f64 {
        self.c_gs()
    }

    /// Drain–bulk (and source–bulk) junction capacitance, farads.
    pub fn c_db(&self) -> f64 {
        self.cj * self.w * self.diff_ext
    }

    /// Drain current into the drain terminal given absolute terminal
    /// voltages, amps. Positive current flows drain → source inside the
    /// channel for an NMOS with V_DS > 0.
    ///
    /// The model is symmetric: `ids` with drain and source exchanged
    /// returns the negated current.
    pub fn ids(&self, vd: f64, vg: f64, vs: f64, vb: f64) -> f64 {
        match self.polarity {
            Polarity::Nmos => self.ids_n(vd, vg, vs, vb),
            // PMOS mirrors the NMOS equations in voltage and current.
            Polarity::Pmos => -self.ids_n(-vd, -vg, -vs, -vb),
        }
    }

    /// Drain current *and* its gradient with respect to the four absolute
    /// terminal voltages `[vd, vg, vs, vb]`, amps and siemens.
    ///
    /// One call replaces the five `ids` evaluations a forward-difference
    /// Jacobian needs — the Newton assembly loop is the hot path of every
    /// transient, and the model evaluation dominates it.
    ///
    /// # Examples
    ///
    /// ```
    /// use rotsv_mosfet::tech45::{self, DriveStrength};
    ///
    /// let m = tech45::nmos(DriveStrength::X1);
    /// let (id, grad) = m.ids_with_grad(1.1, 1.1, 0.0, 0.0);
    /// assert_eq!(id, m.ids(1.1, 1.1, 0.0, 0.0));
    /// assert!(grad[1] > 0.0); // transconductance
    /// ```
    pub fn ids_with_grad(&self, vd: f64, vg: f64, vs: f64, vb: f64) -> (f64, [f64; 4]) {
        match self.polarity {
            Polarity::Nmos => self.ids_n_grad(vd, vg, vs, vb),
            // f(v) = −g(−v) ⇒ f′(v) = g′(−v): same gradient, negated value.
            Polarity::Pmos => {
                let (i, g) = self.ids_n_grad(-vd, -vg, -vs, -vb);
                (-i, g)
            }
        }
    }

    /// NMOS-normalized current (see [`Self::ids`]).
    fn ids_n(&self, vd: f64, vg: f64, vs: f64, vb: f64) -> f64 {
        // Source/drain symmetry: operate on the lower terminal as source.
        if vd >= vs {
            self.ids_core(vd - vs, vg - vs, vs - vb)
        } else {
            -self.ids_core(vs - vd, vg - vd, vd - vb)
        }
    }

    /// NMOS-normalized current and gradient (see [`Self::ids_with_grad`]).
    fn ids_n_grad(&self, vd: f64, vg: f64, vs: f64, vb: f64) -> (f64, [f64; 4]) {
        if vd >= vs {
            let (i, d_vds, d_vgs, d_vsb) = self.ids_core_grad(vd - vs, vg - vs, vs - vb);
            (i, [d_vds, d_vgs, -d_vds - d_vgs + d_vsb, -d_vsb])
        } else {
            // Mirrored branch: i = −core(vs−vd, vg−vd, vd−vb).
            let (i, d_vds, d_vgs, d_vsb) = self.ids_core_grad(vs - vd, vg - vd, vd - vb);
            (-i, [d_vds + d_vgs - d_vsb, -d_vgs, -d_vds, d_vsb])
        }
    }

    /// Core equations for vds >= 0.
    fn ids_core(&self, vds: f64, vgs: f64, vsb: f64) -> f64 {
        self.ids_core_grad(vds, vgs, vsb).0
    }

    /// Core value plus partials w.r.t. `(vds, vgs, vsb)` for vds >= 0.
    fn ids_core_grad(&self, vds: f64, vgs: f64, vsb: f64) -> (f64, f64, f64, f64) {
        let n = self.n_sub;
        // Body effect with a smooth clamp that keeps the square roots real
        // even for forward body bias.
        let (vsb_eff, sig0) = softplus_grad(vsb + self.phi, 2.0 * PHI_T * n);
        let sqrt_vsb_eff = vsb_eff.sqrt();
        let vth = self.vth0 + self.delta.dvth + self.gamma * (sqrt_vsb_eff - self.phi.sqrt());
        let dvth_dvsb = self.gamma * sig0 / (2.0 * sqrt_vsb_eff);
        // Smooth effective overdrive: ~vgs - vth in strong inversion,
        // exponential in weak inversion with slope n·φt.
        let s = 2.0 * n * PHI_T;
        let (vov, sig1) = softplus_grad(vgs - vth, s);
        if vov <= 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let theta_den = 1.0 + self.theta * vov;
        let beta = self.kp * (self.w / self.l_eff()) / theta_den;
        let dbeta_dvov = -beta * self.theta / theta_den;
        // Saturation voltage equals the overdrive (square law); vds_eff
        // approaches min(vds, vdsat) smoothly: vds·(1 + (vds/vdsat)⁴)^(−1/4).
        let vdsat = vov.max(1e-12);
        let u = vds / vdsat;
        let den = quartic_norm(u);
        let vds_eff = vds / den;
        // ∂vds_eff/∂vds = (1+u⁴)^(−5/4); ∂vds_eff/∂vdsat = u⁵·(1+u⁴)^(−5/4).
        let den4 = den * den * den * den; // 1 + u⁴, re-derived cheaply
        let dveff_dvds = 1.0 / (den4 * den);
        let dveff_dvdsat = if vov > 1e-12 {
            u * u * u * u * u * dveff_dvds
        } else {
            0.0
        };
        let clm = 1.0 + self.lambda * vds;
        let q = (vov - vds_eff / 2.0) * vds_eff;
        let i = beta * q * clm;
        let dq_dveff = vov - vds_eff;
        let d_vds = beta * clm * dq_dveff * dveff_dvds + beta * q * self.lambda;
        let di_dvov = (dbeta_dvov * q + beta * (vds_eff + dq_dveff * dveff_dvdsat)) * clm;
        let d_vgs = di_dvov * sig1;
        let d_vsb = -di_dvov * sig1 * dvth_dvsb;
        (i, d_vds, d_vgs, d_vsb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech45::{self, DriveStrength};

    fn nmos() -> MosParams {
        tech45::nmos(DriveStrength::X1)
    }

    fn pmos() -> MosParams {
        tech45::pmos(DriveStrength::X1)
    }

    #[test]
    fn current_zero_at_zero_vds() {
        let m = nmos();
        assert_eq!(m.ids(0.0, 1.1, 0.0, 0.0), 0.0);
    }

    #[test]
    fn current_increases_with_vgs() {
        let m = nmos();
        let mut prev = 0.0;
        for k in 1..=11 {
            let vg = 0.1 * k as f64;
            let id = m.ids(1.1, vg, 0.0, 0.0);
            assert!(id > prev, "id({vg}) = {id} not increasing");
            prev = id;
        }
    }

    #[test]
    fn current_monotone_in_vds() {
        let m = nmos();
        let mut prev = -1.0;
        for k in 0..=22 {
            let vd = 0.05 * k as f64;
            let id = m.ids(vd, 1.1, 0.0, 0.0);
            assert!(id >= prev, "id({vd}) decreasing");
            prev = id;
        }
    }

    #[test]
    fn saturation_current_in_plausible_range() {
        // A 45nm-LP X1 NMOS should carry a few hundred µA at full drive.
        let id = nmos().ids(1.1, 1.1, 0.0, 0.0);
        assert!(id > 50e-6 && id < 800e-6, "Idsat = {id}");
    }

    #[test]
    fn subthreshold_current_is_small_but_nonzero() {
        let m = nmos();
        let id_off = m.ids(1.1, 0.0, 0.0, 0.0);
        assert!(id_off > 0.0, "subthreshold conduction must exist");
        assert!(id_off < 1e-7, "off current too large: {id_off}");
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        let m = nmos();
        // One n·φt of gate drive below threshold ≈ e-fold current change.
        let i1 = m.ids(1.1, 0.20, 0.0, 0.0);
        let i2 = m.ids(1.1, 0.20 + m.n_sub * PHI_T, 0.0, 0.0);
        let ratio = i2 / i1;
        assert!(
            (2.0..4.5).contains(&ratio),
            "per-nφt subthreshold ratio {ratio}, expected ≈ e"
        );
    }

    #[test]
    fn drain_source_symmetry() {
        let m = nmos();
        // Exchanging drain and source negates the current.
        let a = m.ids(0.8, 1.0, 0.2, 0.0);
        let b = m.ids(0.2, 1.0, 0.8, 0.0);
        assert!((a + b).abs() < 1e-15 * a.abs().max(1.0), "a={a} b={b}");
        assert!(a > 0.0);
    }

    #[test]
    fn pmos_mirrors_nmos_shape() {
        let p = pmos();
        // Source at VDD, gate at 0, drain at 0: strong conduction, current
        // flows INTO the drain terminal from the channel (negative by the
        // drain-inflow convention).
        let id = p.ids(0.0, 0.0, 1.1, 1.1);
        assert!(id < 0.0, "PMOS on-current should be negative, got {id}");
        assert!(id.abs() > 50e-6);
        // Off when gate at VDD.
        let id_off = p.ids(0.0, 1.1, 1.1, 1.1);
        assert!(id_off.abs() < 1e-7);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let m = nmos();
        let id_no_bias = m.ids(1.1, 0.6, 0.0, 0.0);
        // Reverse body bias (source above bulk) reduces current.
        let id_rbb = m.ids(1.1, 0.6, 0.0, -0.5) * 1.0;
        let id_rbb_same_vgs = m.ids(1.1 + 0.0, 0.6, 0.0, -0.5);
        assert!(id_rbb_same_vgs < id_no_bias);
        let _ = id_rbb;
    }

    #[test]
    fn dvth_shift_reduces_current() {
        let base = nmos();
        let slow = base.with_delta(MosDelta {
            dvth: 0.03,
            dleff_rel: 0.0,
        });
        assert!(slow.ids(1.1, 1.1, 0.0, 0.0) < base.ids(1.1, 1.1, 0.0, 0.0));
    }

    #[test]
    fn longer_channel_reduces_current() {
        let base = nmos();
        let long = base.with_delta(MosDelta {
            dvth: 0.0,
            dleff_rel: 0.10,
        });
        let ratio = long.ids(1.1, 1.1, 0.0, 0.0) / base.ids(1.1, 1.1, 0.0, 0.0);
        assert!((0.85..0.97).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn capacitances_scale_with_width() {
        let x1 = tech45::nmos(DriveStrength::X1);
        let x4 = tech45::nmos(DriveStrength::X4);
        assert!((x4.c_gs() / x1.c_gs() - 4.0).abs() < 1e-9);
        assert!((x4.c_db() / x1.c_db() - 4.0).abs() < 1e-9);
        assert!(
            x1.c_gs() > 1e-17 && x1.c_gs() < 1e-14,
            "cgs = {}",
            x1.c_gs()
        );
    }

    #[test]
    fn near_threshold_drive_collapses() {
        // The multi-voltage method relies on drive current falling much
        // faster than linearly as VDD drops toward Vth.
        let m = nmos();
        let i_nom = m.ids(1.1, 1.1, 0.0, 0.0);
        let i_low = m.ids(0.7, 0.7, 0.0, 0.0);
        let ratio = i_nom / i_low;
        assert!(
            ratio > 3.0,
            "expected strong drive collapse at 0.7 V, ratio {ratio}"
        );
    }

    #[test]
    fn shift_invariance_of_terminal_voltages() {
        // Currents depend only on voltage differences.
        let m = nmos();
        let a = m.ids(1.0, 0.9, 0.2, 0.0);
        let b = m.ids(1.5, 1.4, 0.7, 0.5);
        assert!((a - b).abs() < 1e-12 * a.abs().max(1e-12));
    }
}

#[cfg(test)]
mod proptests {
    use crate::tech45::{self, DriveStrength};
    use proptest::prelude::*;

    proptest! {
        /// Current sign always matches vds sign for any bias in range.
        #[test]
        fn current_sign_follows_vds(
            vd in 0.0..1.2f64,
            vg in 0.0..1.2f64,
            vs in 0.0..1.2f64,
        ) {
            let m = tech45::nmos(DriveStrength::X1);
            let id = m.ids(vd, vg, vs, 0.0);
            if vd > vs {
                prop_assert!(id >= 0.0);
            } else if vd < vs {
                prop_assert!(id <= 0.0);
            }
        }

        /// The model is continuous: small voltage steps give small current
        /// steps (no kinks that would break Newton).
        #[test]
        fn current_is_lipschitz_in_vd(
            vd in 0.05..1.15f64,
            vg in 0.0..1.2f64,
        ) {
            let m = tech45::nmos(DriveStrength::X1);
            let h = 1e-4;
            let i0 = m.ids(vd - h, vg, 0.0, 0.0);
            let i1 = m.ids(vd + h, vg, 0.0, 0.0);
            // Conductance bounded by a few tens of mS for this size.
            prop_assert!(((i1 - i0) / (2.0 * h)).abs() < 0.1);
        }

        /// Exchanging drain and source negates the current exactly.
        #[test]
        fn symmetry_holds_everywhere(
            va in 0.0..1.2f64,
            vb in 0.0..1.2f64,
            vg in 0.0..1.2f64,
        ) {
            let m = tech45::nmos(DriveStrength::X2);
            let fwd = m.ids(va, vg, vb, 0.0);
            let rev = m.ids(vb, vg, va, 0.0);
            prop_assert!((fwd + rev).abs() <= 1e-12 * fwd.abs().max(1e-12));
        }

        /// The analytic gradient matches central finite differences of
        /// `ids` at every bias, for both polarities.
        #[test]
        fn gradient_matches_finite_differences(
            vd in 0.0..1.2f64,
            vg in 0.0..1.2f64,
            vs in 0.0..1.2f64,
            pmos in 0u8..2,
        ) {
            let m = if pmos == 1 {
                tech45::pmos(DriveStrength::X1)
            } else {
                tech45::nmos(DriveStrength::X1)
            };
            let v = [vd, vg, vs, 0.0];
            let (id, grad) = m.ids_with_grad(v[0], v[1], v[2], v[3]);
            prop_assert_eq!(id, m.ids(v[0], v[1], v[2], v[3]));
            let h = 1e-6;
            for j in 0..4 {
                let (mut vp, mut vm) = (v, v);
                vp[j] += h;
                vm[j] -= h;
                let fd = (m.ids(vp[0], vp[1], vp[2], vp[3])
                    - m.ids(vm[0], vm[1], vm[2], vm[3]))
                    / (2.0 * h);
                // Absolute floor covers the subthreshold region where
                // both are ~0; the relative bound covers strong inversion.
                let tol = 1e-9 + 1e-4 * fd.abs().max(grad[j].abs());
                prop_assert!(
                    (grad[j] - fd).abs() <= tol,
                    "terminal {}: analytic {} vs fd {}", j, grad[j], fd
                );
            }
        }
    }
}
