//! Emits `BENCH_solver.json`: wall-clock timings of the solver kernels
//! (dense LU, sparse analyze/refactor/solve), end-to-end transient runs
//! with their [`SolverStats`] work counters for both step controllers,
//! and the observability overhead of the `rotsv-obs` span/metric layer.
//! Run with `cargo run --release -p rotsv-bench --bin bench_solver` from
//! the repo root; PERFORMANCE.md quotes its output.
//!
//! ```text
//! bench_solver            # run benches, rewrite BENCH_solver.json
//! bench_solver --check    # run benches, compare against the committed
//!                         # BENCH_solver.json; warn on a >15 % wall-time
//!                         # regression, exit 1 only beyond 25 %
//! bench_solver --check --warn   # same comparison, but always exit 0
//! bench_solver --hetero-probe   # run only the heterogeneous refill
//!                               # section (tuning aid; writes nothing)
//! ```

use std::time::Instant;

use rotsv::num::linsolve::LuFactors;
use rotsv::num::matrix::Matrix;
use rotsv::num::rng::GaussianRng;
use rotsv::num::sparse::{SolverStats, SparseLu, SparseMatrix};
use rotsv::spice::{Circuit, SourceWaveform, StepControl, TransientSpec};
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};
use rotsv_campaign::{value_payload, LedgerEntry, LedgerWriter, SampleStatus};
use rotsv_obs::Json;

/// Wall-time drift beyond this is reported as a warning (timing noise
/// on shared runners makes hard-failing at 15 % too flaky).
const WARN_LIMIT: f64 = 0.15;
/// Wall-time drift beyond this fails `--check` (exit 1).
const FAIL_LIMIT: f64 = 0.25;
/// Workloads whose baseline wall time is under this can warn but never
/// fail: on microsecond-scale kernels a 25 % relative drift is
/// scheduler noise, not a regression. The gate's teeth are the
/// millisecond-plus workloads (the ring ΔT measurement above all).
const FAIL_FLOOR_S: f64 = 1e-3;

/// Times `f` over enough repetitions to fill ~50 ms and returns the
/// per-call mean in seconds.
fn time_per_call<O>(mut f: impl FnMut() -> O) -> f64 {
    // Warm up and estimate a single call.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.05 / once) as usize).clamp(1, 100_000);
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn random_dense(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = GaussianRng::seed_from(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = rng.standard_normal();
        }
        a[(i, i)] += n as f64;
    }
    let b: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
    (a, b)
}

/// Tridiagonal conductance block plus a voltage-source border: the
/// sparsity pattern of an RC-ladder MNA system.
fn ladder_triplets(n: usize, g: f64) -> (Vec<(usize, usize, f64)>, usize) {
    let dim = n + 1;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 2.0 * g));
        if i + 1 < n {
            t.push((i, i + 1, -g));
            t.push((i + 1, i, -g));
        }
    }
    t.push((0, n, 1.0));
    t.push((n, 0, 1.0));
    (t, dim)
}

/// Five-point conductance mesh (`rows x cols` grid Laplacian plus a
/// small ground leak per node) with a voltage-source border pinning the
/// corner node: the sparsity of a 2-D power-grid MNA system, and the
/// shape the staged kernel is built for — the border row has a
/// structural zero diagonal (BTF must match it off-diagonal) and the
/// grid interior rewards the fill-reducing ordering.
fn mesh_triplets(rows: usize, cols: usize, g: f64) -> (Vec<(usize, usize, f64)>, usize) {
    let dim = rows * cols + 1;
    let mut t = Vec::new();
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            t.push((id(r, c), id(r, c), 1e-9));
            for (nr, nc) in [(r + 1, c), (r, c + 1)] {
                if nr < rows && nc < cols {
                    let (a, b) = (id(r, c), id(nr, nc));
                    t.push((a, a, g));
                    t.push((b, b, g));
                    t.push((a, b, -g));
                    t.push((b, a, -g));
                }
            }
        }
    }
    t.push((0, dim - 1, 1.0));
    t.push((dim - 1, 0, 1.0));
    (t, dim)
}

fn rc_ladder(n: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::step(0.0, 1.0, 0.0));
    let mut prev = vin;
    for i in 0..n {
        let node = ckt.node(&format!("n{i}"));
        ckt.add_resistor(prev, node, 100.0);
        ckt.add_capacitor(node, Circuit::GROUND, 1e-14);
        prev = node;
    }
    ckt
}

fn stats_json(stats: &SolverStats) -> Json {
    Json::Obj(vec![
        (
            "steps_accepted".into(),
            Json::Num(stats.steps_accepted as f64),
        ),
        (
            "steps_rejected".into(),
            Json::Num(stats.steps_rejected as f64),
        ),
        (
            "newton_iterations".into(),
            Json::Num(stats.newton_iterations as f64),
        ),
        (
            "factorizations".into(),
            Json::Num(stats.factorizations as f64),
        ),
        (
            "symbolic_analyses".into(),
            Json::Num(stats.symbolic_analyses as f64),
        ),
        ("solves".into(), Json::Num(stats.solves as f64)),
        ("wall_seconds".into(), Json::Num(stats.wall_seconds)),
    ])
}

fn run_kernels() -> Vec<Json> {
    let mut out = Vec::new();
    println!("kernel timings (per call):");
    for n in [16usize, 64, 128] {
        let (a, b) = random_dense(n, 42);
        let dense = time_per_call(|| {
            let lu = LuFactors::factor(a.clone()).unwrap();
            lu.solve(&b).unwrap()
        });

        let (triplets, dim) = ladder_triplets(n, 1e-2);
        let sm = SparseMatrix::from_triplets(dim, &triplets);
        let rhs = vec![1.0; dim];
        let analyze = time_per_call(|| SparseLu::new(&sm).unwrap());
        let mut lu = SparseLu::new(&sm).unwrap();
        let refactor = time_per_call(|| {
            lu.refactor(&sm).unwrap();
            lu.solve(&rhs).unwrap()
        });

        println!(
            "  n={n:4}  dense_factor_solve {:.3e} s  sparse_analyze {:.3e} s  \
             sparse_refactor_solve {:.3e} s  ({:.1}x)",
            dense,
            analyze,
            refactor,
            dense / refactor
        );
        out.push(Json::Obj(vec![
            ("n".into(), Json::Num(n as f64)),
            ("dense_factor_solve_s".into(), Json::Num(dense)),
            ("sparse_analyze_s".into(), Json::Num(analyze)),
            ("sparse_refactor_solve_s".into(), Json::Num(refactor)),
        ]));
    }

    // KLU-scale meshes: the staged kernel (BTF + min-degree + scaling)
    // at power-grid sizes. Dense comparison at n=1000 only; at n=10000
    // a dense factor would be O(n^3) ~ minutes and 800 MB. Per-call
    // times here are tens of milliseconds, so a single ~50 ms timing
    // window holds only a few calls — take the best of three windows
    // to keep the regression gate out of scheduler noise.
    let best3 = |f: &mut dyn FnMut() -> f64| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
    for (rows, cols) in [(27usize, 37usize), (99, 101)] {
        let (triplets, dim) = mesh_triplets(rows, cols, 1e-2);
        let sm = SparseMatrix::from_triplets(dim, &triplets);
        let rhs = vec![1.0; dim];
        let analyze = best3(&mut || time_per_call(|| SparseLu::new(&sm).unwrap()));
        let mut lu = SparseLu::new(&sm).unwrap();
        let refactor = best3(&mut || {
            time_per_call(|| {
                lu.refactor(&sm).unwrap();
                lu.solve(&rhs).unwrap()
            })
        });
        let fill = lu.lu_nnz() as f64 / sm.nnz() as f64;

        let mut entry = vec![
            ("n".into(), Json::Num(dim as f64)),
            ("sparse_analyze_s".into(), Json::Num(analyze)),
            ("sparse_refactor_solve_s".into(), Json::Num(refactor)),
            ("fill_ratio".into(), Json::Num(fill)),
        ];
        if dim <= 1000 {
            let dense_a = sm.to_dense();
            let dense = best3(&mut || {
                time_per_call(|| {
                    let lu = LuFactors::factor(dense_a.clone()).unwrap();
                    lu.solve(&rhs).unwrap()
                })
            });
            println!(
                "  n={dim:5} (mesh {rows}x{cols})  dense_factor_solve {dense:.3e} s  \
                 sparse_analyze {analyze:.3e} s  sparse_refactor_solve {refactor:.3e} s  \
                 ({:.0}x, fill {fill:.2}x)",
                dense / refactor
            );
            entry.insert(1, ("dense_factor_solve_s".into(), Json::Num(dense)));
        } else {
            println!(
                "  n={dim:5} (mesh {rows}x{cols})  sparse_analyze {analyze:.3e} s  \
                 sparse_refactor_solve {refactor:.3e} s  (fill {fill:.2}x)"
            );
        }
        out.push(Json::Obj(entry));
    }
    out
}

fn run_transients() -> Vec<Json> {
    // Best of 3: these are single-run workloads (the sub-millisecond
    // ladders especially), and one scheduler hiccup would otherwise
    // blow through the regression gate. The work counters are
    // deterministic across repeats; only the wall time varies.
    const REPEATS: usize = 3;
    let mut out = Vec::new();
    println!("transient workloads (best of {REPEATS}):");
    for (name, step) in [
        ("rc_ladder_50_fixed", StepControl::Fixed),
        ("rc_ladder_50_adaptive", StepControl::adaptive()),
    ] {
        let ckt = rc_ladder(50);
        let spec = TransientSpec::new(1e-9, 1e-12).step_control(step);
        let stats = (0..REPEATS)
            .map(|_| ckt.transient(&spec).unwrap().stats())
            .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
            .expect("at least one repeat");
        println!("  {name}: {}", stats.summary());
        out.push(Json::Obj(vec![
            ("name".into(), Json::Str(name.to_owned())),
            ("stats".into(), stats_json(&stats)),
        ]));
    }

    // One ring ΔT measurement — the unit of work every experiment
    // repeats thousands of times.
    for (name, fixed) in [
        ("ring_delta_t_adaptive", false),
        ("ring_delta_t_fixed", true),
    ] {
        let bench = TestBench::fast(1);
        let mut opts = bench.opts_for(1.1);
        if fixed {
            opts = opts.fixed_step();
        }
        let stats = (0..REPEATS)
            .map(|_| {
                bench
                    .measure_delta_t_with(1.1, &[TsvFault::None], &[0], &Die::nominal(), &opts)
                    .expect("measurement succeeds")
                    .stats
            })
            .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
            .expect("at least one repeat");
        println!("  {name}: {}", stats.summary());
        out.push(Json::Obj(vec![
            ("name".into(), Json::Str(name.to_owned())),
            ("stats".into(), stats_json(&stats)),
        ]));
    }
    out
}

/// Throughput of the batched Monte-Carlo engine against the scalar
/// engine on the E3-shaped unit of work (one fault-free ring ΔT
/// measurement per die, process variation on): dies per second at
/// K = 1, 4, 8, 16, 32, 64 lanes, population == K (so refill never
/// fires — this isolates the SIMD engine itself; `run_batched_refill`
/// measures the scheduler). The committed numbers back the "Batched MC"
/// section of PERFORMANCE.md; the per-die wall times join the
/// regression set, and the K = 16/32 speedups are hard acceptance
/// gates under `--check` (see [`gate_speedups`]).
fn run_batched_vs_scalar() -> Vec<Json> {
    use rotsv::mc::{delta_t_population_with_engine, McEngine};
    use rotsv::variation::ProcessSpread;

    const REPEATS: usize = 3;
    let bench = TestBench::fast(1);
    let faults = [TsvFault::None];
    let spread = ProcessSpread::paper();
    let mut out = Vec::new();
    println!("batched vs scalar MC engine (ring ΔT per die, best of {REPEATS}):");
    for k in [1usize, 4, 8, 16, 32, 64] {
        let run = |engine: McEngine| -> f64 {
            (0..REPEATS)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(
                        delta_t_population_with_engine(
                            &bench,
                            1.1,
                            &faults,
                            &[0],
                            spread,
                            1007,
                            k,
                            engine,
                        )
                        .expect("population succeeds"),
                    );
                    t0.elapsed().as_secs_f64() / k as f64
                })
                .fold(f64::INFINITY, f64::min)
        };
        let scalar = run(McEngine::Scalar);
        let batched = run(McEngine::Batched { lanes: k });
        let speedup = scalar / batched;
        println!(
            "  k={k}: scalar {:.2} dies/s, batched {:.2} dies/s ({speedup:.2}x)",
            1.0 / scalar,
            1.0 / batched
        );
        out.push(Json::Obj(vec![
            ("k".into(), Json::Num(k as f64)),
            ("scalar_s_per_die".into(), Json::Num(scalar)),
            ("batched_s_per_die".into(), Json::Num(batched)),
            ("batched_speedup".into(), Json::Num(speedup)),
        ]));
    }
    out
}

/// Throughput of the refill queue against the chunked (no-refill)
/// scheduling on a population much larger than the lane count: 32 dies
/// streamed through K = 4, 8, 16 lanes. Chunked batches decay toward
/// one busy lane as each batch drains; refill keeps every lane seated
/// until the queue empties, so the gap widens with K. Also measures the
/// scalar→batched crossover population size that `--engine auto` uses
/// (the smallest population the batched queue already wins).
fn run_batched_refill() -> Json {
    use rotsv::mc::{delta_t_population_with_engine, McEngine};
    use rotsv::variation::ProcessSpread;

    const REPEATS: usize = 3;
    const POPULATION: usize = 32;
    let bench = TestBench::fast(1);
    let faults = [TsvFault::None];
    let spread = ProcessSpread::paper();
    let time_pop = |samples: usize, engine: McEngine| -> f64 {
        (0..REPEATS)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(
                    delta_t_population_with_engine(
                        &bench,
                        1.1,
                        &faults,
                        &[0],
                        spread,
                        1007,
                        samples,
                        engine,
                    )
                    .expect("population succeeds"),
                );
                t0.elapsed().as_secs_f64() / samples as f64
            })
            .fold(f64::INFINITY, f64::min)
    };

    let mut entries = Vec::new();
    println!("refill vs chunked batching ({POPULATION} dies, best of {REPEATS}):");
    for k in [4usize, 8, 16] {
        let refill = time_pop(POPULATION, McEngine::Batched { lanes: k });
        let chunked = time_pop(POPULATION, McEngine::BatchedChunked { lanes: k });
        let speedup = chunked / refill;
        println!(
            "  k={k}: refill {:.2} dies/s, chunked {:.2} dies/s ({speedup:.2}x)",
            1.0 / refill,
            1.0 / chunked
        );
        entries.push(Json::Obj(vec![
            ("k".into(), Json::Num(k as f64)),
            ("refill_s_per_die".into(), Json::Num(refill)),
            ("chunked_s_per_die".into(), Json::Num(chunked)),
            ("refill_speedup".into(), Json::Num(speedup)),
        ]));
    }

    // Crossover: the smallest population where the batched queue (at
    // `auto`'s lane choice) beats the scalar engine. Everything at and
    // above it runs batched under `--engine auto`.
    let mut crossover = POPULATION;
    for n in [1usize, 2, 3, 4, 6, 8] {
        let scalar = time_pop(n, McEngine::Scalar);
        let batched = time_pop(n, McEngine::Batched { lanes: n.min(16) });
        if batched <= scalar {
            crossover = n;
            break;
        }
    }
    println!("  scalar->batched crossover: {crossover} samples");

    // Auto lane table: for populations at and above each wide-K width,
    // which lane count actually wins? Measured, not assumed — the rows
    // are `[population_floor, lanes]` pairs that `McEngine::Auto` loads
    // back through `rotsv::mc::load_measured_tuning` (last row whose
    // floor ≤ population wins). Small populations keep K = 16; wider K
    // only earns a row where it measures faster.
    let mut lane_table: Vec<(usize, usize)> = vec![(1, 16)];
    println!("  auto lane table (best of {REPEATS} per cell):");
    for pop in [32usize, 64, 96] {
        let mut best = (f64::INFINITY, 16usize);
        for lanes in [16usize, 32, 64] {
            if lanes > pop {
                continue;
            }
            let t = time_pop(pop, McEngine::Batched { lanes });
            if t < best.0 {
                best = (t, lanes);
            }
        }
        println!(
            "    population {pop}: lanes {} ({:.2} dies/s)",
            best.1,
            1.0 / best.0
        );
        if best.1 != lane_table.last().expect("seeded").1 {
            lane_table.push((pop, best.1));
        }
    }
    let table_json = Json::Arr(
        lane_table
            .iter()
            .map(|&(floor, lanes)| {
                Json::Arr(vec![Json::Num(floor as f64), Json::Num(lanes as f64)])
            })
            .collect(),
    );

    Json::Obj(vec![
        ("entries".into(), Json::Arr(entries)),
        ("crossover_samples".into(), Json::Num(crossover as f64)),
        ("auto_lane_table".into(), table_json),
    ])
}

/// Refill vs chunked scheduling on a *runtime-heterogeneous* population:
/// a leakage-ladder fault sweep where roughly a quarter of the dies are
/// hard-stuck (300/500 Ω) and retire their lane within a few periods,
/// while the rest oscillate to full count. Chunked cohorts hold the
/// freed lanes idle until the whole batch drains; the refill queue
/// reseats them immediately, so this is the population shape where
/// cohort scheduling actually pays (the fault-free rows in
/// `batched_refill` have nothing to reseat). The `mc.dt_drag` histogram
/// (accepted dt over the smallest concurrently-trialled dt, per
/// lane-step) quantifies the other cohort cost: how hard the slowest
/// lane drags its cohort-mates' steps.
fn run_batched_refill_hetero() -> Json {
    use rotsv::mc::{delta_t_fault_sweep_with_engine, McEngine};
    use rotsv::num::units::Ohms;
    use rotsv::variation::ProcessSpread;

    const REPEATS: usize = 3;
    const POPULATION: usize = 192;
    // Two stuck rungs (300/500 Ω) in every eight dies; the rest span
    // weak leaks to effectively fault-free. One topology, so the whole
    // sweep shares a symbolic analysis and streams through one queue.
    const LADDER: [f64; 8] = [300.0, 1e5, 1e6, 500.0, 1e7, 1e8, 1e9, 5e6];
    let bench = TestBench::fast(1);
    let spread = ProcessSpread::paper();
    let per_die_faults: Vec<Vec<TsvFault>> = (0..POPULATION)
        .map(|i| {
            vec![TsvFault::Leakage {
                r: Ohms(LADDER[i % LADDER.len()]),
            }]
        })
        .collect();
    let run = |engine: McEngine| {
        delta_t_fault_sweep_with_engine(&bench, 1.1, &per_die_faults, &[0], spread, 1007, engine)
            .expect("fault sweep succeeds")
    };
    let time_sweep = |engine: McEngine| -> f64 {
        (0..REPEATS)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(run(engine));
                t0.elapsed().as_secs_f64() / POPULATION as f64
            })
            .fold(f64::INFINITY, f64::min)
    };
    // One untimed instrumented run per engine for the dt_drag shape.
    let drag = |engine: McEngine| -> Json {
        rotsv_obs::set_metrics(true);
        rotsv_obs::reset();
        std::hint::black_box(run(engine));
        let h = rotsv_obs::histogram("mc.dt_drag").summary();
        rotsv_obs::set_metrics(false);
        rotsv_obs::reset();
        Json::Obj(vec![
            ("steps".into(), Json::Num(h.count as f64)),
            ("mean".into(), Json::Num(h.mean())),
            ("p50".into(), Json::Num(h.quantile(0.5))),
            ("p90".into(), Json::Num(h.quantile(0.9))),
        ])
    };

    let stuck = run(McEngine::Batched { lanes: 16 }).stuck_count;
    let mut entries = Vec::new();
    println!(
        "heterogeneous refill vs chunked ({POPULATION}-die leakage ladder, \
         {stuck} stuck, best of {REPEATS}):"
    );
    for k in [16usize, 32, 64] {
        let refill = time_sweep(McEngine::Batched { lanes: k });
        let chunked = time_sweep(McEngine::BatchedChunked { lanes: k });
        let speedup = chunked / refill;
        println!(
            "  k={k}: refill {:.2} dies/s, chunked {:.2} dies/s ({speedup:.2}x)",
            1.0 / refill,
            1.0 / chunked
        );
        entries.push(Json::Obj(vec![
            ("k".into(), Json::Num(k as f64)),
            ("refill_s_per_die".into(), Json::Num(refill)),
            ("chunked_s_per_die".into(), Json::Num(chunked)),
            ("refill_speedup".into(), Json::Num(speedup)),
            (
                "dt_drag_refill".into(),
                drag(McEngine::Batched { lanes: k }),
            ),
            (
                "dt_drag_chunked".into(),
                drag(McEngine::BatchedChunked { lanes: k }),
            ),
        ]));
    }
    Json::Obj(vec![
        ("population".into(), Json::Num(POPULATION as f64)),
        ("stuck_count".into(), Json::Num(stuck as f64)),
        ("entries".into(), Json::Arr(entries)),
    ])
}

/// Measures the instrumentation cost of the `rotsv-obs` layer on the
/// ring ΔT workload: once with tracing and metrics fully disabled (the
/// default — every span/observe call is one relaxed atomic load) and
/// once with both enabled. The disabled ratio is the number the 2 %
/// acceptance budget in ISSUE tracking refers to.
fn run_obs_overhead() -> Json {
    let bench = TestBench::fast(1);
    let opts = bench.opts_for(1.1);
    let one = || {
        bench
            .measure_delta_t_with(1.1, &[TsvFault::None], &[0], &Die::nominal(), &opts)
            .expect("measurement succeeds")
    };
    let best_of = |runs: usize, f: &dyn Fn() -> f64| -> f64 {
        (0..runs).map(|_| f()).fold(f64::INFINITY, f64::min)
    };

    rotsv_obs::set_tracing(false);
    rotsv_obs::set_metrics(false);
    let disabled = best_of(3, &|| {
        let t0 = Instant::now();
        std::hint::black_box(one());
        t0.elapsed().as_secs_f64()
    });

    rotsv_obs::set_tracing(true);
    rotsv_obs::set_metrics(true);
    let enabled = best_of(3, &|| {
        rotsv_obs::reset();
        let t0 = Instant::now();
        std::hint::black_box(one());
        t0.elapsed().as_secs_f64()
    });
    rotsv_obs::set_tracing(false);
    rotsv_obs::set_metrics(false);
    rotsv_obs::reset();

    println!(
        "obs overhead (ring ΔT, best of 3): disabled {disabled:.4} s, \
         enabled {enabled:.4} s ({:+.1} %)",
        (enabled / disabled - 1.0) * 100.0
    );
    Json::Obj(vec![
        (
            "workload".into(),
            Json::Str("ring_delta_t_adaptive".to_owned()),
        ),
        ("disabled_s".into(), Json::Num(disabled)),
        ("enabled_s".into(), Json::Num(enabled)),
        (
            "enabled_over_disabled".into(),
            Json::Num(enabled / disabled),
        ),
    ])
}

/// Measures the event-ring cost on the batched Monte-Carlo engine: an
/// 8-die population through 4 refill lanes, once with the ring (and
/// every other switch) disabled — the default shipping configuration,
/// where each feed point is one relaxed load and a branch — and once
/// with events + tracing enabled so lane seat/retire/step events and
/// mirrored spans actually hit the ring. `disabled_s` is the number the
/// 1 % disabled-overhead budget gates across commits (it lands in the
/// regression set via [`wall_times`]); the enabled ratio is
/// informational.
fn run_ring_overhead() -> Json {
    use rotsv::mc::{delta_t_population_with_engine, McEngine};
    use rotsv::variation::ProcessSpread;

    const POPULATION: usize = 8;
    let bench = TestBench::fast(1);
    let faults = [TsvFault::None];
    let spread = ProcessSpread::paper();
    let one = || {
        std::hint::black_box(
            delta_t_population_with_engine(
                &bench,
                1.1,
                &faults,
                &[0],
                spread,
                1007,
                POPULATION,
                McEngine::Batched { lanes: 4 },
            )
            .expect("population succeeds"),
        );
    };
    let best_of = |runs: usize, f: &dyn Fn() -> f64| -> f64 {
        (0..runs).map(|_| f()).fold(f64::INFINITY, f64::min)
    };

    rotsv_obs::set_tracing(false);
    rotsv_obs::set_metrics(false);
    rotsv_obs::set_events(false);
    let disabled = best_of(3, &|| {
        let t0 = Instant::now();
        one();
        t0.elapsed().as_secs_f64()
    });

    rotsv_obs::set_tracing(true);
    rotsv_obs::set_events(true);
    let enabled = best_of(3, &|| {
        rotsv_obs::reset();
        let t0 = Instant::now();
        one();
        t0.elapsed().as_secs_f64()
    });
    let recorded = rotsv_obs::event_ring().snapshot().len();
    let dropped = rotsv_obs::event_ring().dropped();
    rotsv_obs::set_tracing(false);
    rotsv_obs::set_events(false);
    rotsv_obs::reset();

    println!(
        "event-ring overhead (batched population, best of 3): disabled {disabled:.4} s, \
         enabled {enabled:.4} s ({:+.1} %), {recorded} events recorded, {dropped} dropped",
        (enabled / disabled - 1.0) * 100.0
    );
    Json::Obj(vec![
        (
            "workload".into(),
            Json::Str("batched_population_events".to_owned()),
        ),
        ("disabled_s".into(), Json::Num(disabled)),
        ("enabled_s".into(), Json::Num(enabled)),
        (
            "enabled_over_disabled".into(),
            Json::Num(enabled / disabled),
        ),
        ("events_recorded".into(), Json::Num(recorded as f64)),
        ("ring_dropped".into(), Json::Num(dropped as f64)),
    ])
}

/// Measures the campaign ledger-write overhead: seconds per appended
/// JSONL entry (write + flush, the durability a resumable campaign
/// pays per sample) against the seconds one ring ΔT sample costs — the
/// unit of work each append amortizes over. PERFORMANCE.md quotes the
/// ratio; informational, not part of the regression set (it is a
/// filesystem number, not a solver number).
fn run_ledger_overhead() -> Json {
    let entry = LedgerEntry {
        experiment: "e3".into(),
        index: 0,
        seed: 1007,
        git_rev: "0123456789abcdef0123456789abcdef01234567".into(),
        status: SampleStatus::Ok,
        payload: value_payload("vdd=1.10 open-1k", 4.356e-10),
    };
    let path = std::env::temp_dir().join("rotsv_bench_ledger.jsonl");
    let _ = std::fs::remove_file(&path);
    let mut writer = LedgerWriter::open(&path, 0).expect("open temp ledger");
    let append = time_per_call(|| writer.append(&entry).expect("append"));
    drop(writer);
    let _ = std::fs::remove_file(&path);

    let bench = TestBench::fast(1);
    let opts = bench.opts_for(1.1);
    let t0 = Instant::now();
    std::hint::black_box(
        bench
            .measure_delta_t_with(1.1, &[TsvFault::None], &[0], &Die::nominal(), &opts)
            .expect("measurement succeeds"),
    );
    let sample = t0.elapsed().as_secs_f64();

    println!(
        "ledger overhead: {append:.3e} s per appended entry vs {sample:.3e} s per ring ΔT \
         sample ({:.4} % of a sample)",
        append / sample * 100.0
    );
    Json::Obj(vec![
        ("append_s".into(), Json::Num(append)),
        ("ring_delta_t_sample_s".into(), Json::Num(sample)),
        ("append_over_sample".into(), Json::Num(append / sample)),
    ])
}

/// Drives the resident screening server with the load generator and
/// reports sustained verdict throughput plus client-observed latency
/// percentiles, at 1, 2, and 4 worker threads (lanes fixed at 4). The
/// servers run in-process on ephemeral ports; the 2-worker shape (the
/// CI smoke configuration) provides the top-level fields the regression
/// gate tracks, and the `scaling` rows record how dies/s responds to
/// worker count so server-mode throughput is no longer a
/// single-core-only number.
fn run_server_loadgen() -> Json {
    use rotsv_server::{loadgen, Server, ServerConfig};
    let mut scaling = Vec::new();
    let mut baseline_fields: Option<Vec<(String, Json)>> = None;
    for workers in [1usize, 2, 4] {
        let server = Server::start(ServerConfig {
            lanes: 4,
            workers,
            ..ServerConfig::default()
        })
        .expect("start in-process server");
        let config = loadgen::LoadgenConfig {
            addr: server.addr().to_string(),
            jobs: 6,
            dies_per_job: 3,
            interarrival: std::time::Duration::from_millis(10),
            n_segments_mix: vec![1, 2],
            vdd: 1.1,
            seed: 1007,
            fast: true,
        };
        let report = loadgen::run(&config).expect("loadgen run");
        server.stop().expect("server drains");
        assert_eq!(report.rejected, 0, "default queue must absorb the load");
        assert_eq!(
            report.total_verdicts,
            config.jobs * config.dies_per_job,
            "every submitted die must produce a verdict"
        );
        println!(
            "server loadgen (workers={workers}, lanes=4): {} dies in {:.2} s \
             ({:.1} dies/s), verdict latency p50 {:.3} s / p95 {:.3} s / p99 {:.3} s",
            report.total_verdicts,
            report.wall_s,
            report.dies_per_s,
            report.p50_s,
            report.p95_s,
            report.p99_s
        );
        let fields = vec![
            ("jobs".to_string(), Json::Num(config.jobs as f64)),
            (
                "dies_per_job".to_string(),
                Json::Num(config.dies_per_job as f64),
            ),
            (
                "total_verdicts".to_string(),
                Json::Num(report.total_verdicts as f64),
            ),
            ("rejected".to_string(), Json::Num(report.rejected as f64)),
            ("wall_s".to_string(), Json::Num(report.wall_s)),
            ("dies_per_s".to_string(), Json::Num(report.dies_per_s)),
            (
                "s_per_die".to_string(),
                Json::Num(report.wall_s / report.total_verdicts.max(1) as f64),
            ),
            ("p50_s".to_string(), Json::Num(report.p50_s)),
            ("p95_s".to_string(), Json::Num(report.p95_s)),
            ("p99_s".to_string(), Json::Num(report.p99_s)),
        ];
        let mut row = vec![
            ("workers".to_string(), Json::Num(workers as f64)),
            ("lanes".to_string(), Json::Num(4.0)),
        ];
        row.extend(fields.iter().cloned());
        scaling.push(Json::Obj(row));
        if workers == 2 {
            baseline_fields = Some(fields);
        }
    }
    let mut out = baseline_fields.expect("workers=2 row ran");
    out.push(("workers".to_string(), Json::Num(2.0)));
    out.push(("lanes".to_string(), Json::Num(4.0)));
    out.push(("scaling".to_string(), Json::Arr(scaling)));
    Json::Obj(out)
}

/// Flattens a benchmark document into `(workload, wall_seconds)` pairs
/// usable for regression comparison.
fn wall_times(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(kernels) = doc.get("kernels").and_then(Json::as_arr) {
        for k in kernels {
            let Some(n) = k.get("n").and_then(Json::as_f64) else {
                continue;
            };
            for key in [
                "dense_factor_solve_s",
                "sparse_analyze_s",
                "sparse_refactor_solve_s",
            ] {
                if let Some(v) = k.get(key).and_then(Json::as_f64) {
                    out.push((format!("kernel n={n} {key}"), v));
                }
            }
        }
    }
    if let Some(transients) = doc.get("transients").and_then(Json::as_arr) {
        for t in transients {
            let name = t.get("name").and_then(Json::as_str).unwrap_or("?");
            if let Some(w) = t
                .get("stats")
                .and_then(|s| s.get("wall_seconds"))
                .and_then(Json::as_f64)
            {
                out.push((format!("transient {name}"), w));
            }
        }
    }
    if let Some(entries) = doc.get("batched_vs_scalar").and_then(Json::as_arr) {
        for e in entries {
            let Some(k) = e.get("k").and_then(Json::as_f64) else {
                continue;
            };
            for key in ["scalar_s_per_die", "batched_s_per_die"] {
                if let Some(v) = e.get(key).and_then(Json::as_f64) {
                    out.push((format!("mc k={k} {key}"), v));
                }
            }
        }
    }
    if let Some(entries) = doc
        .get("batched_refill")
        .and_then(|r| r.get("entries"))
        .and_then(Json::as_arr)
    {
        for e in entries {
            let Some(k) = e.get("k").and_then(Json::as_f64) else {
                continue;
            };
            for key in ["refill_s_per_die", "chunked_s_per_die"] {
                if let Some(v) = e.get(key).and_then(Json::as_f64) {
                    out.push((format!("mc refill k={k} {key}"), v));
                }
            }
        }
    }
    if let Some(entries) = doc
        .get("batched_refill_hetero")
        .and_then(|r| r.get("entries"))
        .and_then(Json::as_arr)
    {
        for e in entries {
            let Some(k) = e.get("k").and_then(Json::as_f64) else {
                continue;
            };
            for key in ["refill_s_per_die", "chunked_s_per_die"] {
                if let Some(v) = e.get(key).and_then(Json::as_f64) {
                    out.push((format!("mc hetero k={k} {key}"), v));
                }
            }
        }
    }
    // The ring's disabled path is a budgeted contract (the feed points
    // ride in the engine's hot loop), so it joins the regression set.
    if let Some(v) = doc
        .get("ring_overhead")
        .and_then(|r| r.get("disabled_s"))
        .and_then(Json::as_f64)
    {
        out.push(("ring_overhead disabled_s".into(), v));
    }
    // Server-mode screening: per-die service time and the latency tail
    // are both lower-is-better, so they slot into the same gate.
    if let Some(lg) = doc.get("server_loadgen") {
        for key in ["s_per_die", "p50_s", "p95_s", "p99_s"] {
            if let Some(v) = lg.get(key).and_then(Json::as_f64) {
                out.push((format!("server_loadgen {key}"), v));
            }
        }
    }
    out
}

/// Hard throughput floors on the freshly measured document (not the
/// baseline): the wide-lane SIMD engine must hold K = 16 at ≥ 2.94×
/// scalar (the level autovectorization already reached) and K = 32 at
/// ≥ 3.3×, and on the heterogeneous population the refill queue must
/// beat chunked cohorts (> 1.0×) at every K ≥ 16. Returns failure
/// lines; empty means all gates hold.
fn gate_speedups(doc: &Json) -> Vec<String> {
    let mut failures = Vec::new();
    let mut check = |what: &str, got: Option<f64>, floor: f64| match got {
        Some(v) if v >= floor => println!("  {what}: {v:.2}x (floor {floor}x) ok"),
        Some(v) => failures.push(format!("{what}: {v:.2}x below the {floor}x floor")),
        None => failures.push(format!("{what}: missing from results")),
    };
    println!("\nthroughput gates:");
    let speedup_at = |k: f64| {
        doc.get("batched_vs_scalar")
            .and_then(Json::as_arr)?
            .iter()
            .find(|e| e.get("k").and_then(Json::as_f64) == Some(k))?
            .get("batched_speedup")
            .and_then(Json::as_f64)
    };
    check("batched_vs_scalar k=16", speedup_at(16.0), 2.94);
    check("batched_vs_scalar k=32", speedup_at(32.0), 3.3);
    if let Some(entries) = doc
        .get("batched_refill_hetero")
        .and_then(|r| r.get("entries"))
        .and_then(Json::as_arr)
    {
        for e in entries {
            let Some(k) = e.get("k").and_then(Json::as_f64) else {
                continue;
            };
            if k >= 16.0 {
                // K = 64 sits near unity on single-core hosts (the width
                // itself is past the cache sweet spot — the auto lane
                // table picks 32), so its floor carries a noise margin;
                // the widths auto actually selects are gated hard.
                let floor = if k >= 64.0 { 0.9 } else { 1.0 };
                check(
                    &format!("batched_refill_hetero k={k}"),
                    e.get("refill_speedup").and_then(Json::as_f64),
                    floor,
                );
            }
        }
    } else {
        failures.push("batched_refill_hetero: section missing".into());
    }
    failures
}

/// Workloads whose wall time drifted beyond the warn/fail thresholds.
#[derive(Default)]
struct Regressions {
    /// Beyond [`WARN_LIMIT`] but within [`FAIL_LIMIT`]: reported, never
    /// fatal.
    warnings: Vec<String>,
    /// Beyond [`FAIL_LIMIT`]: fails `--check`.
    failures: Vec<String>,
}

/// Compares current results against the committed baseline.
fn check_regressions(current: &Json, baseline: &Json) -> Regressions {
    let base: std::collections::BTreeMap<String, f64> = wall_times(baseline).into_iter().collect();
    let mut out = Regressions::default();
    println!(
        "\nregression check vs BENCH_solver.json (warn {:.0} %, fail {:.0} %):",
        WARN_LIMIT * 100.0,
        FAIL_LIMIT * 100.0
    );
    for (name, now) in wall_times(current) {
        let Some(&then) = base.get(&name) else {
            println!("  {name}: new workload (no baseline)");
            continue;
        };
        if then <= 0.0 {
            continue;
        }
        let delta = now / then - 1.0;
        let line = format!(
            "{name}: {then:.3e} s -> {now:.3e} s ({delta:+.1}%)",
            delta = delta * 100.0
        );
        let verdict = if delta > FAIL_LIMIT && then >= FAIL_FLOOR_S {
            out.failures.push(line);
            "REGRESSED"
        } else if delta > WARN_LIMIT {
            out.warnings.push(line);
            if then < FAIL_FLOOR_S {
                "warn (sub-ms workload: never fatal)"
            } else {
                "warn"
            }
        } else {
            "ok"
        };
        println!(
            "  {name}: {then:.3e} s -> {now:.3e} s ({:+.1} %) {verdict}",
            delta * 100.0
        );
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let warn_only = args.iter().any(|a| a == "--warn");
    if let Some(bad) = args.iter().find(|a| {
        a.as_str() != "--check" && a.as_str() != "--warn" && a.as_str() != "--hetero-probe"
    }) {
        eprintln!("unknown argument: {bad}");
        eprintln!("usage: bench_solver [--check [--warn]]");
        std::process::exit(2);
    }

    if args.iter().any(|a| a == "--hetero-probe") {
        run_batched_refill_hetero();
        return;
    }
    let kernels = run_kernels();
    let transients = run_transients();
    let batched = run_batched_vs_scalar();
    let refill = run_batched_refill();
    let refill_hetero = run_batched_refill_hetero();
    let obs_overhead = run_obs_overhead();
    let ring_overhead = run_ring_overhead();
    let ledger_overhead = run_ledger_overhead();
    let server_loadgen = run_server_loadgen();
    let doc = Json::Obj(vec![
        ("kernels".into(), Json::Arr(kernels)),
        ("transients".into(), Json::Arr(transients)),
        ("batched_vs_scalar".into(), Json::Arr(batched)),
        ("batched_refill".into(), refill),
        ("batched_refill_hetero".into(), refill_hetero),
        ("obs_overhead".into(), obs_overhead),
        ("ring_overhead".into(), ring_overhead),
        ("ledger_overhead".into(), ledger_overhead),
        ("server_loadgen".into(), server_loadgen),
    ]);

    let gate_failures = gate_speedups(&doc);
    for g in &gate_failures {
        eprintln!("throughput gate failed: {g}");
    }

    if check {
        let baseline = std::fs::read_to_string("BENCH_solver.json")
            .map_err(|e| format!("cannot read BENCH_solver.json: {e}"))
            .and_then(|t| rotsv_obs::json::parse(&t));
        match baseline {
            Ok(base) => {
                let regressions = check_regressions(&doc, &base);
                for r in &regressions.warnings {
                    eprintln!("warning (>{:.0} %): {r}", WARN_LIMIT * 100.0);
                }
                if regressions.failures.is_empty() && gate_failures.is_empty() {
                    println!(
                        "no wall-time regressions beyond {:.0} % ({} warnings), \
                         all throughput gates hold",
                        FAIL_LIMIT * 100.0,
                        regressions.warnings.len()
                    );
                } else {
                    if !regressions.failures.is_empty() {
                        eprintln!("wall-time regressions beyond {:.0} %:", FAIL_LIMIT * 100.0);
                        for r in &regressions.failures {
                            eprintln!("  {r}");
                        }
                    }
                    if !warn_only {
                        std::process::exit(1);
                    }
                    eprintln!("(--warn: not failing)");
                }
            }
            Err(e) => {
                eprintln!("cannot compare: {e}");
                if !warn_only {
                    std::process::exit(1);
                }
            }
        }
    } else {
        std::fs::write("BENCH_solver.json", doc.render_pretty() + "\n")
            .expect("write BENCH_solver.json");
        println!("wrote BENCH_solver.json");
    }
}
