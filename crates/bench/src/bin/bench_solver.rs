//! Emits `BENCH_solver.json`: wall-clock timings of the solver kernels
//! (dense LU, sparse analyze/refactor/solve) plus end-to-end transient
//! runs with their [`SolverStats`] work counters, for both step
//! controllers. Run with `cargo run --release -p rotsv-bench --bin
//! bench_solver` from the repo root; PERFORMANCE.md quotes its output.

use std::fmt::Write as _;
use std::time::Instant;

use rotsv::num::linsolve::LuFactors;
use rotsv::num::matrix::Matrix;
use rotsv::num::rng::GaussianRng;
use rotsv::num::sparse::{SolverStats, SparseLu, SparseMatrix};
use rotsv::spice::{Circuit, SourceWaveform, StepControl, TransientSpec};
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

/// Times `f` over enough repetitions to fill ~50 ms and returns the
/// per-call mean in seconds.
fn time_per_call<O>(mut f: impl FnMut() -> O) -> f64 {
    // Warm up and estimate a single call.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.05 / once) as usize).clamp(1, 100_000);
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn random_dense(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = GaussianRng::seed_from(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = rng.standard_normal();
        }
        a[(i, i)] += n as f64;
    }
    let b: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
    (a, b)
}

/// Tridiagonal conductance block plus a voltage-source border: the
/// sparsity pattern of an RC-ladder MNA system.
fn ladder_triplets(n: usize, g: f64) -> (Vec<(usize, usize, f64)>, usize) {
    let dim = n + 1;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 2.0 * g));
        if i + 1 < n {
            t.push((i, i + 1, -g));
            t.push((i + 1, i, -g));
        }
    }
    t.push((0, n, 1.0));
    t.push((n, 0, 1.0));
    (t, dim)
}

fn rc_ladder(n: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::step(0.0, 1.0, 0.0));
    let mut prev = vin;
    for i in 0..n {
        let node = ckt.node(&format!("n{i}"));
        ckt.add_resistor(prev, node, 100.0);
        ckt.add_capacitor(node, Circuit::GROUND, 1e-14);
        prev = node;
    }
    ckt
}

fn json_stats(out: &mut String, stats: &SolverStats) {
    let _ = write!(
        out,
        "{{\"steps_accepted\": {}, \"steps_rejected\": {}, \"newton_iterations\": {}, \
         \"factorizations\": {}, \"symbolic_analyses\": {}, \"solves\": {}, \
         \"wall_seconds\": {:.6}}}",
        stats.steps_accepted,
        stats.steps_rejected,
        stats.newton_iterations,
        stats.factorizations,
        stats.symbolic_analyses,
        stats.solves,
        stats.wall_seconds,
    );
}

fn main() {
    let mut kernels = String::new();

    println!("kernel timings (per call):");
    for n in [16usize, 64, 128] {
        let (a, b) = random_dense(n, 42);
        let dense = time_per_call(|| {
            let lu = LuFactors::factor(a.clone()).unwrap();
            lu.solve(&b).unwrap()
        });

        let (triplets, dim) = ladder_triplets(n, 1e-2);
        let sm = SparseMatrix::from_triplets(dim, &triplets);
        let rhs = vec![1.0; dim];
        let analyze = time_per_call(|| SparseLu::new(&sm).unwrap());
        let mut lu = SparseLu::new(&sm).unwrap();
        let refactor = time_per_call(|| {
            lu.refactor(&sm).unwrap();
            lu.solve(&rhs).unwrap()
        });

        println!(
            "  n={n:4}  dense_factor_solve {:.3e} s  sparse_analyze {:.3e} s  \
             sparse_refactor_solve {:.3e} s  ({:.1}x)",
            dense,
            analyze,
            refactor,
            dense / refactor
        );
        let _ = writeln!(
            kernels,
            "    {{\"n\": {n}, \"dense_factor_solve_s\": {dense:.3e}, \
             \"sparse_analyze_s\": {analyze:.3e}, \
             \"sparse_refactor_solve_s\": {refactor:.3e}}},"
        );
    }
    let kernels = kernels.trim_end().trim_end_matches(',').to_string();

    let mut transients = String::new();
    println!("transient workloads:");
    for (name, step) in [
        ("rc_ladder_50_fixed", StepControl::Fixed),
        ("rc_ladder_50_adaptive", StepControl::adaptive()),
    ] {
        let ckt = rc_ladder(50);
        let spec = TransientSpec::new(1e-9, 1e-12).step_control(step);
        let t0 = Instant::now();
        let res = ckt.transient(&spec).unwrap();
        let wall = t0.elapsed().as_secs_f64();
        let stats = res.stats();
        println!("  {name}: {} ({wall:.3} s elapsed)", stats.summary());
        let _ = write!(transients, "    {{\"name\": \"{name}\", \"stats\": ");
        json_stats(&mut transients, &stats);
        let _ = writeln!(transients, "}},");
    }

    // One ring ΔT measurement — the unit of work every experiment
    // repeats thousands of times.
    for (name, fixed) in [
        ("ring_delta_t_adaptive", false),
        ("ring_delta_t_fixed", true),
    ] {
        let bench = TestBench::fast(1);
        let mut opts = bench.opts_for(1.1);
        if fixed {
            opts = opts.fixed_step();
        }
        let t0 = Instant::now();
        let m = bench
            .measure_delta_t_with(1.1, &[TsvFault::None], &[0], &Die::nominal(), &opts)
            .expect("measurement succeeds");
        let wall = t0.elapsed().as_secs_f64();
        println!("  {name}: {} ({wall:.3} s elapsed)", m.stats.summary());
        let _ = write!(transients, "    {{\"name\": \"{name}\", \"stats\": ");
        json_stats(&mut transients, &m.stats);
        let _ = writeln!(transients, "}},");
    }
    let transients = transients.trim_end().trim_end_matches(',').to_string();

    let json = format!(
        "{{\n  \"kernels\": [\n{kernels}\n  ],\n  \"transients\": [\n{transients}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_solver.json", &json).expect("write BENCH_solver.json");
    println!("wrote BENCH_solver.json");
}
