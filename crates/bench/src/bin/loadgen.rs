//! Standalone load generator for the screening daemon.
//!
//! Drives a server at a fixed arrival rate and prints sustained
//! dies/sec plus client-observed verdict-latency percentiles as a
//! JSON report on stdout. Point it at a running daemon with `--addr`,
//! or omit the flag to benchmark an in-process server (the
//! configuration `bench_solver` gates on).
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--jobs N] [--dies N]
//!         [--interarrival-ms MS] [--mix N,N,...] [--vdd V] [--seed S]
//! ```

use std::time::Duration;

use rotsv_obs::Json;
use rotsv_server::loadgen::{run, LoadgenConfig};
use rotsv_server::{Server, ServerConfig};

fn parse_args(args: &[String]) -> Result<(Option<String>, LoadgenConfig), String> {
    let mut addr: Option<String> = None;
    let mut config = LoadgenConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--jobs" => {
                config.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--dies" => {
                config.dies_per_job = value("--dies")?
                    .parse()
                    .map_err(|e| format!("--dies: {e}"))?;
            }
            "--interarrival-ms" => {
                let ms: u64 = value("--interarrival-ms")?
                    .parse()
                    .map_err(|e| format!("--interarrival-ms: {e}"))?;
                config.interarrival = Duration::from_millis(ms);
            }
            "--mix" => {
                config.n_segments_mix = value("--mix")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--mix: {e}")))
                    .collect::<Result<_, _>>()?;
                if config.n_segments_mix.is_empty() {
                    return Err("--mix needs at least one ring size".into());
                }
            }
            "--vdd" => {
                config.vdd = value("--vdd")?.parse().map_err(|e| format!("--vdd: {e}"))?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok((addr, config))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, mut config) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    // No --addr: benchmark a private in-process server.
    let server = if let Some(addr) = addr {
        config.addr = addr;
        None
    } else {
        let server = Server::start(ServerConfig {
            lanes: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("start in-process server");
        config.addr = server.addr().to_string();
        Some(server)
    };
    let report = match run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };
    if let Some(server) = server {
        server.stop().expect("server drains");
    }
    let doc = Json::Obj(vec![
        ("jobs".into(), Json::Num(config.jobs as f64)),
        ("dies_per_job".into(), Json::Num(config.dies_per_job as f64)),
        (
            "total_verdicts".into(),
            Json::Num(report.total_verdicts as f64),
        ),
        ("rejected".into(), Json::Num(report.rejected as f64)),
        ("wall_s".into(), Json::Num(report.wall_s)),
        ("dies_per_s".into(), Json::Num(report.dies_per_s)),
        ("p50_s".into(), Json::Num(report.p50_s)),
        ("p95_s".into(), Json::Num(report.p95_s)),
        ("p99_s".into(), Json::Num(report.p99_s)),
    ]);
    println!("{}", doc.render_pretty());
}
