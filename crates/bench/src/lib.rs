#![warn(missing_docs)]

//! Shared helpers for the Criterion benches.
//!
//! Every table and figure of the paper has a bench target that exercises
//! the simulation kernel regenerating it (see `benches/`). Heavy
//! Monte-Carlo sweeps are benched through one representative unit of
//! work — the full datasets are produced by the `experiments` binary.

use rotsv::ro::MeasureOpts;
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

/// A small bench fixture: N = 2 ring at coarse accuracy.
pub fn bench_bench() -> TestBench {
    TestBench {
        base_opts: MeasureOpts {
            dt: 4e-12,
            cycles: 3,
            skip_cycles: 1,
            max_time: 30e-9,
            ..MeasureOpts::fast()
        },
        ..TestBench::new(2)
    }
}

/// One ΔT measurement used as the unit of work in figure benches.
///
/// # Panics
///
/// Panics if the simulation fails (benches treat that as a hard error).
pub fn one_delta_t(bench: &TestBench, vdd: f64, fault: TsvFault, die: &Die) -> f64 {
    let mut faults = vec![TsvFault::None; bench.n_segments];
    faults[0] = fault;
    bench
        .measure_delta_t(vdd, &faults, &[0], die)
        .expect("simulation succeeds")
        .delta()
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_produces_a_delta() {
        let b = bench_bench();
        let dt = one_delta_t(&b, 1.1, TsvFault::None, &Die::nominal());
        assert!(dt.is_finite() && dt > 0.0);
    }
}
