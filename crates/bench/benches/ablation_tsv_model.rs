//! Ablation: lumped vs distributed TSV stamping inside the full ring.
//!
//! The paper's lumped simplification buys simulation speed; this bench
//! quantifies how much (the accuracy equivalence is E0).

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::mosfet::model::Nominal;
use rotsv::ro::{MeasureOpts, RingOscillator, RoConfig};
use rotsv::tsv::TsvModel;
use std::time::Duration;

fn period(model: TsvModel) -> f64 {
    let config = RoConfig {
        tsv_model: model,
        ..RoConfig::new(2, 1.1).enable_only(&[0])
    };
    let ro = RingOscillator::build(&config, &mut Nominal);
    let opts = MeasureOpts {
        dt: 4e-12,
        cycles: 3,
        skip_cycles: 1,
        max_time: 30e-9,
        ..MeasureOpts::fast()
    };
    ro.measure(&opts).unwrap().period().expect("oscillates")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tsv_model");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("lumped", |b| b.iter(|| period(TsvModel::Lumped)));
    g.bench_function("distributed_5", |b| {
        b.iter(|| period(TsvModel::Distributed(5)))
    });
    g.bench_function("distributed_20", |b| {
        b.iter(|| period(TsvModel::Distributed(20)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
