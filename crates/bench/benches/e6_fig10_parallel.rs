//! Bench for E6 (Fig. 10): ΔT with M TSVs tested simultaneously.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::tsv::TsvFault;
use rotsv::Die;
use rotsv_bench::bench_bench;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let tb = bench_bench();
    let die = Die::nominal();
    let mut g = c.benchmark_group("e6_fig10_parallel");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for m in [1usize, 2] {
        g.bench_function(format!("delta_t_m{m}"), |b| {
            let under_test: Vec<usize> = (0..m).collect();
            b.iter(|| {
                tb.measure_delta_t(1.1, &[TsvFault::None; 2], &under_test, &die)
                    .unwrap()
                    .delta()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
