//! Bench for E1 (Fig. 4): the I/O-cell step-response simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::mosfet::model::Nominal;
use rotsv::num::units::Ohms;
use rotsv::ro::io_cell::{step_response, IoCellConfig};
use rotsv::tsv::TsvFault;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_fig4_waveforms");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("fault_free", |b| {
        b.iter(|| {
            step_response(&IoCellConfig::new(1.1), &mut Nominal)
                .unwrap()
                .delay
        })
    });
    g.bench_function("leak_3k", |b| {
        b.iter(|| {
            let cfg = IoCellConfig::new(1.1).with_fault(TsvFault::Leakage { r: Ohms(3e3) });
            step_response(&cfg, &mut Nominal).unwrap().delay
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
