//! Bench for E0 (§III-A): charging a fault-free TSV, lumped vs
//! distributed model — the simulation kernel behind the lumped-model
//! validation.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::mosfet::model::Nominal;
use rotsv::mosfet::tech45::DriveStrength;
use rotsv::spice::{Circuit, SourceWaveform, TransientSpec};
use rotsv::stdcell::CellBuilder;
use rotsv::tsv::{Tsv, TsvModel, TsvTech};
use std::time::Duration;

fn charge(model: TsvModel) -> f64 {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(1.1));
    let input = ckt.node("in");
    ckt.add_vsource(
        input,
        Circuit::GROUND,
        SourceWaveform::step(0.0, 1.1, 0.1e-9),
    );
    let front = ckt.node("tsv");
    Tsv::fault_free(TsvTech::default()).stamp(&mut ckt, front, model);
    let mut vary = Nominal;
    let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
    cells.buffer("drv", input, front, DriveStrength::X4);
    let res = ckt
        .transient(&TransientSpec::new(1e-9, 0.5e-12).record(&[front]))
        .expect("transient succeeds");
    res.final_voltage(front)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e0_model_validation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("lumped", |b| b.iter(|| charge(TsvModel::Lumped)));
    g.bench_function("distributed_10", |b| {
        b.iter(|| charge(TsvModel::Distributed(10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
