//! Microbenchmarks of the structure-of-arrays batching kernels: the
//! MOSFET bank evaluation against the equivalent scalar per-lane loop
//! (the explicit-SIMD claim of the batched engine — `eval_lanes`
//! dispatches to AVX-512/AVX2/scalar bodies at runtime), and the
//! lane-interleaved sparse refactor+solve against K independent scalar
//! factorizations. The per-kernel table in PERFORMANCE.md's "SIMD
//! dispatch" section quotes this bench.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::mosfet::model::MosDelta;
use rotsv::mosfet::tech45::{self, DriveStrength};
use rotsv::mosfet::{Mosfet, MosfetBank};
use rotsv::num::sparse::{BatchedLu, SparseLu, SparseMatrix, SymbolicLu};
use rotsv::spice::{Circuit, DeviceStamp, NonlinearDevice};
use std::sync::Arc;

/// K lane instances of one NMOS slot with per-lane variation deltas.
fn lanes(k: usize) -> Vec<Mosfet> {
    let mut ckt = Circuit::new();
    let (d, g, s, b) = (ckt.node("d"), ckt.node("g"), ckt.node("s"), ckt.node("b"));
    (0..k)
        .map(|i| {
            let delta = MosDelta {
                dvth: 0.002 * i as f64,
                dleff_rel: -0.001 * i as f64,
            };
            let params = tech45::nmos(DriveStrength::X2).with_delta(delta);
            Mosfet::new("m", params, d, g, s, b)
        })
        .collect()
}

fn bench_mosfet_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_mosfet_eval");
    for k in [1usize, 4, 8, 16, 32, 64] {
        let devs = lanes(k);
        let refs: Vec<&Mosfet> = devs.iter().collect();
        let mut bank = MosfetBank::try_new(&refs).expect("uniform lanes");
        // A mid-transition bias, perturbed per lane like a Newton iterate.
        let mut v = vec![0.0; 4 * k];
        for (ti, base) in [0.6, 0.55, 0.0, 0.0].iter().enumerate() {
            for lane in 0..k {
                v[ti * k + lane] = base + 0.01 * lane as f64;
            }
        }
        let mut current = vec![0.0; 4 * k];
        let mut jacobian = vec![0.0; 16 * k];
        group.bench_function(format!("bank_k{k}"), |b| {
            b.iter(|| {
                use rotsv::spice::BatchedDeviceEval;
                bank.eval_lanes(std::hint::black_box(&v), &mut current, &mut jacobian);
                current[0]
            })
        });
        let mut stamp = DeviceStamp::new(4);
        group.bench_function(format!("scalar_loop_k{k}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for (lane, dev) in devs.iter().enumerate() {
                    let vl: Vec<f64> = (0..4).map(|ti| v[ti * k + lane]).collect();
                    dev.eval(std::hint::black_box(&vl), &mut stamp);
                    acc += stamp.current[0];
                }
                acc
            })
        });
    }
    group.finish();
}

/// Tridiagonal-plus-border MNA pattern (RC ladder), as in spice_kernels.
fn ladder(n: usize) -> SparseMatrix {
    let dim = n + 1;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 2e-2));
        if i + 1 < n {
            t.push((i, i + 1, -1e-2));
            t.push((i + 1, i, -1e-2));
        }
    }
    t.push((0, n, 1.0));
    t.push((n, 0, 1.0));
    SparseMatrix::from_triplets(dim, &t)
}

fn bench_batched_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_lu");
    let a = ladder(64);
    let nnz = a.values().len();
    let dim = a.dim();
    for k in [1usize, 4, 8, 16, 32, 64] {
        // Lane-interleaved values: lane j scaled by (1 + j/16), the kind
        // of spread process variation produces.
        let mut values = vec![0.0; nnz * k];
        for (s, &v) in a.values().iter().enumerate() {
            for lane in 0..k {
                values[s * k + lane] = v * (1.0 + lane as f64 / 16.0);
            }
        }
        let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
        let mut lu = BatchedLu::new(Arc::clone(&sym), k);
        let mut b = vec![1.0; dim * k];
        group.bench_function(format!("refactor_solve_k{k}"), |bench| {
            bench.iter(|| {
                lu.refactor(&a, std::hint::black_box(&values)).unwrap();
                b.fill(1.0);
                lu.solve_in_place(&mut b);
                b[0]
            })
        });
        let mut scalar_lus: Vec<SparseLu> = (0..k).map(|_| SparseLu::new(&a).unwrap()).collect();
        let rhs = vec![1.0; dim];
        group.bench_function(format!("scalar_refactor_solve_k{k}"), |bench| {
            bench.iter(|| {
                let mut acc = 0.0;
                for lu in scalar_lus.iter_mut() {
                    lu.refactor(std::hint::black_box(&a)).unwrap();
                    acc += lu.solve(&rhs).unwrap()[0];
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mosfet_eval, bench_batched_lu);
criterion_main!(benches);
