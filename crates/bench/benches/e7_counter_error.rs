//! Bench for E7 (§IV-C): the gated counter sampling model and the
//! gate-level counter simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::dft::counter::{GateLevelCounter, GatedCounter};
use rotsv::dft::lfsr::Lfsr;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_counter_error");
    g.bench_function("gated_counter_phase_sweep", |b| {
        let counter = GatedCounter::new(5e-6, 16);
        b.iter(|| {
            let mut worst = 0.0f64;
            for k in 0..200 {
                let phase = 5.065e-9 * k as f64 / 200.0;
                let est = counter.measure(5.065e-9, phase).unwrap();
                worst = worst.max((est - 5.065e-9).abs());
            }
            worst
        })
    });
    g.bench_function("gate_level_counter_1000_ticks", |b| {
        b.iter(|| {
            let mut counter = GateLevelCounter::build(10);
            for _ in 0..1000 {
                counter.tick();
            }
            counter.count()
        })
    });
    g.bench_function("lfsr_decode_table_12bit", |b| {
        b.iter(|| Lfsr::new(12).decode_table().len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
