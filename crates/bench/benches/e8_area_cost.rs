//! Bench for E8 (§IV-D): the DfT area model (trivially fast; included so
//! every table/figure has a bench target).

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::dft::DftAreaModel;

fn bench(c: &mut Criterion) {
    let model = DftAreaModel::default();
    c.bench_function("e8_area_cost/paper_example", |b| {
        b.iter(|| {
            let area = model.total_area(1000, 5);
            let frac = model.fraction_of_die(1000, 5, 25.0);
            (area, frac)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
