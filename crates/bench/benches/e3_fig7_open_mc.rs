//! Bench for E3 (Fig. 7): one Monte-Carlo die of the open-vs-voltage
//! spread analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::Die;
use rotsv_bench::{bench_bench, one_delta_t};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let tb = bench_bench();
    let die = Die::new(ProcessSpread::paper(), 7);
    let mut g = c.benchmark_group("e3_fig7_open_mc");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("mc_die_open_1k_at_1v1", |b| {
        b.iter(|| {
            one_delta_t(
                &tb,
                1.1,
                TsvFault::ResistiveOpen {
                    x: 0.5,
                    r: Ohms(1e3),
                },
                &die,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
