//! Bench for E5 (Fig. 9): one Monte-Carlo die of the leakage-vs-voltage
//! spread analysis (run at 0.95 V, inside the sensitive region).

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::Die;
use rotsv_bench::{bench_bench, one_delta_t};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let tb = bench_bench();
    let die = Die::new(ProcessSpread::paper(), 9);
    let mut g = c.benchmark_group("e5_fig9_leak_mc");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("mc_die_leak_3k_at_0v95", |b| {
        b.iter(|| one_delta_t(&tb, 0.95, TsvFault::Leakage { r: Ohms(3e3) }, &die))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
