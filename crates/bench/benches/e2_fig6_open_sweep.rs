//! Bench for E2 (Fig. 6): one ΔT measurement of a resistive open — the
//! unit of work of the R_O sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::Die;
use rotsv_bench::{bench_bench, one_delta_t};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let tb = bench_bench();
    let die = Die::nominal();
    let mut g = c.benchmark_group("e2_fig6_open_sweep");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("delta_t_open_1k", |b| {
        b.iter(|| {
            one_delta_t(
                &tb,
                1.1,
                TsvFault::ResistiveOpen {
                    x: 0.5,
                    r: Ohms(1e3),
                },
                &die,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
