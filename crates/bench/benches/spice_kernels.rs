//! Microbenchmarks of the simulator's numeric kernels: dense and sparse
//! LU at MNA-typical sizes (factor, value-only refactor, solve) and a
//! full transient step workload under both step controllers.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::num::linsolve::LuFactors;
use rotsv::num::matrix::Matrix;
use rotsv::num::rng::GaussianRng;
use rotsv::num::sparse::{SparseLu, SparseMatrix};
use rotsv::spice::{Circuit, SourceWaveform, StepControl, TransientSpec};

fn random_system(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = GaussianRng::seed_from(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = rng.standard_normal();
        }
        a[(i, i)] += n as f64; // diagonally dominant: well conditioned
    }
    let b: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
    (a, b)
}

/// Triplets of an RC-ladder MNA matrix: tridiagonal conductance block
/// plus one voltage-source border — the sparsity the simulator actually
/// factors, unlike `random_system`'s dense reference.
fn ladder_triplets(n: usize, g: f64) -> (Vec<(usize, usize, f64)>, usize) {
    let dim = n + 1; // n interior nodes + 1 source current
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 2.0 * g));
        if i + 1 < n {
            t.push((i, i + 1, -g));
            t.push((i + 1, i, -g));
        }
    }
    t.push((0, n, 1.0));
    t.push((n, 0, 1.0));
    (t, dim)
}

fn rc_ladder(n: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::step(0.0, 1.0, 0.0));
    let mut prev = vin;
    for i in 0..n {
        let node = ckt.node(&format!("n{i}"));
        ckt.add_resistor(prev, node, 100.0);
        ckt.add_capacitor(node, Circuit::GROUND, 1e-14);
        prev = node;
    }
    ckt
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("spice_kernels");
    for n in [16usize, 64, 128] {
        let (a, b) = random_system(n, 42);
        g.bench_function(format!("lu_factor_solve_{n}"), |bench| {
            bench.iter(|| {
                let lu = LuFactors::factor(a.clone()).unwrap();
                lu.solve(&b).unwrap()
            })
        });
    }
    for n in [16usize, 64, 128] {
        let (triplets, dim) = ladder_triplets(n, 1e-2);
        let a = SparseMatrix::from_triplets(dim, &triplets);
        let b = vec![1.0; dim];
        g.bench_function(format!("sparse_analyze_{n}"), |bench| {
            bench.iter(|| SparseLu::new(&a).unwrap())
        });
        let mut lu = SparseLu::new(&a).unwrap();
        g.bench_function(format!("sparse_refactor_solve_{n}"), |bench| {
            bench.iter(|| {
                lu.refactor(&a).unwrap();
                lu.solve(&b).unwrap()
            })
        });
    }
    g.bench_function("transient_rc_ladder_50x1000steps", |bench| {
        let ckt = rc_ladder(50);
        let spec = TransientSpec::new(1e-9, 1e-12).step_control(StepControl::Fixed);
        bench.iter(|| ckt.transient(&spec).unwrap().steps_taken())
    });
    g.bench_function("transient_rc_ladder_50_adaptive", |bench| {
        let ckt = rc_ladder(50);
        let spec = TransientSpec::new(1e-9, 1e-12).step_control(StepControl::adaptive());
        bench.iter(|| ckt.transient(&spec).unwrap().steps_taken())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
