//! Ablation: integration method and step size.
//!
//! DESIGN.md calls out the choice of trapezoidal integration with a
//! ~2 ps step. This bench measures the cost of the alternatives; the
//! accuracy side of the ablation lives in the `ablations` module of
//! `rotsv-experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use rotsv::mosfet::model::Nominal;
use rotsv::ro::{MeasureOpts, RingOscillator, RoConfig};
use rotsv::spice::IntegrationMethod;
use std::time::Duration;

fn period(method: IntegrationMethod, dt: f64) -> f64 {
    let config = RoConfig::new(2, 1.1).enable_only(&[0]);
    let ro = RingOscillator::build(&config, &mut Nominal);
    let opts = MeasureOpts {
        dt,
        cycles: 3,
        skip_cycles: 1,
        max_time: 30e-9,
        method,
        step: rotsv::spice::StepControl::Fixed,
    };
    ro.measure(&opts).unwrap().period().expect("oscillates")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_integrator");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("trapezoidal_dt2ps", |b| {
        b.iter(|| period(IntegrationMethod::Trapezoidal, 2e-12))
    });
    g.bench_function("trapezoidal_dt4ps", |b| {
        b.iter(|| period(IntegrationMethod::Trapezoidal, 4e-12))
    });
    g.bench_function("backward_euler_dt2ps", |b| {
        b.iter(|| period(IntegrationMethod::BackwardEuler, 2e-12))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
