#![warn(missing_docs)]

//! Electrical through-silicon-via (TSV) models and fault injection.
//!
//! Implements the TSV models of Section III-A of the paper (Fig. 2):
//!
//! * **fault-free** — the TSV is a lumped capacitor to the substrate
//!   (the series resistance of 0.1 Ω is negligible against the driver's
//!   ~1 kΩ output resistance; [`Tsv::stamp`] with
//!   [`TsvModel::Distributed`] lets you verify this, reproducing the
//!   paper's lumped-vs-RC-segments validation),
//! * **micro-void** → [`TsvFault::ResistiveOpen`] — an open of `R_O` ohms
//!   at normalized depth `x` splits the capacitance into `x·C` before the
//!   defect and `(1−x)·C` behind it,
//! * **pinhole** → [`TsvFault::Leakage`] — a conduction path of `R_L` ohms
//!   from the TSV to the substrate in parallel with the capacitance.
//!
//! # Examples
//!
//! ```
//! use rotsv_num::units::Ohms;
//! use rotsv_spice::Circuit;
//! use rotsv_tsv::{Tsv, TsvFault, TsvModel, TsvTech};
//!
//! let mut ckt = Circuit::new();
//! let front = ckt.node("tsv_front");
//! let tsv = Tsv::new(
//!     TsvTech::default(),
//!     TsvFault::ResistiveOpen { x: 0.5, r: Ohms(3000.0) },
//! );
//! let stamped = tsv.stamp(&mut ckt, front, TsvModel::Lumped);
//! assert_ne!(stamped.back, front, "the open creates a detached back node");
//! ```

use rotsv_num::units::{Farads, Ohms};
use rotsv_spice::{Circuit, NodeId};

/// TSV technology parameters.
///
/// Defaults are the values the paper cites from the literature:
/// R = 0.1 Ω and C = 59 fF for a 10 µm × 60 µm TSV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvTech {
    /// Total body resistance of the via.
    pub r_total: Ohms,
    /// Total capacitance between via and substrate.
    pub c_total: Farads,
}

impl Default for TsvTech {
    fn default() -> Self {
        Self {
            r_total: Ohms(0.1),
            c_total: Farads::from_femto(59.0),
        }
    }
}

/// A TSV defect, per the paper's fault models.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TsvFault {
    /// No defect.
    #[default]
    None,
    /// A micro-void at normalized depth `x` (0 = front/driver side,
    /// 1 = back side) adding `r` ohms of series resistance.
    ///
    /// `r` ranges from a few ohms (small void) to effectively infinite
    /// (full open).
    ResistiveOpen {
        /// Normalized defect location along the via, in `[0, 1]`.
        x: f64,
        /// Open resistance.
        r: Ohms,
    },
    /// A pinhole creating a conduction path of `r` ohms from the via to
    /// the (grounded) substrate.
    Leakage {
        /// Leakage resistance.
        r: Ohms,
    },
}

impl TsvFault {
    /// Returns `true` for [`TsvFault::None`].
    pub fn is_fault_free(&self) -> bool {
        matches!(self, TsvFault::None)
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, 1]` or a resistance is not positive.
    fn validate(&self) {
        match *self {
            TsvFault::None => {}
            TsvFault::ResistiveOpen { x, r } => {
                assert!(
                    (0.0..=1.0).contains(&x),
                    "open location x={x} outside [0,1]"
                );
                assert!(r.value() > 0.0, "open resistance must be positive");
            }
            TsvFault::Leakage { r } => {
                assert!(r.value() > 0.0, "leakage resistance must be positive");
            }
        }
    }
}

/// Electrical discretization used when stamping a TSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsvModel {
    /// The paper's simplified model: capacitances lumped, body resistance
    /// neglected.
    Lumped,
    /// An `n`-segment RC ladder (used to validate the lumped model, as the
    /// paper does with "multiple RC segments").
    Distributed(usize),
}

/// Nodes of a stamped TSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsvStamped {
    /// The front-side node (connected to the on-die driver/receiver).
    pub front: NodeId,
    /// The back-side node (exposed after thinning; equals `front` for a
    /// lumped fault-free via).
    pub back: NodeId,
}

/// A TSV instance: technology plus an injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tsv {
    tech: TsvTech,
    fault: TsvFault,
}

impl Tsv {
    /// Creates a TSV with the given technology and fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault parameters are out of range (see
    /// [`TsvFault`]).
    pub fn new(tech: TsvTech, fault: TsvFault) -> Self {
        fault.validate();
        Self { tech, fault }
    }

    /// A fault-free TSV.
    pub fn fault_free(tech: TsvTech) -> Self {
        Self::new(tech, TsvFault::None)
    }

    /// The injected fault.
    pub fn fault(&self) -> TsvFault {
        self.fault
    }

    /// Technology parameters.
    pub fn tech(&self) -> TsvTech {
        self.tech
    }

    /// Stamps this TSV into `ckt` with its front side at `front`.
    ///
    /// The substrate is the circuit's ground. Returns the front and back
    /// nodes actually created.
    pub fn stamp(&self, ckt: &mut Circuit, front: NodeId, model: TsvModel) -> TsvStamped {
        match model {
            TsvModel::Lumped => self.stamp_lumped(ckt, front),
            TsvModel::Distributed(n) => {
                assert!(n >= 1, "distributed model needs at least one segment");
                self.stamp_distributed(ckt, front, n)
            }
        }
    }

    fn stamp_lumped(&self, ckt: &mut Circuit, front: NodeId) -> TsvStamped {
        let c = self.tech.c_total.value();
        match self.fault {
            TsvFault::None => {
                ckt.add_capacitor(front, Circuit::GROUND, c);
                TsvStamped { front, back: front }
            }
            TsvFault::ResistiveOpen { x, r } => {
                let back = ckt.node("tsv.back");
                // Fig. 2(b): top segment keeps x·C at the front; the open
                // R_O leads to the detached bottom (1−x)·C.
                if x > 0.0 {
                    ckt.add_capacitor(front, Circuit::GROUND, x * c);
                }
                ckt.add_resistor(front, back, r.value());
                if x < 1.0 {
                    ckt.add_capacitor(back, Circuit::GROUND, (1.0 - x) * c);
                }
                TsvStamped { front, back }
            }
            TsvFault::Leakage { r } => {
                // Fig. 2(c): R_L in parallel with the full capacitance.
                ckt.add_capacitor(front, Circuit::GROUND, c);
                ckt.add_resistor(front, Circuit::GROUND, r.value());
                TsvStamped { front, back: front }
            }
        }
    }

    fn stamp_distributed(&self, ckt: &mut Circuit, front: NodeId, n: usize) -> TsvStamped {
        let r_seg = self.tech.r_total.value() / n as f64;
        let c_seg = self.tech.c_total.value() / n as f64;
        // Index of the segment boundary where an open is inserted.
        let open_at = match self.fault {
            TsvFault::ResistiveOpen { x, .. } => Some(((x * n as f64).round() as usize).min(n)),
            _ => None,
        };
        let mut prev = front;
        for k in 0..n {
            if open_at == Some(k) {
                if let TsvFault::ResistiveOpen { r, .. } = self.fault {
                    let node = ckt.node(&format!("tsv.open{k}"));
                    ckt.add_resistor(prev, node, r.value());
                    prev = node;
                }
            }
            let node = ckt.node(&format!("tsv.seg{k}"));
            ckt.add_resistor(prev, node, r_seg);
            ckt.add_capacitor(node, Circuit::GROUND, c_seg);
            prev = node;
        }
        if open_at == Some(n) {
            if let TsvFault::ResistiveOpen { r, .. } = self.fault {
                let node = ckt.node("tsv.openN");
                ckt.add_resistor(prev, node, r.value());
                prev = node;
            }
        }
        if let TsvFault::Leakage { r } = self.fault {
            // A pinhole near the front side, consistent with the lumped
            // model that places R_L directly on the TSV net.
            ckt.add_resistor(front, Circuit::GROUND, r.value());
        }
        TsvStamped { front, back: prev }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_spice::{SourceWaveform, TransientSpec};

    fn total_capacitance(tsv: &Tsv, model: TsvModel) -> f64 {
        // Stamp into a scratch circuit and integrate: drive with a large
        // resistor and measure the final charge indirectly is overkill —
        // instead rebuild and sum the element values through a charge
        // balance: charge the front node through R and compare the time
        // constant. For a structural check we instead count capacitor
        // elements by building the circuit and verifying the charging
        // behaviour elsewhere; here we rely on the stamped element values.
        let mut ckt = Circuit::new();
        let front = ckt.node("front");
        tsv.stamp(&mut ckt, front, model);
        // The circuit exposes no element iterator publicly; verify via the
        // node count instead (structure) and leave the electrical check to
        // the charging tests below.
        ckt.node_count() as f64
    }

    #[test]
    fn fault_free_lumped_is_single_node() {
        let tsv = Tsv::fault_free(TsvTech::default());
        let mut ckt = Circuit::new();
        let front = ckt.node("front");
        let s = tsv.stamp(&mut ckt, front, TsvModel::Lumped);
        assert_eq!(s.front, s.back);
        assert_eq!(ckt.node_count(), 2); // ground + front
    }

    #[test]
    fn open_creates_back_node() {
        let tsv = Tsv::new(
            TsvTech::default(),
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(3000.0),
            },
        );
        let mut ckt = Circuit::new();
        let front = ckt.node("front");
        let s = tsv.stamp(&mut ckt, front, TsvModel::Lumped);
        assert_ne!(s.front, s.back);
    }

    #[test]
    fn distributed_node_count_scales() {
        let tsv = Tsv::fault_free(TsvTech::default());
        let n1 = total_capacitance(&tsv, TsvModel::Distributed(5));
        let n2 = total_capacitance(&tsv, TsvModel::Distributed(10));
        assert_eq!(n2 - n1, 5.0);
    }

    /// The paper's validation: charging a fault-free TSV through a driver
    /// resistance shows "no measurable difference" between the lumped
    /// capacitor and the multi-segment RC ladder.
    #[test]
    fn lumped_matches_distributed_charge_curve() {
        let charge_time = |model: TsvModel| -> f64 {
            let tsv = Tsv::fault_free(TsvTech::default());
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let front = ckt.node("front");
            ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::step(0.0, 1.1, 0.0));
            // 1 kΩ stands in for the X4 driver's output resistance.
            ckt.add_resistor(vin, front, 1e3);
            tsv.stamp(&mut ckt, front, model);
            let spec = TransientSpec::new(1e-9, 0.2e-12).record(&[front]);
            let res = ckt.transient(&spec).unwrap();
            res.waveform(front)
                .first_crossing_after(0.0, 0.55, rotsv_spice::Edge::Rising)
                .expect("charges past VDD/2")
        };
        let t_lumped = charge_time(TsvModel::Lumped);
        let t_dist = charge_time(TsvModel::Distributed(10));
        // Difference far below a picosecond: the lumped model is justified.
        assert!(
            (t_lumped - t_dist).abs() < 0.5e-12,
            "lumped {t_lumped} vs distributed {t_dist}"
        );
    }

    /// An open at the far end (x = 1) leaves the full capacitance visible:
    /// identical charge curve to fault-free. An open at the front (x = 0)
    /// hides (almost) all of it: much faster charging.
    #[test]
    fn open_location_controls_visible_capacitance() {
        let charge_time = |fault: TsvFault| -> f64 {
            let tsv = Tsv::new(TsvTech::default(), fault);
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let front = ckt.node("front");
            ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::step(0.0, 1.1, 0.0));
            ckt.add_resistor(vin, front, 1e3);
            tsv.stamp(&mut ckt, front, TsvModel::Lumped);
            let spec = TransientSpec::new(1e-9, 0.2e-12).record(&[front]);
            let res = ckt.transient(&spec).unwrap();
            res.waveform(front)
                .first_crossing_after(0.0, 0.55, rotsv_spice::Edge::Rising)
                .expect("charges past VDD/2")
        };
        let t_ff = charge_time(TsvFault::None);
        let t_back = charge_time(TsvFault::ResistiveOpen {
            x: 1.0,
            r: Ohms(1e9),
        });
        let t_front = charge_time(TsvFault::ResistiveOpen {
            x: 0.0,
            r: Ohms(1e9),
        });
        let t_mid = charge_time(TsvFault::ResistiveOpen {
            x: 0.5,
            r: Ohms(1e9),
        });
        assert!((t_ff - t_back).abs() < 1e-15 * 1e3 + 1e-13, "x=1 invisible");
        assert!(t_front < 0.2 * t_ff, "x=0 hides the load");
        assert!(t_front < t_mid && t_mid < t_back, "monotone in x");
    }

    /// Leakage pulls the final value below the rail; strong leakage keeps
    /// it below the receiver threshold entirely (stuck-at-0 behaviour).
    #[test]
    fn leakage_divides_final_voltage() {
        let final_v = |r_l: f64| -> f64 {
            let tsv = Tsv::new(TsvTech::default(), TsvFault::Leakage { r: Ohms(r_l) });
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let front = ckt.node("front");
            ckt.add_vsource(vin, Circuit::GROUND, SourceWaveform::dc(1.1));
            ckt.add_resistor(vin, front, 1e3);
            tsv.stamp(&mut ckt, front, TsvModel::Lumped);
            let spec = TransientSpec::new(2e-9, 0.5e-12).record(&[front]);
            ckt.transient(&spec).unwrap().final_voltage(front)
        };
        let v_weak = final_v(100e3); // barely affected
        let v_3k = final_v(3e3); // divider 3/(3+1)
        let v_1k = final_v(1e3); // divider 1/2
        assert!((v_weak - 1.1).abs() < 0.02, "v_weak = {v_weak}");
        assert!((v_3k - 1.1 * 0.75).abs() < 0.02, "v_3k = {v_3k}");
        assert!((v_1k - 0.55).abs() < 0.02, "v_1k = {v_1k}");
    }

    #[test]
    fn distributed_open_inserts_extra_resistance() {
        let tsv = Tsv::new(
            TsvTech::default(),
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(1e6),
            },
        );
        let mut ckt = Circuit::new();
        let front = ckt.node("front");
        let s = tsv.stamp(&mut ckt, front, TsvModel::Distributed(4));
        // 4 segments + 1 open node + ground + front
        assert_eq!(ckt.node_count(), 7);
        assert_ne!(s.back, front);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn invalid_open_location_rejected() {
        let _ = Tsv::new(
            TsvTech::default(),
            TsvFault::ResistiveOpen {
                x: 1.5,
                r: Ohms(1e3),
            },
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_leakage_resistance_rejected() {
        let _ = Tsv::new(TsvTech::default(), TsvFault::Leakage { r: Ohms(0.0) });
    }

    #[test]
    fn default_tech_matches_paper() {
        let t = TsvTech::default();
        assert_eq!(t.r_total.value(), 0.1);
        assert_eq!(t.c_total.as_femto(), 59.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Stamping never panics for in-range fault parameters and always
        /// yields a well-formed circuit.
        #[test]
        fn stamping_is_total(
            x in 0.0..=1.0f64,
            r in 1.0..1e7f64,
            segs in 1usize..16,
            kind in 0..3usize,
        ) {
            let fault = match kind {
                0 => TsvFault::None,
                1 => TsvFault::ResistiveOpen { x, r: Ohms(r) },
                _ => TsvFault::Leakage { r: Ohms(r) },
            };
            let tsv = Tsv::new(TsvTech::default(), fault);
            for model in [TsvModel::Lumped, TsvModel::Distributed(segs)] {
                let mut ckt = Circuit::new();
                let front = ckt.node("front");
                let s = tsv.stamp(&mut ckt, front, model);
                prop_assert!(s.front == front);
                prop_assert!(s.back.index() < ckt.node_count());
            }
        }
    }
}
