//! E2 — Fig. 6: ΔT as a function of the open resistance R_O.
//!
//! A resistive open at x = 0.5 detaches half the TSV capacitance behind
//! R_O; the bigger the open, the faster the net charges and the smaller
//! the oscillation period. The paper sweeps R_O from 0 (fault-free) to
//! 3 kΩ at V_DD = 1.1 V and observes a monotone decrease of ΔT, with a
//! 1 kΩ open reducing ΔT by about 10 %.

use rotsv::num::parallel::parallel_map;
use rotsv::num::units::Ohms;
use rotsv::spice::SpiceError;
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

use crate::{Check, ExperimentReport, Fidelity};

/// Runs the Fig. 6 sweep.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let bench = TestBench::new(f.n_segments());
    let die = Die::nominal();
    let r_points: Vec<f64> = f.thin(&[0.0, 250.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0]);

    let results: Vec<Result<(f64, f64), SpiceError>> = parallel_map(r_points.len(), |i| {
        let r = r_points[i];
        let mut faults = vec![TsvFault::None; bench.n_segments];
        if r > 0.0 {
            faults[0] = TsvFault::ResistiveOpen { x: 0.5, r: Ohms(r) };
        }
        let m = bench.measure_delta_t(1.1, &faults, &[0], &die)?;
        Ok((r, m.delta().expect("opens never stop the ring")))
    });
    let mut deltas = Vec::with_capacity(r_points.len());
    for r in results {
        deltas.push(r?);
    }

    let dt_ff = deltas[0].1;
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|&(r, dt)| {
            vec![
                format!("{:.0}", r),
                crate::ps(dt),
                format!("{:+.1}", (dt - dt_ff) * 1e12),
                format!("{:+.1}%", (dt / dt_ff - 1.0) * 100.0),
            ]
        })
        .collect();

    let monotone = deltas.windows(2).all(|w| w[1].1 <= w[0].1 + 0.5e-12);
    let dt_3k = deltas.last().expect("non-empty sweep").1;
    let reduction_3k = 1.0 - dt_3k / dt_ff;
    let checks = vec![
        Check {
            description: "ΔT decreases monotonically with R_O".to_owned(),
            passed: monotone,
        },
        Check {
            description: format!(
                "a strong open produces a clearly measurable ΔT reduction \
                 (paper: ≈10% at 1 kΩ; measured {:.1}% at 3 kΩ)",
                reduction_3k * 100.0
            ),
            passed: reduction_3k > 0.03,
        },
        Check {
            description: "fault-free ΔT is positive (the segment adds delay)".to_owned(),
            passed: dt_ff > 0.0,
        },
    ];
    Ok(ExperimentReport {
        id: "e2",
        title: "ΔT vs resistive-open size R_O at x = 0.5, V_DD = 1.1 V (Fig. 6)".to_owned(),
        headers: vec![
            "R_O (Ω)".to_owned(),
            "ΔT (ps)".to_owned(),
            "Δ vs fault-free (ps)".to_owned(),
            "change".to_owned(),
        ],
        rows,
        notes: vec![format!(
            "N = {} segments; TSV 0 enabled for run 1, all bypassed for run 2.",
            bench.n_segments
        )],
        checks,
        seed: None,
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_reproduces() {
        let report = run(&Fidelity::fast()).unwrap();
        assert!(report.all_checks_pass(), "{}", report.markdown());
        assert!(report.rows.len() >= 4);
    }
}
