//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! * [`a1_integrator`] — integration method and step size: is the
//!   extracted period an artifact of the integrator?
//! * [`a2_subtraction`] — the two-run ΔT subtraction vs raw T₁ under
//!   process variation: how much shared-path variation does it cancel?
//! * [`a3_tsv_model`] — lumped vs distributed TSV stamping inside the
//!   full ring (the in-situ version of E0).

use rotsv::mc::die_seed;
use rotsv::mosfet::model::Nominal;
use rotsv::num::stats::Summary;
use rotsv::ro::{MeasureOpts, RingOscillator, RoConfig};
use rotsv::spice::{IntegrationMethod, SpiceError};
use rotsv::tsv::{TsvFault, TsvModel};
use rotsv::variation::ProcessSpread;
use rotsv::{Die, TestBench};

use crate::{Check, ExperimentReport, Fidelity};

fn ring_period(dt: f64, method: IntegrationMethod, tsv_model: TsvModel) -> Result<f64, SpiceError> {
    let config = RoConfig {
        tsv_model,
        ..RoConfig::new(2, 1.1).enable_only(&[0])
    };
    let ro = RingOscillator::build(&config, &mut Nominal);
    // Fixed-step on purpose: this ablation studies the integrator at a
    // given uniform dt, so adaptive stepping would confound the sweep.
    let opts = MeasureOpts {
        dt,
        cycles: 4,
        skip_cycles: 2,
        max_time: 40e-9,
        method,
        step: rotsv::spice::StepControl::Fixed,
    };
    Ok(ro
        .measure(&opts)?
        .period()
        .expect("healthy ring oscillates"))
}

/// A1: integrator/step-size sensitivity of the extracted period.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn a1_integrator(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let reference = ring_period(0.5e-12, IntegrationMethod::Trapezoidal, TsvModel::Lumped)?;
    let dts: Vec<f64> = f.thin(&[1e-12, 2e-12, 4e-12, 8e-12]);
    let mut rows = vec![vec![
        "TRAP".to_owned(),
        "0.5".to_owned(),
        crate::ps(reference),
        "reference".to_owned(),
    ]];
    let mut trap_2ps_err = f64::NAN;
    let mut worst_trap: f64 = 0.0;
    for &dt in &dts {
        for method in [
            IntegrationMethod::Trapezoidal,
            IntegrationMethod::BackwardEuler,
        ] {
            let t = ring_period(dt, method, TsvModel::Lumped)?;
            let err = t - reference;
            if method == IntegrationMethod::Trapezoidal {
                worst_trap = worst_trap.max(err.abs());
                if (dt - 2e-12).abs() < 1e-15 {
                    trap_2ps_err = err.abs();
                }
            }
            rows.push(vec![
                format!("{method:?}"),
                format!("{:.1}", dt * 1e12),
                crate::ps(t),
                format!("{:+.2}", err * 1e12),
            ]);
        }
    }
    let checks = vec![
        Check {
            description: format!(
                "the production step (TRAP, 2 ps) is converged: period error \
                 {:.2} ps ≪ the smallest fault signature (~15 ps)",
                trap_2ps_err * 1e12
            ),
            passed: trap_2ps_err < 2e-12,
        },
        Check {
            description: format!(
                "trapezoidal stays within {:.2} ps of the fine-step reference \
                 across all tested steps",
                worst_trap * 1e12
            ),
            passed: worst_trap < 5e-12,
        },
    ];
    Ok(ExperimentReport {
        id: "a1",
        title: "Ablation: integration method and step size".to_owned(),
        headers: vec![
            "method".to_owned(),
            "dt (ps)".to_owned(),
            "period (ps)".to_owned(),
            "error vs reference (ps)".to_owned(),
        ],
        rows,
        notes: vec!["N = 2 ring, TSV 0 enabled, nominal die, V_DD = 1.1 V.".to_owned()],
        checks,
        seed: None,
        stats: None,
    })
}

/// A2: what the two-run subtraction buys under process variation.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn a2_subtraction(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let bench = TestBench::fast(2);
    // 4× the shared MC depth: unlike the spread experiments, this
    // ablation compares two σ estimates of similar magnitude, and at N
    // dies a sample σ carries ≈ 1/√(2(N−1)) relative error — 27 % at 8
    // dies, enough to flip the σ(ΔT) ≤ σ(T1) comparison on an unlucky
    // seed. The bench is tiny (2 segments), so the extra dies are cheap.
    let samples = 4 * f.mc_samples();
    let mut t1s = Vec::with_capacity(samples);
    let mut t2s = Vec::with_capacity(samples);
    let mut dts = Vec::with_capacity(samples);
    let results: Vec<Result<(f64, f64), SpiceError>> =
        rotsv::num::parallel::parallel_map(samples, |i| {
            let die = Die::new(ProcessSpread::paper(), die_seed(42, i));
            let m = bench.measure_delta_t(1.1, &[TsvFault::None; 2], &[0], &die)?;
            Ok((
                m.t1.period().expect("oscillates"),
                m.t2.period().expect("oscillates"),
            ))
        });
    for r in results {
        let (t1, t2) = r?;
        t1s.push(t1);
        t2s.push(t2);
        dts.push(t1 - t2);
    }
    let s1 = Summary::of(&t1s);
    let s2 = Summary::of(&t2s);
    let sd = Summary::of(&dts);
    // What the spread would be if T1 and T2 came from *different* dies
    // (no shared-path correlation to cancel).
    let sigma_uncorrelated = (s1.std_dev.powi(2) + s2.std_dev.powi(2)).sqrt();
    let rows = vec![
        vec![
            "raw T1 (TSV enabled)".to_owned(),
            crate::ps(s1.mean),
            format!("{:.2}", s1.std_dev * 1e12),
        ],
        vec![
            "raw T2 (all bypassed)".to_owned(),
            crate::ps(s2.mean),
            format!("{:.2}", s2.std_dev * 1e12),
        ],
        vec![
            "ΔT = T1 − T2 (same die)".to_owned(),
            crate::ps(sd.mean),
            format!("{:.2}", sd.std_dev * 1e12),
        ],
        vec![
            "ΔT if runs were uncorrelated (√(σ₁²+σ₂²))".to_owned(),
            "-".to_owned(),
            format!("{:.2}", sigma_uncorrelated * 1e12),
        ],
    ];
    let checks = vec![
        Check {
            description: format!(
                "same-die subtraction beats an uncorrelated difference: \
                 σ(ΔT) = {:.2} ps vs {:.2} ps — the shared-path variation \
                 cancels, only the segment under test remains",
                sd.std_dev * 1e12,
                sigma_uncorrelated * 1e12
            ),
            passed: sd.std_dev < 0.8 * sigma_uncorrelated,
        },
        Check {
            description: format!(
                "σ(ΔT) = {:.2} ps does not exceed σ(T1) = {:.2} ps \
                 (within a 10 % sampling allowance at {samples} dies)",
                sd.std_dev * 1e12,
                s1.std_dev * 1e12
            ),
            // Both sides are finite-sample estimates; the allowance
            // covers their residual sampling error so the check tests
            // the claim, not the luck of the seed.
            passed: sd.std_dev <= 1.1 * s1.std_dev,
        },
    ];
    Ok(ExperimentReport {
        id: "a2",
        title: "Ablation: two-run ΔT subtraction vs raw period".to_owned(),
        headers: vec![
            "quantity".to_owned(),
            "mean (ps)".to_owned(),
            "σ over MC dies (ps)".to_owned(),
        ],
        rows,
        notes: vec![format!(
            "{samples} fault-free MC dies, 3σ(V_th) = 30 mV, 3σ(L_eff) = 10 %, \
             V_DD = 1.1 V. This is the paper's §IV-A argument for measuring \
             T2 at all."
        )],
        checks,
        seed: Some(42),
        stats: None,
    })
}

/// A3: lumped vs distributed TSV model inside the full ring.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn a3_tsv_model(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let segment_counts: Vec<usize> = f.thin(&[2, 5, 10, 20]);
    let reference = ring_period(2e-12, IntegrationMethod::Trapezoidal, TsvModel::Lumped)?;
    let mut rows = vec![vec![
        "lumped".to_owned(),
        crate::ps(reference),
        "0.00".to_owned(),
    ]];
    let mut worst: f64 = 0.0;
    for &n in &segment_counts {
        let t = ring_period(
            2e-12,
            IntegrationMethod::Trapezoidal,
            TsvModel::Distributed(n),
        )?;
        worst = worst.max((t - reference).abs());
        rows.push(vec![
            format!("distributed({n})"),
            crate::ps(t),
            format!("{:+.2}", (t - reference) * 1e12),
        ]);
    }
    let checks = vec![Check {
        description: format!(
            "the lumped model is exact in situ: worst in-ring period deviation \
             {:.2} ps (vs ~450 ps segment delay)",
            worst * 1e12
        ),
        passed: worst < 1e-12,
    }];
    Ok(ExperimentReport {
        id: "a3",
        title: "Ablation: lumped vs distributed TSV model in the ring".to_owned(),
        headers: vec![
            "TSV model".to_owned(),
            "ring period (ps)".to_owned(),
            "Δ vs lumped (ps)".to_owned(),
        ],
        rows,
        notes: vec![
            "Complements E0 (bare charge curve) with the full-loop view; the \
             Criterion bench ablation_tsv_model quantifies the runtime cost."
                .to_owned(),
        ],
        checks,
        seed: None,
        stats: None,
    })
}
