//! E7 — §IV-C: counter quantization error and measurement sizing.
//!
//! Reproduces the paper's error analysis: the gated counter's estimate
//! errs by at most `T²/t`; the worked example (T = 5 ns, target
//! E = 0.005 ns) requires a 5 µs window and a 10-bit counter. The
//! cycle-accurate counter model is swept over all sampling phases and
//! compared against the analytic bounds, and the LFSR alternative's gate
//! saving is quantified.

use rotsv::dft::counter::GatedCounter;
use rotsv::dft::lfsr::gate_cost_comparison;
use rotsv::dft::measure::{error_bounds, max_error, required_bits, required_window};

use crate::{Check, ExperimentReport, Fidelity};

/// Largest simulated estimate error over `phases` sampling phases.
fn worst_simulated_error(period: f64, window: f64, phases: usize) -> f64 {
    let g = GatedCounter::new(window, 32);
    (0..phases)
        .map(|k| {
            let phase = period * k as f64 / phases as f64;
            let est = g.measure(period, phase).expect("oscillating");
            (est - period).abs()
        })
        .fold(0.0, f64::max)
}

/// Runs the analysis.
pub fn run(f: &Fidelity) -> ExperimentReport {
    let period = 5e-9; // the paper's 200 MHz example
    let phases = if f.is_fast() { 40 } else { 400 };
    let windows = [0.5e-6, 1e-6, 5e-6, 10e-6];
    // The simulated column uses a slightly detuned period: an exact
    // integer window/period ratio would make every phase count identical
    // and hide the quantization error entirely.
    let period_sim = period * 1.013;
    let mut rows = Vec::new();
    let mut all_within = true;
    for &t in &windows {
        let bound = max_error(period, t);
        let (e_minus, e_plus) = error_bounds(period_sim, t);
        let sim = worst_simulated_error(period_sim, t, phases);
        all_within &= sim <= e_plus.max(e_minus) * (1.0 + 1e-9);
        rows.push(vec![
            format!("{:.1}", t * 1e6),
            format!("{:.4}", bound * 1e12),
            format!("{:.4}", e_plus * 1e12),
            format!("{:.4}", sim * 1e12),
            required_bits(t, period).to_string(),
        ]);
    }

    // The paper's sizing example.
    let window_needed = required_window(period, 0.005e-9);
    let bits_needed = required_bits(window_needed, period);
    rows.push(vec![
        format!("{:.1} (sizing: E ≤ 5 ps)", window_needed * 1e6),
        "5.0000".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        bits_needed.to_string(),
    ]);

    let (counter_gates, lfsr_gates) = gate_cost_comparison(bits_needed, 6);

    let checks = vec![
        Check {
            description: "simulated counter error never exceeds the analytic bounds \
                          t/T−1 ≤ c ≤ t/T+1 ⇒ |E| ≤ T²/(t−T)"
                .to_owned(),
            passed: all_within,
        },
        Check {
            description: format!(
                "paper sizing example reproduced: T = 5 ns, E = 5 ps ⇒ t = {:.1} µs, \
                 {}-bit counter (paper: 5 µs, 10 bits)",
                window_needed * 1e6,
                bits_needed
            ),
            passed: (window_needed - 5e-6).abs() < 1e-12 && bits_needed == 10,
        },
        Check {
            description: format!(
                "the LFSR needs fewer gates than the binary counter for the same \
                 count range ({lfsr_gates} vs {counter_gates} gate equivalents)"
            ),
            passed: lfsr_gates < counter_gates,
        },
    ];
    ExperimentReport {
        id: "e7",
        title: "Counter quantization error and sizing (§IV-C, Fig. 11)".to_owned(),
        headers: vec![
            "window t (µs)".to_owned(),
            "bound T²/t (ps)".to_owned(),
            "exact E⁺ (ps)".to_owned(),
            "worst simulated |E| (ps, T detuned +1.3%)".to_owned(),
            "counter bits".to_owned(),
        ],
        rows,
        notes: vec![format!(
            "Oscillation period T = 5 ns; {phases} sampling phases per window. \
             LFSR vs counter gate cost at 10 bits: {lfsr_gates} vs {counter_gates} \
             (DFF = 6 gate equivalents) — the LFSR trades gates for a decode LUT."
        )],
        checks,
        seed: None,
        stats: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_reproduces_paper_sizing() {
        let report = run(&Fidelity::fast());
        assert!(report.all_checks_pass(), "{}", report.markdown());
    }
}
