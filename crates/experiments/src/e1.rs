//! E1 — Fig. 4: I/O-cell step-response waveforms.
//!
//! The paper applies a step at the input of a bidirectional I/O cell
//! driving a TSV and reports the propagation delay shift of the "to
//! core" output: a 3 kΩ resistive open at x = 0.5 *reduces* the delay
//! (paper: ≈ −20 ps), a 3 kΩ leakage fault *increases* it
//! (paper: ≈ +30 ps).

use rotsv::mosfet::model::Nominal;
use rotsv::num::units::Ohms;
use rotsv::ro::io_cell::{step_response, IoCellConfig};
use rotsv::spice::SpiceError;
use rotsv::tsv::TsvFault;

use crate::{Check, ExperimentReport, Fidelity};

/// Runs the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(_f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let cases = [
        ("fault-free", TsvFault::None),
        (
            "3 kΩ resistive open at x = 0.5",
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(3e3),
            },
        ),
        ("3 kΩ leakage fault", TsvFault::Leakage { r: Ohms(3e3) }),
    ];
    let mut rows = Vec::new();
    let mut delays = Vec::new();
    for (label, fault) in cases {
        let r = step_response(&IoCellConfig::new(1.1).with_fault(fault), &mut Nominal)?;
        let delay = r.delay.expect("output switches for these fault sizes");
        delays.push(delay);
        let shift = delay - delays[0];
        rows.push(vec![
            label.to_owned(),
            crate::ps(delay),
            format!("{:+.1}", shift * 1e12),
            format!("{:.3}", r.tsv.final_value()),
        ]);
    }
    let open_shift = delays[1] - delays[0];
    let leak_shift = delays[2] - delays[0];
    let checks = vec![
        Check {
            description: format!(
                "3 kΩ open at x = 0.5 reduces the propagation delay \
                 (paper ≈ −20 ps; measured {:+.1} ps)",
                open_shift * 1e12
            ),
            passed: open_shift < -5e-12,
        },
        Check {
            description: format!(
                "3 kΩ leakage increases the propagation delay \
                 (paper ≈ +30 ps; measured {:+.1} ps)",
                leak_shift * 1e12
            ),
            passed: leak_shift > 5e-12,
        },
        Check {
            description: "shifts are tens of picoseconds, not nanoseconds".to_owned(),
            passed: open_shift.abs() < 500e-12 && leak_shift.abs() < 500e-12,
        },
    ];
    Ok(ExperimentReport {
        id: "e1",
        title: "I/O cell step response under TSV faults (Fig. 4)".to_owned(),
        headers: vec![
            "case".to_owned(),
            "delay (ps)".to_owned(),
            "Δ vs fault-free (ps)".to_owned(),
            "TSV final (V)".to_owned(),
        ],
        rows,
        notes: vec![
            "V_DD = 1.1 V; rising step through TBUF_X4 driver into the TSV, \
             measured at the receiver output (\"to core\")."
                .to_owned(),
        ],
        checks,
        seed: None,
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_signatures_reproduce() {
        let report = run(&Fidelity::fast()).unwrap();
        assert!(report.all_checks_pass(), "{}", report.markdown());
        assert_eq!(report.rows.len(), 3);
    }
}
