//! CLI runner: regenerates the paper's figures and tables.
//!
//! ```text
//! experiments [e0 e1 … | all] [--fast] [--out DIR]
//! ```
//!
//! Writes one CSV per experiment into the output directory (default
//! `results/`) plus a combined `summary.md`, and prints the markdown
//! reports to stdout.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rotsv_experiments::{run_one, ExperimentReport, Fidelity};

fn main() -> ExitCode {
    let mut ids: Vec<String> = Vec::new();
    let mut fast = false;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "all" => {
                ids.extend((0..=11).map(|i| format!("e{i}")));
                ids.extend((1..=3).map(|i| format!("a{i}")));
            }
            "paper" => ids.extend((0..=8).map(|i| format!("e{i}"))),
            id if id.starts_with('e') || id.starts_with('a') => ids.push(id.to_owned()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: experiments [e0..e11 a1..a3 | paper | all] [--fast] [--out DIR]");
                return ExitCode::FAILURE;
            }
        }
    }
    if ids.is_empty() {
        ids.extend((0..=11).map(|i| format!("e{i}")));
        ids.extend((1..=3).map(|i| format!("a{i}")));
    }
    ids.dedup();

    let fidelity = if fast {
        Fidelity::fast()
    } else {
        Fidelity::full()
    };
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for id in &ids {
        let started = Instant::now();
        eprintln!("running {id} …");
        match run_one(id, &fidelity) {
            Ok(Some(report)) => {
                eprintln!("  {id} done in {:.1} s", started.elapsed().as_secs_f64());
                println!("{}", report.markdown());
                let csv_path = out_dir.join(format!("{id}.csv"));
                if let Err(e) = fs::write(&csv_path, report.csv()) {
                    eprintln!("cannot write {}: {e}", csv_path.display());
                    return ExitCode::FAILURE;
                }
                reports.push(report);
            }
            Ok(None) => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("{id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut summary = String::from("# Experiment summary\n\n");
    summary.push_str(&format!(
        "Fidelity: {}\n\n",
        if fast { "fast" } else { "full" }
    ));
    for r in &reports {
        summary.push_str(&r.markdown());
        summary.push('\n');
    }
    let summary_path = out_dir.join("summary.md");
    if let Err(e) = fs::write(&summary_path, &summary) {
        eprintln!("cannot write {}: {e}", summary_path.display());
        return ExitCode::FAILURE;
    }

    let failed: Vec<&str> = reports
        .iter()
        .filter(|r| !r.all_checks_pass())
        .map(|r| r.id)
        .collect();
    if failed.is_empty() {
        eprintln!("all shape checks passed ({} experiments)", reports.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("shape checks FAILED in: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}
