//! CLI runner: regenerates the paper's figures and tables.
//!
//! ```text
//! experiments [e0 e1 … | all] [--fast] [--out DIR] [--json]
//!             [--trace] [--metrics-out] [--threads N]
//! experiments validate-manifest FILE
//! ```
//!
//! Writes one CSV per experiment into the output directory (default
//! `results/`) plus a combined `summary.md`, and prints the markdown
//! reports to stdout. With `--json` the stdout reports are a single JSON
//! array instead. With `--metrics-out` each experiment additionally
//! writes a machine-readable run manifest `manifest_<id>.json` (git rev,
//! seed, per-phase wall breakdown, metric histograms, solver counters).
//! `--trace` prints the hierarchical span tree to stderr after each
//! experiment. `validate-manifest` checks a manifest file against the
//! schema and exits nonzero when it does not conform.

use std::fs;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rotsv_experiments::{run_one, ExperimentReport, Fidelity};
use rotsv_obs::Json;

fn usage() {
    eprintln!(
        "usage: experiments [e0..e11 a1..a3 | paper | all] [--fast] [--out DIR] \
         [--json] [--trace] [--metrics-out] [--threads N]\n\
         \x20      experiments validate-manifest FILE"
    );
}

/// `validate-manifest FILE`: parse + schema-check one manifest.
fn validate_manifest_file(path: &str) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match rotsv_obs::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match rotsv_obs::validate_manifest(&doc) {
        Ok(()) => {
            eprintln!(
                "{path}: valid manifest (schema v{})",
                rotsv_obs::SCHEMA_VERSION
            );
            ExitCode::SUCCESS
        }
        Err(problems) => {
            eprintln!("{path}: INVALID manifest:");
            for p in &problems {
                eprintln!("  - {p}");
            }
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut ids: Vec<String> = Vec::new();
    let mut fast = false;
    let mut json_out = false;
    let mut trace = false;
    let mut metrics_out = false;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "validate-manifest" => match args.next() {
                Some(file) => return validate_manifest_file(&file),
                None => {
                    eprintln!("validate-manifest requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "--fast" => fast = true,
            "--json" => json_out = true,
            "--trace" => trace = true,
            "--metrics-out" => metrics_out = true,
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => rotsv::num::parallel::set_thread_limit(NonZeroUsize::new(n)),
                None => {
                    eprintln!("--threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "all" => {
                ids.extend((0..=11).map(|i| format!("e{i}")));
                ids.extend((1..=3).map(|i| format!("a{i}")));
            }
            "paper" => ids.extend((0..=8).map(|i| format!("e{i}"))),
            id if id.starts_with('e') || id.starts_with('a') => ids.push(id.to_owned()),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if ids.is_empty() {
        ids.extend((0..=11).map(|i| format!("e{i}")));
        ids.extend((1..=3).map(|i| format!("a{i}")));
    }
    ids.dedup();

    // The manifest's phase breakdown comes from spans, so --metrics-out
    // implies tracing; --trace alone leaves the metrics registry off.
    let instrument = trace || metrics_out;
    if instrument {
        rotsv_obs::set_tracing(true);
    }
    if metrics_out {
        rotsv_obs::set_metrics(true);
    }

    let fidelity = if fast {
        Fidelity::fast()
    } else {
        Fidelity::full()
    };
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for id in &ids {
        if instrument {
            // Each manifest/trace covers exactly one experiment.
            rotsv_obs::reset();
        }
        let started = Instant::now();
        eprintln!("running {id} …");
        let outcome = {
            // Root span: the experiment id. Every analysis span (dcop,
            // transient, mc_population, …) nests underneath, so the
            // manifest's depth-1 entries are this experiment's phases.
            let _root = rotsv_obs::SpanGuard::enter(id);
            run_one(id, &fidelity)
        };
        let wall = started.elapsed().as_secs_f64();
        match outcome {
            Ok(Some(report)) => {
                eprintln!("  {id} done in {wall:.1} s");
                if !json_out {
                    println!("{}", report.markdown());
                }
                let csv_path = out_dir.join(format!("{id}.csv"));
                if let Err(e) = fs::write(&csv_path, report.csv()) {
                    eprintln!("cannot write {}: {e}", csv_path.display());
                    return ExitCode::FAILURE;
                }
                if trace {
                    eprint!("{}", rotsv_obs::span_report().render_text());
                }
                if metrics_out {
                    if let Err(e) = write_manifest(&report, fast, wall, &out_dir) {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                reports.push(report);
            }
            Ok(None) => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("{id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if json_out {
        let arr = Json::Arr(reports.iter().map(ExperimentReport::to_json).collect());
        println!("{}", arr.render_pretty());
    }

    let mut summary = String::from("# Experiment summary\n\n");
    summary.push_str(&format!(
        "Fidelity: {}\n\n",
        if fast { "fast" } else { "full" }
    ));
    for r in &reports {
        summary.push_str(&r.markdown());
        summary.push('\n');
    }
    let summary_path = out_dir.join("summary.md");
    if let Err(e) = fs::write(&summary_path, &summary) {
        eprintln!("cannot write {}: {e}", summary_path.display());
        return ExitCode::FAILURE;
    }

    let failed: Vec<&str> = reports
        .iter()
        .filter(|r| !r.all_checks_pass())
        .map(|r| r.id)
        .collect();
    if failed.is_empty() {
        eprintln!("all shape checks passed ({} experiments)", reports.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("shape checks FAILED in: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}

/// Builds and writes `manifest_<id>.json` for one finished experiment.
fn write_manifest(
    report: &ExperimentReport,
    fast: bool,
    wall: f64,
    out_dir: &std::path::Path,
) -> Result<(), String> {
    let passed = report.checks.iter().filter(|c| c.passed).count() as u64;
    let inputs = rotsv_obs::ManifestInputs {
        experiment: report.id.to_owned(),
        fidelity: if fast { "fast" } else { "full" }.to_owned(),
        threads: rotsv::num::parallel::effective_threads(usize::MAX),
        seed: report.seed,
        wall_seconds: wall,
        checks_passed: passed,
        checks_failed: report.checks.len() as u64 - passed,
        solver_stats: report.stats.as_ref().map(|s| s.to_json()),
    };
    let manifest =
        rotsv_obs::build_manifest(&inputs, &rotsv_obs::span_report(), rotsv_obs::dump_json());
    if let Err(problems) = rotsv_obs::validate_manifest(&manifest) {
        return Err(format!(
            "manifest for {} fails its own schema: {}",
            report.id,
            problems.join("; ")
        ));
    }
    let path = out_dir.join(format!("manifest_{}.json", report.id));
    fs::write(&path, manifest.render_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    eprintln!("  wrote {}", path.display());
    Ok(())
}
