//! CLI runner: regenerates the paper's figures and tables.
//!
//! ```text
//! experiments [e0 e1 … | all] [--fast] [--out DIR] [--json]
//!             [--trace] [--trace-out FILE] [--metrics-out] [--threads N]
//!             [--engine scalar|batched[:K]]
//! experiments campaign e1,e3,e5 [--fast] [--ledger FILE] [--out DIR]
//!             [--fresh] [--stop-after N] [--threads N]
//! experiments golden --check|--write [--ids e1,e3,e5] [--perturb LBL]
//!             [--golden FILE] [--threads N]
//! experiments validate-manifest FILE
//! experiments validate-trace FILE
//! experiments report [--out DIR] [--bench FILE]
//! ```
//!
//! Writes one CSV per experiment into the output directory (default
//! `results/`) plus a combined `summary.md`, and prints the markdown
//! reports to stdout. With `--json` the stdout reports are a single JSON
//! array instead. With `--metrics-out` each experiment additionally
//! writes a machine-readable run manifest `manifest_<id>.json` (git rev,
//! seed, per-phase wall breakdown, metric histograms, solver counters)
//! and keeps a live Prometheus snapshot (`metrics.prom` in the output
//! directory) refreshed once a second while the run is in flight.
//! `--trace` prints the hierarchical span tree to stderr after each
//! experiment. `--trace-out FILE` turns on the event ring and writes a
//! Chrome trace-event timeline (Perfetto-loadable) per experiment — to
//! `FILE` exactly when one experiment runs, to `FILE` with `_<id>`
//! appended to the stem otherwise. `validate-manifest` checks a
//! manifest file against the schema and exits nonzero when it does not
//! conform (a newer minor schema version only warns). `validate-trace`
//! checks that a trace file parses and carries at least one `mc_sample`
//! slice and one counter track — the CI smoke contract. `report`
//! aggregates the manifests in the output directory (plus
//! `BENCH_solver.json` when present) into one markdown trend table.
//!
//! `--engine` selects the Monte-Carlo transient engine for the figure
//! runs:
//!
//! * `auto` (the default) — scalar below the measured crossover
//!   population size (read from `BENCH_solver.json` when present),
//!   otherwise the batched refill queue at up to 16 lanes;
//! * `scalar` — the per-die reference engine;
//! * `batched[:K]` — the asynchronous K-lane refill queue (default
//!   K = 8), bit-identical per die across lane counts and within 0.5 %
//!   of scalar per ΔT;
//! * `batched-chunked[:K]` — fixed K-die batches without refill, kept
//!   as the cross-check for the refill scheduler.
//!
//! The `campaign` and `golden` subcommands do not take the flag: ledgers
//! and golden signatures are always recorded per-sample on the scalar
//! engine so their byte-identical resume/regression contracts never
//! depend on engine selection.
//!
//! `campaign` runs a set of experiments as one resumable unit backed by
//! an append-only JSONL ledger (see `rotsv-campaign`); `golden` checks
//! (or intentionally regenerates) the committed `GOLDEN.json`
//! regression signatures. See EXPERIMENTS.md for the workflow.

use std::fs;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rotsv_campaign::{
    diff_against_golden, golden_doc, run_campaign, CampaignOptions, ExperimentSignature,
    LedgerEntry, SampleSet,
};
use rotsv_experiments::campaign_sets::{sample_set, CAMPAIGN_IDS};
use rotsv_experiments::{run_one, ExperimentReport, Fidelity};
use rotsv_obs::Json;

fn usage() {
    eprintln!(
        "usage: experiments [e0..e11 a1..a3 | paper | all] [--fast] [--out DIR] \
         [--json] [--trace] [--trace-out FILE] [--metrics-out] [--threads N] \
         [--engine auto|scalar|batched[:K]|batched-chunked[:K]]\n\
         \x20      experiments campaign IDS [--fast] [--ledger FILE] [--out DIR] \
         [--fresh] [--stop-after N] [--threads N]\n\
         \x20      experiments golden --check|--write [--ids IDS] [--perturb LBL] \
         [--golden FILE] [--threads N]\n\
         \x20      experiments validate-manifest FILE\n\
         \x20      experiments validate-trace FILE\n\
         \x20      experiments report [--out DIR] [--bench FILE]\n\
         \x20      experiments serve [rotsv-server flags]\n\
         exit codes: 0 ok, 3 completed but shape checks failed, else fatal"
    );
}

/// Parses a `--threads N` value and installs the process-wide cap.
fn set_threads(value: Option<String>) -> Result<(), String> {
    match value.and_then(|n| n.parse::<usize>().ok()) {
        Some(n) => {
            rotsv::num::parallel::set_thread_limit(NonZeroUsize::new(n));
            Ok(())
        }
        None => Err("--threads requires a positive integer".into()),
    }
}

/// Parses an `--engine auto|scalar|batched[:K]|batched-chunked[:K]`
/// value.
fn parse_engine(value: &str) -> Result<rotsv::McEngine, String> {
    match value {
        "auto" => Ok(rotsv::McEngine::Auto),
        "scalar" => Ok(rotsv::McEngine::Scalar),
        "batched" => Ok(rotsv::McEngine::Batched { lanes: 8 }),
        "batched-chunked" => Ok(rotsv::McEngine::BatchedChunked { lanes: 8 }),
        other => {
            if let Some(Ok(lanes)) = other.strip_prefix("batched:").map(str::parse::<usize>) {
                if lanes > 0 {
                    return Ok(rotsv::McEngine::Batched { lanes });
                }
            }
            if let Some(Ok(lanes)) = other
                .strip_prefix("batched-chunked:")
                .map(str::parse::<usize>)
            {
                if lanes > 0 {
                    return Ok(rotsv::McEngine::BatchedChunked { lanes });
                }
            }
            Err(format!(
                "--engine expects 'auto', 'scalar', 'batched[:K]' or \
                 'batched-chunked[:K]', got '{other}'"
            ))
        }
    }
}

/// Installs the measured scalar→batched crossover and Auto lane table
/// from the committed benchmark baseline, when one is present.
/// `--engine auto` consults both per population; without a baseline the
/// library defaults hold (crossover 2, up to 16 lanes).
fn load_auto_crossover() {
    rotsv::mc::load_measured_tuning(std::path::Path::new("BENCH_solver.json"));
}

/// Splits a comma-separated id list and resolves each id to its sample
/// set, preserving order and rejecting duplicates or non-campaign ids.
fn resolve_sets(ids_csv: &str, fidelity: &Fidelity) -> Result<Vec<Box<dyn SampleSet>>, String> {
    let mut sets: Vec<Box<dyn SampleSet>> = Vec::new();
    for id in ids_csv.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if sets.iter().any(|s| s.experiment() == id) {
            return Err(format!("duplicate experiment id '{id}'"));
        }
        match sample_set(id, fidelity) {
            Some(set) => sets.push(set),
            None => {
                return Err(format!(
                    "'{id}' has no campaign definition (supported: {})",
                    CAMPAIGN_IDS.join(", ")
                ))
            }
        }
    }
    if sets.is_empty() {
        return Err("no experiment ids given".into());
    }
    Ok(sets)
}

/// Groups ledger entries by experiment (in first-seen order) and
/// computes each experiment's golden signature.
fn signatures_of(entries: &[LedgerEntry]) -> Result<Vec<ExperimentSignature>, String> {
    let mut order: Vec<&str> = Vec::new();
    for e in entries {
        if !order.contains(&e.experiment.as_str()) {
            order.push(&e.experiment);
        }
    }
    order
        .iter()
        .map(|id| {
            let group: Vec<LedgerEntry> = entries
                .iter()
                .filter(|e| e.experiment == *id)
                .cloned()
                .collect();
            ExperimentSignature::from_entries(&group)
        })
        .collect()
}

/// `campaign IDS …`: run (or resume) a resumable, ledger-backed
/// campaign over the given experiments.
fn campaign_cmd(mut args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let mut ids: Option<String> = None;
    let mut fast = false;
    let mut out_dir = PathBuf::from("results");
    let mut ledger: Option<PathBuf> = None;
    let mut opts = CampaignOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--fresh" => opts.fresh = true,
            "--stop-after" => {
                opts.stop_after = Some(
                    args.next()
                        .and_then(|n| n.parse::<usize>().ok())
                        .ok_or("--stop-after requires a positive integer")?,
                );
            }
            "--ledger" => ledger = Some(PathBuf::from(args.next().ok_or("--ledger needs a file")?)),
            "--out" => out_dir = PathBuf::from(args.next().ok_or("--out requires a directory")?),
            "--threads" => set_threads(args.next())?,
            other if !other.starts_with('-') && ids.is_none() => ids = Some(other.to_owned()),
            other => return Err(format!("unknown campaign argument: {other}")),
        }
    }
    let fidelity = if fast {
        Fidelity::fast()
    } else {
        Fidelity::full()
    };
    let sets = resolve_sets(
        &ids.ok_or("campaign requires experiment ids (e.g. e1,e3)")?,
        &fidelity,
    )?;
    let ledger_path = ledger.unwrap_or_else(|| out_dir.join("campaign.jsonl"));
    fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;

    let names: Vec<&str> = sets.iter().map(|s| s.experiment()).collect();
    eprintln!(
        "campaign [{}] ({}) -> {}",
        names.join(", "),
        if fast { "fast" } else { "full" },
        ledger_path.display()
    );
    let started = Instant::now();
    let report = run_campaign(&sets, &ledger_path, &opts)?;
    eprintln!(
        "campaign: {} samples total, {} resumed from ledger, {} run now ({:.1} s)",
        report.total,
        report.resumed,
        report.ran,
        started.elapsed().as_secs_f64()
    );
    for (exp, index, detail) in &report.failures {
        eprintln!("  FAILED {exp} sample {index}: {detail}");
    }
    if report.stopped_early {
        eprintln!(
            "campaign stopped early (--stop-after); rerun the same command to resume from {}",
            ledger_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    // Campaign complete: condense the ledger into golden signatures and
    // write them next to the ledger for inspection / promotion.
    let loaded = rotsv_campaign::read_ledger(&ledger_path)?;
    let signatures = signatures_of(&loaded.entries)?;
    for sig in &signatures {
        eprintln!(
            "  {}: {} fault points, digest {}",
            sig.experiment,
            sig.points.len(),
            sig.digest
        );
    }
    let doc = Json::Obj(vec![
        ("git_rev".into(), Json::Str(rotsv_obs::git_rev())),
        (
            "ledger".into(),
            Json::Str(ledger_path.display().to_string()),
        ),
        ("entries".into(), Json::Num(loaded.entries.len() as f64)),
        ("failures".into(), Json::Num(report.failures.len() as f64)),
        (
            "golden".into(),
            golden_doc(&signatures, if fast { "fast" } else { "full" }),
        ),
    ]);
    let sig_path = out_dir.join("campaign_signatures.json");
    fs::write(&sig_path, doc.render_pretty())
        .map_err(|e| format!("cannot write {}: {e}", sig_path.display()))?;
    eprintln!("  wrote {}", sig_path.display());
    if report.failures.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "campaign completed with {} failed samples",
            report.failures.len()
        );
        Ok(ExitCode::FAILURE)
    }
}

/// Applies the `--perturb` drill: scales every `kind: "value"` payload
/// of fault points whose label contains `label` by +1 %.
fn perturb_entries(entries: &mut [LedgerEntry], label: &str) -> usize {
    let mut hit = 0;
    for e in entries {
        let point = e.payload.get("point").and_then(Json::as_str).unwrap_or("");
        if !point.contains(label) {
            continue;
        }
        if let Some(v) = e.payload.get("value").and_then(Json::as_f64) {
            let point = point.to_owned();
            e.payload = rotsv_campaign::value_payload(&point, v * 1.01);
            hit += 1;
        }
    }
    hit
}

/// `golden --check|--write …`: recompute golden signatures (always at
/// fast fidelity — the profile `GOLDEN.json` pins) and compare against,
/// or intentionally regenerate, the committed file.
fn golden_cmd(mut args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let mut check = false;
    let mut write = false;
    let mut ids = CAMPAIGN_IDS.join(",");
    let mut golden_path = PathBuf::from("GOLDEN.json");
    let mut perturb: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--write" => write = true,
            "--ids" => ids = args.next().ok_or("--ids requires a csv list")?,
            "--golden" => golden_path = PathBuf::from(args.next().ok_or("--golden needs a file")?),
            "--perturb" => perturb = Some(args.next().ok_or("--perturb needs a point substring")?),
            "--threads" => set_threads(args.next())?,
            other => return Err(format!("unknown golden argument: {other}")),
        }
    }
    if check == write {
        return Err("golden requires exactly one of --check or --write".into());
    }

    let fidelity = Fidelity::fast();
    let sets = resolve_sets(&ids, &fidelity)?;
    let git_rev = rotsv_obs::git_rev();
    let started = Instant::now();
    let mut entries = Vec::new();
    for set in &sets {
        eprintln!(
            "golden: running {} ({} samples) …",
            set.experiment(),
            set.len()
        );
        entries.extend(rotsv_campaign::collect_entries(set.as_ref(), &git_rev));
    }
    if let Some(label) = &perturb {
        let hit = perturb_entries(&mut entries, label);
        eprintln!("golden: perturbed {hit} sample values (+1 %) on points matching '{label}'");
    }
    let failed: Vec<&LedgerEntry> = entries
        .iter()
        .filter(|e| e.status == rotsv_campaign::SampleStatus::Failed)
        .collect();
    for e in &failed {
        eprintln!(
            "  FAILED {} sample {}: {}",
            e.experiment,
            e.index,
            e.payload.render()
        );
    }
    let signatures = signatures_of(&entries)?;
    eprintln!(
        "golden: {} experiments, {} samples in {:.1} s",
        signatures.len(),
        entries.len(),
        started.elapsed().as_secs_f64()
    );

    if write {
        let doc = golden_doc(&signatures, "fast");
        fs::write(&golden_path, doc.render_pretty())
            .map_err(|e| format!("cannot write {}: {e}", golden_path.display()))?;
        for sig in &signatures {
            println!(
                "{}: digest {} ({} fault points)",
                sig.experiment,
                sig.digest,
                sig.points.len()
            );
        }
        println!("wrote {}", golden_path.display());
        if !failed.is_empty() {
            eprintln!(
                "refusing to bless goldens with {} failed samples",
                failed.len()
            );
            return Ok(ExitCode::FAILURE);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let golden_text = fs::read_to_string(&golden_path)
        .map_err(|e| format!("cannot read {}: {e}", golden_path.display()))?;
    let golden = rotsv_obs::json::parse(&golden_text)
        .map_err(|e| format!("{}: {e}", golden_path.display()))?;
    let drifts = diff_against_golden(&signatures, &golden)?;
    for sig in &signatures {
        let stored = golden
            .get("experiments")
            .and_then(Json::as_arr)
            .and_then(|arr| {
                arr.iter()
                    .find(|e| e.get("experiment").and_then(Json::as_str) == Some(&sig.experiment))
            })
            .and_then(|e| e.get("digest"))
            .and_then(Json::as_str)
            .unwrap_or("?");
        println!(
            "{}: digest {} vs golden {} ({})",
            sig.experiment,
            sig.digest,
            stored,
            if sig.digest == stored {
                "identical"
            } else {
                "differs — checking tolerance bands"
            }
        );
    }
    if drifts.is_empty() && failed.is_empty() {
        println!(
            "golden check PASSED: {} experiments within tolerance of {}",
            signatures.len(),
            golden_path.display()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!("golden check FAILED: {} drifted metrics", drifts.len());
        for d in &drifts {
            println!("  DRIFT {d}");
        }
        if !failed.is_empty() {
            println!("  plus {} failed samples (see above)", failed.len());
        }
        Ok(ExitCode::FAILURE)
    }
}

/// `validate-manifest FILE`: parse + schema-check one manifest.
fn validate_manifest_file(path: &str) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match rotsv_obs::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match rotsv_obs::validate_manifest(&doc) {
        Ok(warnings) => {
            for w in &warnings {
                eprintln!("{path}: warning: {w}");
            }
            eprintln!(
                "{path}: valid manifest (schema v{})",
                rotsv_obs::SCHEMA_VERSION
            );
            ExitCode::SUCCESS
        }
        Err(problems) => {
            eprintln!("{path}: INVALID manifest:");
            for p in &problems {
                eprintln!("  - {p}");
            }
            ExitCode::FAILURE
        }
    }
}

/// `validate-trace FILE`: the CI smoke contract for trace exports — the
/// file must parse as JSON, carry a `traceEvents` array with at least
/// one `mc_sample` complete-event slice, and at least one counter track.
fn validate_trace_file(path: &str) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match rotsv_obs::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        eprintln!("{path}: missing 'traceEvents' array");
        return ExitCode::FAILURE;
    };
    let ph = |e: &Json| e.get("ph").and_then(Json::as_str).map(str::to_owned);
    let samples = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(Json::as_str) == Some("mc_sample")
                && ph(e).as_deref() == Some("X")
        })
        .count();
    let counters = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("C"))
        .count();
    let mut problems = Vec::new();
    if samples == 0 {
        problems.push("no 'mc_sample' slices (ph \"X\")".to_owned());
    }
    if counters == 0 {
        problems.push("no counter tracks (ph \"C\")".to_owned());
    }
    if problems.is_empty() {
        eprintln!(
            "{path}: valid trace ({} events, {samples} mc_sample slices, {counters} counter points)",
            events.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{path}: INVALID trace:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        ExitCode::FAILURE
    }
}

/// One manifest's row of the `report` trend table.
struct ReportRow {
    experiment: String,
    fidelity: String,
    wall_seconds: f64,
    checks_passed: f64,
    checks_failed: f64,
    factorizations: Option<f64>,
    reanalyses: Option<f64>,
    lu_numeric: Option<(f64, f64)>, // (count, mean seconds)
    ring_dropped: Option<f64>,
}

fn report_row(doc: &Json) -> Option<ReportRow> {
    let hist_stat = |name: &str| -> Option<(f64, f64)> {
        let h = doc.get("metrics")?.get("histograms")?.get(name)?;
        Some((
            h.get("count").and_then(Json::as_f64)?,
            h.get("mean").and_then(Json::as_f64)?,
        ))
    };
    Some(ReportRow {
        experiment: doc.get("experiment")?.as_str()?.to_owned(),
        fidelity: doc
            .get("fidelity")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned(),
        wall_seconds: doc.get("wall_seconds").and_then(Json::as_f64)?,
        checks_passed: doc
            .get("checks")
            .and_then(|c| c.get("passed"))
            .and_then(Json::as_f64)?,
        checks_failed: doc
            .get("checks")
            .and_then(|c| c.get("failed"))
            .and_then(Json::as_f64)?,
        factorizations: doc
            .get("solver_stats")
            .and_then(|s| s.get("factorizations"))
            .and_then(Json::as_f64),
        reanalyses: doc
            .get("solver_stats")
            .and_then(|s| s.get("symbolic_analyses"))
            .and_then(Json::as_f64),
        lu_numeric: hist_stat("lu.numeric"),
        ring_dropped: doc
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("mc.ring_dropped_events"))
            .and_then(Json::as_f64),
    })
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "—".to_owned(), |n| format!("{n}"))
}

/// `report [--out DIR] [--bench FILE]`: aggregate every
/// `manifest_<id>.json` in the output directory — plus the committed
/// solver benchmark baseline when present — into one markdown trend
/// table on stdout.
fn report_cmd(mut args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let mut out_dir = PathBuf::from("results");
    let mut bench_path = PathBuf::from("BENCH_solver.json");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(args.next().ok_or("--out requires a directory")?),
            "--bench" => bench_path = PathBuf::from(args.next().ok_or("--bench needs a file")?),
            other => return Err(format!("unknown report argument: {other}")),
        }
    }

    let mut rows: Vec<ReportRow> = Vec::new();
    let entries =
        fs::read_dir(&out_dir).map_err(|e| format!("cannot read {}: {e}", out_dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("manifest_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for path in &paths {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = rotsv_obs::json::parse(&text)
            .map_err(|e| format!("{}: not valid JSON: {e}", path.display()))?;
        match rotsv_obs::validate_manifest(&doc) {
            Ok(warnings) => {
                for w in warnings {
                    eprintln!("{}: warning: {w}", path.display());
                }
            }
            Err(problems) => {
                eprintln!(
                    "{}: skipped, fails manifest schema: {}",
                    path.display(),
                    problems.join("; ")
                );
                continue;
            }
        }
        if let Some(row) = report_row(&doc) {
            rows.push(row);
        }
    }
    if rows.is_empty() {
        eprintln!(
            "report: no valid manifest_<id>.json under {} (run with --metrics-out first)",
            out_dir.display()
        );
        return Ok(ExitCode::FAILURE);
    }

    println!("# Experiment report\n");
    println!(
        "| experiment | fidelity | wall s | checks | factorizations | analyses | \
         lu.numeric n | lu.numeric mean µs | ring drops |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for r in &rows {
        println!(
            "| {} | {} | {:.2} | {}/{} | {} | {} | {} | {} | {} |",
            r.experiment,
            r.fidelity,
            r.wall_seconds,
            r.checks_passed,
            r.checks_passed + r.checks_failed,
            fmt_opt(r.factorizations),
            fmt_opt(r.reanalyses),
            fmt_opt(r.lu_numeric.map(|(n, _)| n)),
            fmt_opt(
                r.lu_numeric
                    .map(|(_, mean)| (mean * 1e6 * 1e3).round() / 1e3)
            ),
            fmt_opt(r.ring_dropped),
        );
    }

    // The committed solver baseline, for trend context next to the runs.
    if let Ok(text) = fs::read_to_string(&bench_path) {
        if let Ok(doc) = rotsv_obs::json::parse(&text) {
            let mut bench_rows: Vec<(String, f64)> = Vec::new();
            if let Json::Obj(sections) = &doc {
                for (section, body) in sections {
                    if let Json::Obj(fields) = body {
                        for (key, value) in fields {
                            if let Some(v) = value.as_f64() {
                                if key.ends_with("_s") || key.ends_with("seconds") {
                                    bench_rows.push((format!("{section}.{key}"), v));
                                }
                            }
                        }
                    }
                }
            }
            if !bench_rows.is_empty() {
                println!("\n## Solver baseline ({})\n", bench_path.display());
                println!("| measurement | seconds |");
                println!("|---|---:|");
                for (name, v) in &bench_rows {
                    println!("| {name} | {v:.6} |");
                }
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `experiments serve` — run the resident screening daemon in the
/// harness binary, accepting the same flags as `rotsv-server`. Blocks
/// until a client sends a `shutdown` request.
fn serve_cmd(args: impl Iterator<Item = String>) -> ExitCode {
    let args: Vec<String> = args.collect();
    let config = match rotsv_server::ServerConfig::parse_args(&args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    match rotsv_server::Server::start(config) {
        Ok(server) => {
            println!("listening on {}", server.addr());
            match server.wait() {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("serve: shutdown error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut ids: Vec<String> = Vec::new();
    let mut fast = false;
    let mut json_out = false;
    let mut trace = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out = false;
    let mut out_dir = PathBuf::from("results");
    // Figure runs default to the auto engine; an explicit --engine
    // overrides it below. Campaign/golden are unaffected: they measure
    // per-sample on the scalar path regardless of this selection.
    rotsv::set_mc_engine(rotsv::McEngine::Auto);
    load_auto_crossover();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "validate-manifest" => match args.next() {
                Some(file) => return validate_manifest_file(&file),
                None => {
                    eprintln!("validate-manifest requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "validate-trace" => match args.next() {
                Some(file) => return validate_trace_file(&file),
                None => {
                    eprintln!("validate-trace requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "report" => {
                return report_cmd(args).unwrap_or_else(|e| {
                    eprintln!("report: {e}");
                    usage();
                    ExitCode::FAILURE
                })
            }
            "campaign" => {
                return campaign_cmd(args).unwrap_or_else(|e| {
                    eprintln!("campaign: {e}");
                    usage();
                    ExitCode::FAILURE
                })
            }
            "golden" => {
                return golden_cmd(args).unwrap_or_else(|e| {
                    eprintln!("golden: {e}");
                    usage();
                    ExitCode::FAILURE
                })
            }
            "serve" => return serve_cmd(args),
            "--fast" => fast = true,
            "--json" => json_out = true,
            "--trace" => trace = true,
            "--trace-out" => match args.next() {
                Some(file) => trace_out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--trace-out requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-out" => metrics_out = true,
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => rotsv::num::parallel::set_thread_limit(NonZeroUsize::new(n)),
                None => {
                    eprintln!("--threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--engine" => match args.next().as_deref().map(parse_engine) {
                Some(Ok(engine)) => rotsv::set_mc_engine(engine),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--engine requires a value (scalar or batched[:K])");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "all" => {
                ids.extend((0..=11).map(|i| format!("e{i}")));
                ids.extend((1..=3).map(|i| format!("a{i}")));
            }
            "paper" => ids.extend((0..=8).map(|i| format!("e{i}"))),
            id if id.starts_with('e') || id.starts_with('a') => ids.push(id.to_owned()),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if ids.is_empty() {
        ids.extend((0..=11).map(|i| format!("e{i}")));
        ids.extend((1..=3).map(|i| format!("a{i}")));
    }
    ids.dedup();

    // The manifest's phase breakdown comes from spans, so --metrics-out
    // implies tracing; --trace alone leaves the metrics registry off.
    // --trace-out additionally turns on the event ring (spans alone
    // cannot render the lane timeline).
    let instrument = trace || metrics_out || trace_out.is_some();
    if instrument {
        rotsv_obs::set_tracing(true);
    }
    if metrics_out {
        rotsv_obs::set_metrics(true);
    }
    if trace_out.is_some() {
        rotsv_obs::set_events(true);
    }

    let fidelity = if fast {
        Fidelity::fast()
    } else {
        Fidelity::full()
    };
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    // Live Prometheus exposition while the run is in flight; dropping
    // the flusher (any exit path) writes one final snapshot.
    let _flusher = metrics_out.then(|| {
        rotsv_obs::PrometheusFlusher::start(
            out_dir.join("metrics.prom"),
            std::time::Duration::from_secs(1),
        )
    });

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for id in &ids {
        if instrument {
            // Each manifest/trace covers exactly one experiment.
            rotsv_obs::reset();
        }
        let started = Instant::now();
        eprintln!("running {id} …");
        let outcome = {
            // Root span: the experiment id. Every analysis span (dcop,
            // transient, mc_population, …) nests underneath, so the
            // manifest's depth-1 entries are this experiment's phases.
            let _root = rotsv_obs::SpanGuard::enter(id);
            run_one(id, &fidelity)
        };
        let wall = started.elapsed().as_secs_f64();
        match outcome {
            Ok(Some(report)) => {
                eprintln!("  {id} done in {wall:.1} s");
                if !json_out {
                    println!("{}", report.markdown());
                }
                let csv_path = out_dir.join(format!("{id}.csv"));
                if let Err(e) = fs::write(&csv_path, report.csv()) {
                    eprintln!("cannot write {}: {e}", csv_path.display());
                    return ExitCode::FAILURE;
                }
                if trace {
                    eprint!("{}", rotsv_obs::span_report().render_text());
                }
                if let Some(base) = &trace_out {
                    // Write before the next experiment's reset clears
                    // the ring; one run gets the exact path, a multi-id
                    // run derives one file per experiment.
                    let path = if ids.len() == 1 {
                        base.clone()
                    } else {
                        trace_path_for(base, id)
                    };
                    if let Err(e) = rotsv_obs::write_chrome_trace(&path) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    eprintln!("  wrote {}", path.display());
                }
                if metrics_out {
                    if let Err(e) = write_manifest(&report, fast, wall, &out_dir) {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                reports.push(report);
            }
            Ok(None) => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("{id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if json_out {
        let arr = Json::Arr(reports.iter().map(ExperimentReport::to_json).collect());
        println!("{}", arr.render_pretty());
    }

    // Merge into the existing summary (if any) section by section: a
    // subset run must not delete the sections of experiments it did not
    // touch. See `rotsv_experiments::summary`.
    let summary_path = out_dir.join("summary.md");
    let existing = fs::read_to_string(&summary_path).ok();
    let sections: Vec<(String, String)> = reports
        .iter()
        .map(|r| (r.id.to_owned(), r.markdown()))
        .collect();
    let summary = rotsv_experiments::summary::merge_summary(
        existing.as_deref(),
        &sections,
        if fast { "fast" } else { "full" },
    );
    if let Err(e) = fs::write(&summary_path, &summary) {
        eprintln!("cannot write {}: {e}", summary_path.display());
        return ExitCode::FAILURE;
    }

    let failed: Vec<&str> = reports
        .iter()
        .filter(|r| !r.all_checks_pass())
        .map(|r| r.id)
        .collect();
    if failed.is_empty() {
        eprintln!("all shape checks passed ({} experiments)", reports.len());
        ExitCode::SUCCESS
    } else {
        // Exit 3 distinguishes "ran to completion but the physics
        // shape checks failed" from a crash or usage error (exit 1):
        // CI treats 3 as an expected outcome on fast-fidelity smokes
        // and anything else as fatal.
        eprintln!("shape checks FAILED in: {}", failed.join(", "));
        ExitCode::from(3)
    }
}

/// `target/trace.json` + `e3` → `target/trace_e3.json`.
fn trace_path_for(base: &std::path::Path, id: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let name = match base.extension().and_then(|s| s.to_str()) {
        Some(ext) => format!("{stem}_{id}.{ext}"),
        None => format!("{stem}_{id}"),
    };
    base.with_file_name(name)
}

/// Builds and writes `manifest_<id>.json` for one finished experiment.
fn write_manifest(
    report: &ExperimentReport,
    fast: bool,
    wall: f64,
    out_dir: &std::path::Path,
) -> Result<(), String> {
    let passed = report.checks.iter().filter(|c| c.passed).count() as u64;
    let inputs = rotsv_obs::ManifestInputs {
        experiment: report.id.to_owned(),
        fidelity: if fast { "fast" } else { "full" }.to_owned(),
        threads: rotsv::num::parallel::effective_threads(usize::MAX),
        seed: report.seed,
        wall_seconds: wall,
        checks_passed: passed,
        checks_failed: report.checks.len() as u64 - passed,
        solver_stats: report.stats.as_ref().map(|s| s.to_json()),
    };
    let manifest =
        rotsv_obs::build_manifest(&inputs, &rotsv_obs::span_report(), rotsv_obs::dump_json());
    match rotsv_obs::validate_manifest(&manifest) {
        Ok(warnings) => {
            for w in warnings {
                eprintln!("  manifest warning ({}): {w}", report.id);
            }
        }
        Err(problems) => {
            return Err(format!(
                "manifest for {} fails its own schema: {}",
                report.id,
                problems.join("; ")
            ));
        }
    }
    let path = out_dir.join(format!("manifest_{}.json", report.id));
    fs::write(&path, manifest.render_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    eprintln!("  wrote {}", path.display());
    Ok(())
}
