//! E11 — extension: static supply-current (IDDQ-style) signatures.
//!
//! A pinhole leak forms a DC path from the TSV to the substrate, so it
//! also shows up as elevated static supply current while the driver holds
//! the TSV high. A micro-void open does **not** — it is invisible to a
//! current test. This experiment quantifies both, motivating the paper's
//! delay-based method as the one that covers *both* fault families with
//! the same DfT.

use rotsv::mosfet::model::Nominal;
use rotsv::mosfet::tech45::DriveStrength;
use rotsv::num::units::Ohms;
use rotsv::spice::{Circuit, DcOpSpec, SourceWaveform, SpiceError};
use rotsv::stdcell::CellBuilder;
use rotsv::tsv::{Tsv, TsvFault, TsvModel, TsvTech};

use crate::{Check, ExperimentReport, Fidelity};

/// Static supply current (amps) of one I/O cell holding its TSV high.
fn static_current(fault: TsvFault, vdd_v: f64) -> Result<f64, SpiceError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vs = ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(vdd_v));
    let oe = ckt.node("OE");
    let oe_b = ckt.node("OE_B");
    ckt.add_vsource(oe, Circuit::GROUND, SourceWaveform::dc(vdd_v));
    ckt.add_vsource(oe_b, Circuit::GROUND, SourceWaveform::dc(0.0));
    let input = ckt.node("in");
    ckt.add_vsource(input, Circuit::GROUND, SourceWaveform::dc(vdd_v));
    let tsv_front = ckt.node("tsv");
    let out = ckt.node("to_core");
    Tsv::new(TsvTech::default(), fault).stamp(&mut ckt, tsv_front, TsvModel::Lumped);
    let mut vary = Nominal;
    let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
    cells.tri_state_buffer("drv", input, tsv_front, oe, oe_b, DriveStrength::X4);
    cells.receiver_buffer("rcv", tsv_front, out);
    let sol = ckt.dcop(&DcOpSpec::default())?;
    // Current delivered by the supply (negated branch convention).
    Ok(-sol.source_current(vs))
}

/// Runs the supply-current comparison.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(_f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let cases = [
        ("fault-free", TsvFault::None),
        (
            "3 kΩ open at x = 0.5",
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(3e3),
            },
        ),
        ("10 kΩ leakage", TsvFault::Leakage { r: Ohms(10e3) }),
        ("3 kΩ leakage", TsvFault::Leakage { r: Ohms(3e3) }),
        ("1 kΩ leakage", TsvFault::Leakage { r: Ohms(1e3) }),
    ];
    let mut rows = Vec::new();
    let mut currents = Vec::new();
    for (label, fault) in cases {
        let i = static_current(fault, 1.1)?;
        currents.push(i);
        rows.push(vec![
            label.to_owned(),
            format!("{:.3}", i * 1e6),
            format!("{:.1}x", i / currents[0]),
        ]);
    }
    let i_ff = currents[0];
    let i_open = currents[1];
    let i_leak3k = currents[3];
    let checks = vec![
        Check {
            description: format!(
                "leakage produces a large static-current signature \
                 ({:.1}× the fault-free current at 3 kΩ)",
                i_leak3k / i_ff
            ),
            passed: i_leak3k > 10.0 * i_ff,
        },
        Check {
            description: "a resistive open is invisible to the current test \
                          (within 5 % of fault-free)"
                .to_owned(),
            passed: (i_open - i_ff).abs() < 0.05 * i_ff.max(1e-12),
        },
        Check {
            description: "fault-free static current is subthreshold-leakage small \
                          (< 10 µA)"
                .to_owned(),
            passed: i_ff < 10e-6,
        },
    ];
    Ok(ExperimentReport {
        id: "e11",
        title: "Static supply-current signatures (extension: IDDQ comparison)".to_owned(),
        headers: vec![
            "case".to_owned(),
            "I_DD (µA)".to_owned(),
            "vs fault-free".to_owned(),
        ],
        rows,
        notes: vec![
            "Driver holds the TSV high at V_DD = 1.1 V. Current testing \
             complements but cannot replace the ΔT method: opens carry no \
             static-current signature."
                .to_owned(),
        ],
        checks,
        seed: None,
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_signatures_reproduce() {
        let report = run(&Fidelity::fast()).unwrap();
        assert!(report.all_checks_pass(), "{}", report.markdown());
    }
}
