//! E10 — extension: fault-size diagnosis from ΔT.
//!
//! Calibrates ΔT-vs-size curves for both fault families on a nominal
//! die, then injects fault sizes *not* in the calibration set and checks
//! that inverse interpolation recovers them. This builds on the
//! diagnosis line of work the paper cites (\[10\] input sensitivity
//! analysis, \[14\] radar-like diagnosis).

use rotsv::aliasing::FaultFamily;
use rotsv::diagnose::DiagnosisCurve;
use rotsv::num::units::Ohms;
use rotsv::spice::SpiceError;
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

use crate::{Check, ExperimentReport, Fidelity};

/// Runs the diagnosis experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let bench = TestBench::new(f.n_segments());
    let vdd = 1.1;
    let die = Die::nominal();

    // The calibration grids are never thinned: sparse curves would turn
    // interpolation error into (apparent) diagnosis error.
    let open_curve = DiagnosisCurve::calibrate(
        &bench,
        vdd,
        FaultFamily::ResistiveOpen,
        &[0.25e3, 0.5e3, 1e3, 2e3, 4e3, 8e3],
    )?;
    let leak_curve = DiagnosisCurve::calibrate(
        &bench,
        vdd,
        FaultFamily::Leakage,
        &[2.5e3, 3.5e3, 5e3, 8e3, 15e3, 40e3],
    )?;

    // Unseen fault sizes to diagnose.
    let open_truths = [0.75e3, 1.5e3, 3e3];
    let leak_truths = [3e3, 6e3, 12e3];
    let mut rows = Vec::new();
    let mut max_rel_err: f64 = 0.0;
    for &truth in &open_truths {
        let faults = {
            let mut v = vec![TsvFault::None; bench.n_segments];
            v[0] = TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(truth),
            };
            v
        };
        let dt = bench
            .measure_delta_t(vdd, &faults, &[0], &die)?
            .delta()
            .expect("opens oscillate");
        let est = open_curve.estimate_size(dt).value();
        let rel = (est - truth).abs() / truth;
        max_rel_err = max_rel_err.max(rel);
        rows.push(vec![
            "open".to_owned(),
            format!("{truth:.0}"),
            format!("{est:.0}"),
            format!("{:.1}%", rel * 100.0),
        ]);
    }
    for &truth in &leak_truths {
        let faults = {
            let mut v = vec![TsvFault::None; bench.n_segments];
            v[0] = TsvFault::Leakage { r: Ohms(truth) };
            v
        };
        let dt = bench
            .measure_delta_t(vdd, &faults, &[0], &die)?
            .delta()
            .expect("these leak sizes oscillate at 1.1 V");
        let est = leak_curve.estimate_size(dt).value();
        let rel = (est - truth).abs() / truth;
        max_rel_err = max_rel_err.max(rel);
        rows.push(vec![
            "leak".to_owned(),
            format!("{truth:.0}"),
            format!("{est:.0}"),
            format!("{:.1}%", rel * 100.0),
        ]);
    }

    let checks = vec![Check {
        description: format!(
            "unseen fault sizes are diagnosed within 35 % from ΔT alone \
             (worst error {:.1} %)",
            max_rel_err * 100.0
        ),
        passed: max_rel_err < 0.35,
    }];
    Ok(ExperimentReport {
        id: "e10",
        title: "Fault-size diagnosis from ΔT (extension)".to_owned(),
        headers: vec![
            "family".to_owned(),
            "injected (Ω)".to_owned(),
            "diagnosed (Ω)".to_owned(),
            "error".to_owned(),
        ],
        rows,
        notes: vec![
            "Nominal die; calibration and measurement at V_DD = 1.1 V. Under \
             process variation the estimate inherits the aliasing band of E9."
                .to_owned(),
        ],
        checks,
        seed: None,
        stats: None,
    })
}
