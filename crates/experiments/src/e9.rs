//! E9 — extension: quantitative aliasing analysis (minimum detectable
//! fault size vs supply voltage).
//!
//! The paper's Section IV-C closes with "a quantitative analysis of
//! aliasing due to process variations is an item for future work". This
//! experiment performs it: at each voltage, sweep the fault size, compare
//! the Monte-Carlo faulty population against the fault-free acceptance
//! band, and report the mildest fault that is still always detected.

use rotsv::aliasing::{analyze_aliasing, FaultFamily};
use rotsv::spice::SpiceError;
use rotsv::variation::ProcessSpread;
use rotsv::TestBench;

use crate::{Check, ExperimentReport, Fidelity};

/// Runs the analysis.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    // A 2-segment bench keeps this sweep tractable: the aliasing
    // mechanism (uncancelled variation of the segment under test) does
    // not depend on the group size.
    let bench = TestBench::fast(2);
    let voltages: Vec<f64> = if f.is_fast() {
        vec![1.1]
    } else {
        vec![0.95, 1.2]
    };
    let open_sizes: Vec<f64> = f.thin(&[1e3, 2e3, 4e3, 1e6]);
    let leak_sizes: Vec<f64> = f.thin(&[10e3, 6e3, 4e3, 3e3]);
    let samples = f.mc_samples().min(8);
    let guard = 5e-12;

    let mut rows = Vec::new();
    let mut open_mins = Vec::new();
    let mut leak_mins = Vec::new();
    for &vdd in &voltages {
        let opens = analyze_aliasing(
            &bench,
            vdd,
            FaultFamily::ResistiveOpen,
            &open_sizes,
            ProcessSpread::paper(),
            909,
            samples,
            guard,
        )?;
        let leaks = analyze_aliasing(
            &bench,
            vdd,
            FaultFamily::Leakage,
            &leak_sizes,
            ProcessSpread::paper(),
            909,
            samples,
            guard,
        )?;
        let open_min = opens.minimum_detectable(1.0);
        let leak_min = leaks.minimum_detectable(1.0);
        open_mins.push((vdd, open_min));
        leak_mins.push((vdd, leak_min));
        rows.push(vec![
            format!("{vdd:.2}"),
            open_min.map_or("none".into(), |r| format!("{:.0}", r)),
            leak_min.map_or("none".into(), |r| format!("{:.0}", r)),
            format!(
                "{:.2}",
                opens
                    .points
                    .iter()
                    .map(|p| p.alias_fraction)
                    .fold(0.0, f64::max)
            ),
        ]);
    }

    // Multi-voltage coverage: the union over voltages dominates any single
    // voltage (higher V detects smaller opens, lower V weaker leaks).
    let best_single_leak = leak_mins
        .iter()
        .filter_map(|&(_, m)| m)
        .fold(f64::NEG_INFINITY, f64::max);
    let lowest_v_leak = leak_mins.first().and_then(|&(_, m)| m);
    let checks = vec![
        Check {
            description: "a full open (1 MΩ) is always detected at every voltage".to_owned(),
            passed: open_mins.iter().all(|&(_, m)| m.is_some()),
        },
        Check {
            description: format!(
                "the weakest guaranteed-detectable leak over all voltages is set by \
                 the lowest voltage (min detectable R_L {:?} at {:.2} V vs best \
                 overall {best_single_leak:.0} Ω)",
                lowest_v_leak, voltages[0]
            ),
            passed: match lowest_v_leak {
                Some(m) => m >= best_single_leak - 1e-9,
                None => false,
            },
        },
    ];
    Ok(ExperimentReport {
        id: "e9",
        title: "Minimum detectable fault size vs V_DD (extension: quantitative aliasing)"
            .to_owned(),
        headers: vec![
            "V_DD (V)".to_owned(),
            "min detectable R_O (Ω, x = 0.5)".to_owned(),
            "weakest detectable R_L (Ω)".to_owned(),
            "worst open alias fraction".to_owned(),
        ],
        rows,
        notes: vec![format!(
            "{samples} MC samples per population; fault-free band = range + {:.0} ps \
             guard. 'Detectable' = 100 % of MC dies flagged.",
            guard * 1e12
        )],
        checks,
        seed: None,
        stats: None,
    })
}
