//! E3 — Fig. 7: Monte-Carlo spread of ΔT vs supply voltage for a
//! fault-free TSV and a 1 kΩ resistive open.
//!
//! Under random process variation (3σ(V_th) = 30 mV, 3σ(L_eff) = 10 %)
//! the fault-free and faulty ΔT populations overlap at low V_DD and
//! separate as the voltage rises — higher supply voltage gives better
//! resolution for resistive opens.

use rotsv::mc::delta_t_population;
use rotsv::num::stats::{range_overlap, Summary};
use rotsv::num::units::Ohms;
use rotsv::spice::SolverStats;
use rotsv::spice::SpiceError;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::TestBench;

use crate::{Check, ExperimentReport, Fidelity};

/// Per-voltage population pair.
#[derive(Debug, Clone)]
pub struct VoltageRow {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Fault-free population summary.
    pub fault_free: Summary,
    /// Faulty population summary.
    pub faulty: Summary,
    /// Range-overlap of the two populations (0 = fully separated).
    pub overlap: f64,
    /// Solver work summed over both populations at this voltage.
    pub stats: SolverStats,
}

/// Runs the populations and returns the raw rows (also used by E6-style
/// analyses and the benches).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn populations(f: &Fidelity, seed: u64) -> Result<Vec<VoltageRow>, SpiceError> {
    let bench = TestBench::new(f.n_segments());
    let voltages: Vec<f64> = f.thin(&[0.8, 0.95, 1.1, 1.2]);
    let samples = f.mc_samples();
    let spread = ProcessSpread::paper();
    let ff_faults = vec![TsvFault::None; bench.n_segments];
    let mut open_faults = ff_faults.clone();
    open_faults[0] = TsvFault::ResistiveOpen {
        x: 0.5,
        r: Ohms(1e3),
    };
    let mut rows = Vec::new();
    for &vdd in &voltages {
        let ff = delta_t_population(&bench, vdd, &ff_faults, &[0], spread, seed, samples)?;
        let open = delta_t_population(&bench, vdd, &open_faults, &[0], spread, seed, samples)?;
        let mut stats = ff.stats;
        stats.merge(&open.stats);
        rows.push(VoltageRow {
            vdd,
            fault_free: Summary::of(&ff.deltas),
            faulty: Summary::of(&open.deltas),
            overlap: range_overlap(&ff.deltas, &open.deltas),
            stats,
        });
    }
    Ok(rows)
}

/// Runs the Fig. 7 experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let data = populations(f, 1007)?;
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.vdd),
                format!(
                    "[{}, {}]",
                    crate::ps(r.fault_free.min),
                    crate::ps(r.fault_free.max)
                ),
                format!("[{}, {}]", crate::ps(r.faulty.min), crate::ps(r.faulty.max)),
                format!("{:+.1}", (r.faulty.mean - r.fault_free.mean) * 1e12),
                format!("{:.2}", r.overlap),
            ]
        })
        .collect();

    let first = data.first().expect("non-empty");
    let last = data.last().expect("non-empty");
    let checks = vec![
        Check {
            description: format!(
                "the open's ΔT population sits below the fault-free population at \
                 every voltage (gap at {:.2} V: {:+.1} ps)",
                last.vdd,
                (last.faulty.mean - last.fault_free.mean) * 1e12
            ),
            passed: data.iter().all(|r| r.faulty.mean < r.fault_free.mean),
        },
        Check {
            description: format!(
                "higher V_DD improves resolution: overlap at {:.2} V ({:.2}) ≤ \
                 overlap at {:.2} V ({:.2})",
                last.vdd, last.overlap, first.vdd, first.overlap
            ),
            passed: last.overlap <= first.overlap + 1e-9,
        },
        Check {
            description: format!(
                "aliasing is (nearly) gone at the highest voltage \
                 (overlap {:.2} at {:.2} V)",
                last.overlap, last.vdd
            ),
            passed: last.overlap < 0.2,
        },
    ];
    let mut total = SolverStats::default();
    for r in &data {
        total.merge(&r.stats);
    }
    Ok(ExperimentReport {
        id: "e3",
        title: "MC spread of ΔT vs V_DD, fault-free vs 1 kΩ open at x = 0.5 (Fig. 7)".to_owned(),
        headers: vec![
            "V_DD (V)".to_owned(),
            "fault-free ΔT range (ps)".to_owned(),
            "1 kΩ open ΔT range (ps)".to_owned(),
            "mean gap (ps)".to_owned(),
            "range overlap".to_owned(),
        ],
        rows,
        notes: vec![
            format!(
                "{} Monte-Carlo samples per population; 3σ(V_th) = 30 mV, 3σ(L_eff) = 10 %.",
                f.mc_samples()
            ),
            crate::solver_note(&total),
        ],
        checks,
        seed: Some(1007),
        stats: Some(total),
    })
}
