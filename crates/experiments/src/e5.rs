//! E5 — Fig. 9: Monte-Carlo spread of ΔT vs supply voltage for a
//! fault-free TSV and a 3 kΩ leakage fault.
//!
//! The complement of Fig. 7: the leakage signature is strongest in the
//! sensitive region just above the oscillation-stop threshold, i.e. at
//! *low* V_DD, and washes out against the fault-free spread at nominal
//! and elevated voltage.

use rotsv::mc::{delta_t_population, McDeltaT};
use rotsv::num::stats::{range_overlap, Summary};
use rotsv::num::units::Ohms;
use rotsv::spice::SolverStats;
use rotsv::spice::SpiceError;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::TestBench;

use crate::{Check, ExperimentReport, Fidelity};

/// Per-voltage comparison of the fault-free and leaky populations.
#[derive(Debug, Clone)]
pub struct LeakRow {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Fault-free population.
    pub fault_free: Summary,
    /// Leaky population (oscillating dies only).
    pub leaky: Option<Summary>,
    /// Leaky dies whose ring stuck (detected outright).
    pub stuck: usize,
    /// Range overlap (0 when the leaky dies all stick — full separation).
    pub overlap: f64,
    /// Detection margin: gap between the population means in units of the
    /// pooled spread (stuck dies count as infinite margin and are
    /// excluded).
    pub separation: f64,
    /// Solver work summed over both populations at this voltage.
    pub stats: SolverStats,
}

fn separation(ff: &Summary, leak: &Summary) -> f64 {
    let spread = (ff.half_spread() + leak.half_spread()).max(1e-15);
    (leak.mean - ff.mean) / spread
}

/// Runs the populations.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn populations(f: &Fidelity, seed: u64) -> Result<Vec<LeakRow>, SpiceError> {
    // 2-segment bench for tractability (see e4); the spread mechanics are
    // unchanged because only the segment under test escapes cancellation.
    let bench = TestBench::fast(2);
    let voltages: Vec<f64> = if f.is_fast() {
        vec![0.9, 1.1]
    } else {
        vec![0.9, 1.0, 1.1]
    };
    let samples = f.mc_samples();
    let spread = ProcessSpread::paper();
    let ff_faults = vec![TsvFault::None; bench.n_segments];
    let mut leak_faults = ff_faults.clone();
    leak_faults[0] = TsvFault::Leakage { r: Ohms(3e3) };
    let mut rows = Vec::new();
    for &vdd in &voltages {
        let ff = delta_t_population(&bench, vdd, &ff_faults, &[0], spread, seed, samples)?;
        let leak: McDeltaT =
            delta_t_population(&bench, vdd, &leak_faults, &[0], spread, seed, samples)?;
        let ff_summary = Summary::of(&ff.deltas);
        let (leak_summary, overlap, sep) = if leak.deltas.is_empty() {
            (None, 0.0, f64::INFINITY)
        } else {
            let s = Summary::of(&leak.deltas);
            (
                Some(s),
                range_overlap(&ff.deltas, &leak.deltas),
                separation(&ff_summary, &s),
            )
        };
        let mut stats = ff.stats;
        stats.merge(&leak.stats);
        rows.push(LeakRow {
            vdd,
            fault_free: ff_summary,
            leaky: leak_summary,
            stuck: leak.stuck_count,
            overlap,
            separation: sep,
            stats,
        });
    }
    Ok(rows)
}

/// Runs the Fig. 9 experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let data = populations(f, 905)?;
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.vdd),
                format!(
                    "[{}, {}]",
                    crate::ps(r.fault_free.min),
                    crate::ps(r.fault_free.max)
                ),
                match &r.leaky {
                    Some(s) => format!("[{}, {}]", crate::ps(s.min), crate::ps(s.max)),
                    None => "all STUCK".to_owned(),
                },
                r.stuck.to_string(),
                format!("{:.2}", r.overlap),
                if r.separation.is_infinite() {
                    "∞".to_owned()
                } else {
                    format!("{:.1}", r.separation)
                },
            ]
        })
        .collect();

    let lowest = data.first().expect("non-empty");
    let highest = data.last().expect("non-empty");
    let checks = vec![
        Check {
            description: format!(
                "leakage increases ΔT at every voltage where the ring oscillates \
                 (margin at {:.2} V: {:.1} spreads)",
                highest.vdd, highest.separation
            ),
            passed: data
                .iter()
                .filter_map(|r| r.leaky.map(|s| s.mean > r.fault_free.mean))
                .all(|ok| ok),
        },
        Check {
            description: format!(
                "detection is stronger at low V_DD: separation {:.2} V ≥ separation {:.2} V",
                lowest.vdd, highest.vdd
            ),
            passed: lowest.separation >= highest.separation,
        },
        Check {
            description: "the leaky population is clearly separable at the lowest voltage \
                          (no range overlap, or the dies stick outright)"
                .to_owned(),
            passed: lowest.overlap < 0.05,
        },
    ];
    let mut total = rotsv::spice::SolverStats::default();
    for r in &data {
        total.merge(&r.stats);
    }
    Ok(ExperimentReport {
        id: "e5",
        title: "MC spread of ΔT vs V_DD, fault-free vs 3 kΩ leakage (Fig. 9)".to_owned(),
        headers: vec![
            "V_DD (V)".to_owned(),
            "fault-free ΔT range (ps)".to_owned(),
            "3 kΩ leak ΔT range (ps)".to_owned(),
            "stuck dies".to_owned(),
            "range overlap".to_owned(),
            "separation (spreads)".to_owned(),
        ],
        rows,
        notes: vec![
            "In this reproduction the 3 kΩ leak already sticks the ring below \
             ≈0.85 V (the paper's sensitive region sits at ≈0.75 V) — the stop \
             threshold is calibration-dependent, the low-voltage advantage is \
             the reproduced claim."
                .to_owned(),
            crate::solver_note(&total),
        ],
        checks,
        seed: Some(905),
        stats: Some(total),
    })
}
