//! Campaign [`SampleSet`] definitions for the ledger-backed experiments.
//!
//! Each set enumerates one experiment's Monte-Carlo (or deterministic)
//! samples in a fixed order and runs one sample by index, deriving the
//! die from `(seed, sample index)` exactly as
//! [`rotsv::mc::delta_t_population`] does — so a campaign's per-sample
//! ledger reproduces the population experiments measurement for
//! measurement, and an interrupted campaign resumes byte-identically.
//!
//! Sample enumeration (documented so ledger indices stay meaningful):
//! the flat index walks fault points in declaration order, with the
//! per-point Monte-Carlo sample index varying fastest. Fault-point
//! labels (`"vdd=1.10 open-1k"`, …) are the units the golden layer
//! names when a drift is found.

use rotsv::mc::die_seed;
use rotsv::mosfet::model::Nominal;
use rotsv::num::units::Ohms;
use rotsv::ro::io_cell::{step_response, IoCellConfig};
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::{Die, TestBench};
use rotsv_campaign::{stuck_payload, value_payload, SampleSet};
use rotsv_obs::Json;

use crate::Fidelity;

/// E1 (Fig. 4): the three deterministic I/O-cell step responses.
pub struct E1Samples {
    cases: Vec<(String, TsvFault)>,
}

/// Seed recorded for E1's ledger entries; the experiment is
/// deterministic, so the seed is a constant key component.
pub const E1_SEED: u64 = 0;

impl E1Samples {
    /// Builds the E1 set (fidelity-independent).
    pub fn new() -> Self {
        Self {
            cases: vec![
                ("fault-free".to_owned(), TsvFault::None),
                (
                    "open-3k@0.5".to_owned(),
                    TsvFault::ResistiveOpen {
                        x: 0.5,
                        r: Ohms(3e3),
                    },
                ),
                ("leak-3k".to_owned(), TsvFault::Leakage { r: Ohms(3e3) }),
            ],
        }
    }
}

impl Default for E1Samples {
    fn default() -> Self {
        Self::new()
    }
}

impl SampleSet for E1Samples {
    fn experiment(&self) -> &str {
        "e1"
    }
    fn seed(&self) -> u64 {
        E1_SEED
    }
    fn len(&self) -> usize {
        self.cases.len()
    }
    fn run_sample(&self, index: usize) -> Result<Json, String> {
        let (label, fault) = &self.cases[index];
        let r = step_response(&IoCellConfig::new(1.1).with_fault(*fault), &mut Nominal)
            .map_err(|e| e.to_string())?;
        match r.delay {
            Some(delay) => Ok(value_payload(label, delay)),
            None => Err(format!("case '{label}': output never switched")),
        }
    }
}

/// One fault point of a Monte-Carlo sample set.
struct McPoint {
    label: String,
    vdd: f64,
    faults: Vec<TsvFault>,
}

/// A Monte-Carlo experiment as a flat, index-addressable sample set:
/// `samples_per_point` dies at each fault point, dies derived from
/// `(seed, sample index within the point)` so fault-free and faulty
/// points reuse the *same* dies (the paper's methodology).
pub struct McSamples {
    id: &'static str,
    seed: u64,
    bench: TestBench,
    spread: ProcessSpread,
    samples_per_point: usize,
    points: Vec<McPoint>,
}

impl SampleSet for McSamples {
    fn experiment(&self) -> &str {
        self.id
    }
    fn seed(&self) -> u64 {
        self.seed
    }
    fn len(&self) -> usize {
        self.points.len() * self.samples_per_point
    }
    fn run_sample(&self, index: usize) -> Result<Json, String> {
        let point = &self.points[index / self.samples_per_point];
        let i = index % self.samples_per_point;
        let die = Die::new(self.spread, die_seed(self.seed, i));
        let m = self
            .bench
            .measure_delta_t(point.vdd, &point.faults, &[0], &die)
            .map_err(|e| format!("{}: {e}", point.label))?;
        if m.reference_failed() {
            Ok(Json::Obj(vec![
                ("point".into(), Json::Str(point.label.clone())),
                ("kind".into(), Json::Str("reference_failed".into())),
            ]))
        } else if m.is_stuck() {
            Ok(stuck_payload(&point.label))
        } else {
            Ok(value_payload(
                &point.label,
                m.delta().expect("oscillating measurement has a delta"),
            ))
        }
    }
}

/// E3 (Fig. 7): fault-free vs 1 kΩ resistive open across V_DD.
/// Mirrors `e3::populations` (same bench, voltages, spread and seed).
pub fn e3_samples(f: &Fidelity) -> McSamples {
    let bench = TestBench::new(f.n_segments());
    let ff = vec![TsvFault::None; bench.n_segments];
    let mut open = ff.clone();
    open[0] = TsvFault::ResistiveOpen {
        x: 0.5,
        r: Ohms(1e3),
    };
    let mut points = Vec::new();
    for vdd in f.thin(&[0.8, 0.95, 1.1, 1.2]) {
        points.push(McPoint {
            label: format!("vdd={vdd:.2} fault-free"),
            vdd,
            faults: ff.clone(),
        });
        points.push(McPoint {
            label: format!("vdd={vdd:.2} open-1k"),
            vdd,
            faults: open.clone(),
        });
    }
    McSamples {
        id: "e3",
        seed: 1007,
        bench,
        spread: ProcessSpread::paper(),
        samples_per_point: f.mc_samples(),
        points,
    }
}

/// E5 (Fig. 9): fault-free vs 3 kΩ leakage across V_DD.
/// Mirrors `e5::populations` (same bench, voltages, spread and seed).
pub fn e5_samples(f: &Fidelity) -> McSamples {
    let bench = TestBench::fast(2);
    let ff = vec![TsvFault::None; bench.n_segments];
    let mut leak = ff.clone();
    leak[0] = TsvFault::Leakage { r: Ohms(3e3) };
    let voltages: Vec<f64> = if f.is_fast() {
        vec![0.9, 1.1]
    } else {
        vec![0.9, 1.0, 1.1]
    };
    let mut points = Vec::new();
    for vdd in voltages {
        points.push(McPoint {
            label: format!("vdd={vdd:.2} fault-free"),
            vdd,
            faults: ff.clone(),
        });
        points.push(McPoint {
            label: format!("vdd={vdd:.2} leak-3k"),
            vdd,
            faults: leak.clone(),
        });
    }
    McSamples {
        id: "e5",
        seed: 905,
        bench,
        spread: ProcessSpread::paper(),
        samples_per_point: f.mc_samples(),
        points,
    }
}

/// The experiment ids that support campaigns and golden signatures.
pub const CAMPAIGN_IDS: [&str; 3] = ["e1", "e3", "e5"];

/// Builds the sample set for a campaign-capable experiment id, or
/// `None` for ids without a campaign definition.
pub fn sample_set(id: &str, f: &Fidelity) -> Option<Box<dyn SampleSet>> {
    match id {
        "e1" => Some(Box::new(E1Samples::new())),
        "e3" => Some(Box::new(e3_samples(f))),
        "e5" => Some(Box::new(e5_samples(f))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv::mc::delta_t_population;

    #[test]
    fn e1_samples_match_the_report_path() {
        let set = E1Samples::new();
        assert_eq!(set.len(), 3);
        let payload = set.run_sample(0).unwrap();
        let delay = payload.get("value").and_then(Json::as_f64).unwrap();
        assert!(delay > 0.0 && delay < 1e-9, "plausible delay: {delay}");
    }

    /// A campaign sample must reproduce the exact ΔT the population
    /// path computes for the same (seed, index) — this is what makes
    /// the ledger a faithful, resumable decomposition of e3/e5.
    #[test]
    fn mc_samples_match_delta_t_population_bit_for_bit() {
        let f = Fidelity::fast();
        let set = e3_samples(&f);
        let samples = 2usize;
        let pop = delta_t_population(
            &set.bench,
            0.8,
            &set.points[0].faults,
            &[0],
            set.spread,
            set.seed,
            samples,
        )
        .unwrap();
        for i in 0..samples {
            let payload = set.run_sample(i).unwrap();
            assert_eq!(
                payload.get("point").and_then(Json::as_str),
                Some("vdd=0.80 fault-free")
            );
            assert_eq!(
                payload.get("value").and_then(Json::as_f64),
                Some(pop.deltas[i]),
                "sample {i} must match the population path exactly"
            );
        }
    }
}
