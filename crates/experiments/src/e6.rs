//! E6 — Fig. 10: spread overlap grows with the number of TSVs tested
//! simultaneously (M).
//!
//! Testing M TSVs in one oscillator loop amortizes test time, but the
//! process variation of the M segments under test is *not* cancelled by
//! the two-run subtraction. As M grows, both the fault-free and the
//! faulty ΔT populations widen and their spreads start to overlap — the
//! paper's resolution-vs-parallelism trade-off.

use rotsv::mc::delta_t_population;
use rotsv::num::stats::{range_overlap, Summary};
use rotsv::num::units::Ohms;
use rotsv::spice::SolverStats;
use rotsv::spice::SpiceError;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::TestBench;

use crate::{Check, ExperimentReport, Fidelity};

/// Per-M population pair.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// TSVs tested simultaneously.
    pub m: usize,
    /// Fault-free population.
    pub fault_free: Summary,
    /// Population with one 1 kΩ open among the M TSVs.
    pub faulty: Summary,
    /// Range overlap of the two populations.
    pub overlap: f64,
    /// Solver work summed over both populations at this M.
    pub stats: SolverStats,
}

/// Runs the populations.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn populations(f: &Fidelity, seed: u64) -> Result<Vec<ParallelRow>, SpiceError> {
    let bench = TestBench::new(f.n_segments());
    let samples = f.mc_samples();
    let spread = ProcessSpread::paper();
    // Larger per-transistor spread would also work; the paper's point is
    // the relative growth with M.
    let m_values: Vec<usize> = [1usize, 3, 5]
        .into_iter()
        .filter(|&m| m <= bench.n_segments)
        .collect();
    let mut rows = Vec::new();
    for &m in &m_values {
        let under_test: Vec<usize> = (0..m).collect();
        let ff_faults = vec![TsvFault::None; bench.n_segments];
        let mut open_faults = ff_faults.clone();
        open_faults[0] = TsvFault::ResistiveOpen {
            x: 0.5,
            r: Ohms(1e3),
        };
        let ff = delta_t_population(&bench, 1.1, &ff_faults, &under_test, spread, seed, samples)?;
        let faulty = delta_t_population(
            &bench,
            1.1,
            &open_faults,
            &under_test,
            spread,
            seed,
            samples,
        )?;
        let mut stats = ff.stats;
        stats.merge(&faulty.stats);
        rows.push(ParallelRow {
            m,
            fault_free: Summary::of(&ff.deltas),
            faulty: Summary::of(&faulty.deltas),
            overlap: range_overlap(&ff.deltas, &faulty.deltas),
            stats,
        });
    }
    Ok(rows)
}

/// Runs the Fig. 10 experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let data = populations(f, 1010)?;
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.m.to_string(),
                format!(
                    "[{}, {}]",
                    crate::ps(r.fault_free.min),
                    crate::ps(r.fault_free.max)
                ),
                format!("[{}, {}]", crate::ps(r.faulty.min), crate::ps(r.faulty.max)),
                format!("{:.1}", r.fault_free.half_spread() * 1e12),
                format!("{:.2}", r.overlap),
            ]
        })
        .collect();

    let first = data.first().expect("non-empty");
    let last = data.last().expect("non-empty");
    let checks = vec![
        Check {
            description: format!(
                "population spread grows with M ({}→{} ps half-spread from M=1 to M={})",
                crate::ps(first.fault_free.half_spread()),
                crate::ps(last.fault_free.half_spread()),
                last.m
            ),
            passed: last.fault_free.half_spread() > first.fault_free.half_spread(),
        },
        Check {
            description: format!(
                "overlap grows with M (M=1: {:.2}, M={}: {:.2})",
                first.overlap, last.m, last.overlap
            ),
            passed: last.overlap >= first.overlap,
        },
        Check {
            description: "at M = 1 the fault is cleanly detectable (small overlap)".to_owned(),
            passed: first.overlap < 0.3,
        },
    ];
    let mut total = SolverStats::default();
    for r in &data {
        total.merge(&r.stats);
    }
    Ok(ExperimentReport {
        id: "e6",
        title: "Spread overlap vs number of simultaneously tested TSVs M (Fig. 10)".to_owned(),
        headers: vec![
            "M".to_owned(),
            "fault-free ΔT range (ps)".to_owned(),
            "faulty ΔT range (ps)".to_owned(),
            "ff half-spread (ps)".to_owned(),
            "range overlap".to_owned(),
        ],
        rows,
        notes: vec![
            "One 1 kΩ open at x = 0.5 among the M enabled TSVs; V_DD = 1.1 V.".to_owned(),
            crate::solver_note(&total),
        ],
        checks,
        seed: Some(1010),
        stats: Some(total),
    })
}
