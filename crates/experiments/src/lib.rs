#![warn(missing_docs)]

//! Experiment harness: one runner per figure/table of the paper.
//!
//! | id | paper reference | module |
//! |----|-----------------|--------|
//! | e0 | §III-A lumped-model validation | [`e0`] |
//! | e1 | Fig. 4 — I/O cell step waveforms | [`e1`] |
//! | e2 | Fig. 6 — ΔT vs R_O | [`e2`] |
//! | e3 | Fig. 7 — MC spread vs V_DD, 1 kΩ open | [`e3`] |
//! | e4 | Fig. 8 — ΔT vs R_L at four voltages | [`e4`] |
//! | e5 | Fig. 9 — MC spread vs V_DD, 3 kΩ leakage | [`e5`] |
//! | e6 | Fig. 10 — spread overlap vs M | [`e6`] |
//! | e7 | §IV-C — counter quantization error | [`e7`] |
//! | e8 | §IV-D — DfT area cost | [`e8`] |
//! | e9 | extension: minimum detectable fault (aliasing) | [`e9`] |
//! | e10 | extension: fault-size diagnosis | [`e10`] |
//! | e11 | extension: IDDQ-style current signatures | [`e11`] |
//! | a1–a3 | ablations: integrator, ΔT subtraction, TSV model | [`ablations`] |
//!
//! Each runner returns an [`ExperimentReport`]: a data table (the rows
//! the paper plots), shape checks (the qualitative claims the paper
//! makes, evaluated against the measured data), and notes. The
//! `experiments` binary renders them as markdown and CSV.

use std::fmt::Write as _;

pub mod ablations;
pub mod campaign_sets;
pub mod e0;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod summary;

pub use rotsv::spice::SpiceError;

/// Controls experiment cost: `fast` trades Monte-Carlo depth and sweep
/// density for runtime (used by unit tests and the Criterion benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fidelity {
    fast: bool,
}

impl Fidelity {
    /// Full fidelity: the settings the committed EXPERIMENTS.md numbers
    /// were produced with.
    pub fn full() -> Self {
        Self { fast: false }
    }

    /// Reduced fidelity for quick runs.
    pub fn fast() -> Self {
        Self { fast: true }
    }

    /// Whether this is the fast profile.
    pub fn is_fast(&self) -> bool {
        self.fast
    }

    /// Monte-Carlo samples per population.
    ///
    /// Sized for single-core machines: 10 samples per population keep the
    /// full experiment suite within tens of minutes while still showing
    /// the spread behaviour the paper plots.
    pub fn mc_samples(&self) -> usize {
        if self.fast {
            6
        } else {
            8
        }
    }

    /// Ring segments per group (the paper's N).
    pub fn n_segments(&self) -> usize {
        if self.fast {
            2
        } else {
            5
        }
    }

    /// Thins a sweep: keeps every point at full fidelity, every other
    /// point when fast.
    pub fn thin<T: Copy>(&self, points: &[T]) -> Vec<T> {
        if self.fast {
            points.iter().copied().step_by(2).collect()
        } else {
            points.to_vec()
        }
    }
}

/// A qualitative claim from the paper, checked against measured data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// What the paper claims.
    pub description: String,
    /// Whether the measured data reproduces it.
    pub passed: bool,
}

/// A rendered experiment result.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (`"e0"`…`"e8"`).
    pub id: &'static str,
    /// Human-readable title including the paper reference.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (pre-formatted strings).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (substitutions, caveats).
    pub notes: Vec<String>,
    /// Shape checks against the paper's claims.
    pub checks: Vec<Check>,
    /// RNG seed of the run, for stochastic (Monte-Carlo) experiments.
    pub seed: Option<u64>,
    /// Aggregated solver work counters, when the experiment tracks them.
    pub stats: Option<rotsv::spice::SolverStats>,
}

/// Equality compares the rendered result; the work counters (which
/// include wall-clock time) are bookkeeping, not results.
impl PartialEq for ExperimentReport {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.title == other.title
            && self.headers == other.headers
            && self.rows == other.rows
            && self.notes == other.notes
            && self.checks == other.checks
            && self.seed == other.seed
    }
}

impl ExperimentReport {
    /// `true` when every shape check passed.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Renders the report as a JSON object (the `--json` output mode),
    /// mirroring the markdown table plus the machine-relevant extras:
    /// seed, per-check pass/fail, and the solver work counters.
    pub fn to_json(&self) -> rotsv_obs::Json {
        use rotsv_obs::Json;
        let passed = self.checks.iter().filter(|c| c.passed).count();
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.to_owned())),
            ("title".into(), Json::Str(self.title.clone())),
            (
                "seed".into(),
                self.seed.map_or(Json::Null, |s| Json::Num(s as f64)),
            ),
            (
                "headers".into(),
                Json::Arr(self.headers.iter().map(|h| Json::Str(h.clone())).collect()),
            ),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect()))
                        .collect(),
                ),
            ),
            (
                "notes".into(),
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
            (
                "checks".into(),
                Json::Arr(
                    self.checks
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("description".into(), Json::Str(c.description.clone())),
                                ("passed".into(), Json::Bool(c.passed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("checks_passed".into(), Json::Num(passed as f64)),
            (
                "checks_failed".into(),
                Json::Num((self.checks.len() - passed) as f64),
            ),
            (
                "solver_stats".into(),
                self.stats.as_ref().map_or(Json::Null, |s| s.to_json()),
            ),
        ])
    }

    /// Renders the report as GitHub-flavored markdown.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        if !self.checks.is_empty() {
            let _ = writeln!(out, "\n**Shape checks (paper claims):**\n");
            for c in &self.checks {
                let mark = if c.passed { "✅" } else { "❌" };
                let _ = writeln!(out, "- {mark} {}", c.description);
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }

    /// Renders the data table as CSV.
    pub fn csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a solver work-counter note for an experiment report.
pub fn solver_note(stats: &rotsv::spice::SolverStats) -> String {
    format!("Solver work: {}.", stats.summary())
}

/// Formats seconds as picoseconds with one decimal.
pub fn ps(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e12)
}

/// Formats an optional period: picoseconds or `STUCK`.
pub fn ps_or_stuck(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => ps(s),
        None => "STUCK".to_owned(),
    }
}

/// Runs all experiments in order.
///
/// # Errors
///
/// Propagates the first simulator error.
pub fn run_all(f: &Fidelity) -> Result<Vec<ExperimentReport>, SpiceError> {
    Ok(vec![
        e0::run(f)?,
        e1::run(f)?,
        e2::run(f)?,
        e3::run(f)?,
        e4::run(f)?,
        e5::run(f)?,
        e6::run(f)?,
        e7::run(f),
        e8::run(f),
        e9::run(f)?,
        e10::run(f)?,
        e11::run(f)?,
        ablations::a1_integrator(f)?,
        ablations::a2_subtraction(f)?,
        ablations::a3_tsv_model(f)?,
    ])
}

/// Runs one experiment by id.
///
/// # Errors
///
/// Propagates simulator errors; unknown ids return `Ok(None)`.
pub fn run_one(id: &str, f: &Fidelity) -> Result<Option<ExperimentReport>, SpiceError> {
    Ok(Some(match id {
        "e0" => e0::run(f)?,
        "e1" => e1::run(f)?,
        "e2" => e2::run(f)?,
        "e3" => e3::run(f)?,
        "e4" => e4::run(f)?,
        "e5" => e5::run(f)?,
        "e6" => e6::run(f)?,
        "e7" => e7::run(f),
        "e8" => e8::run(f),
        "e9" => e9::run(f)?,
        "e10" => e10::run(f)?,
        "e11" => e11::run(f)?,
        "a1" => ablations::a1_integrator(f)?,
        "a2" => ablations::a2_subtraction(f)?,
        "a3" => ablations::a3_tsv_model(f)?,
        _ => return Ok(None),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_markdown_and_csv() {
        let r = ExperimentReport {
            id: "e8",
            title: "demo".into(),
            headers: vec!["a".into(), "b,c".into()],
            rows: vec![vec!["1".into(), "2".into()]],
            notes: vec!["note".into()],
            checks: vec![Check {
                description: "holds".into(),
                passed: true,
            }],
            seed: Some(42),
            stats: Some(rotsv::spice::SolverStats {
                newton_iterations: 9,
                ..Default::default()
            }),
        };
        let md = r.markdown();
        assert!(md.contains("| a | b,c |"));
        assert!(md.contains("✅ holds"));
        assert!(md.contains("> note"));
        let csv = r.csv();
        assert!(csv.starts_with("a,\"b,c\"\n"));
        assert!(r.all_checks_pass());
        let json = r.to_json().render();
        assert!(json.contains("\"checks_passed\": 1"));
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"newton_iterations\": 9"));
    }

    #[test]
    fn fidelity_thins_sweeps() {
        let full = Fidelity::full();
        let fast = Fidelity::fast();
        let pts = [1, 2, 3, 4, 5];
        assert_eq!(full.thin(&pts), vec![1, 2, 3, 4, 5]);
        assert_eq!(fast.thin(&pts), vec![1, 3, 5]);
        assert!(fast.mc_samples() < full.mc_samples());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ps(1.5e-12), "1.5");
        assert_eq!(ps_or_stuck(None), "STUCK");
        assert_eq!(ps_or_stuck(Some(2e-12)), "2.0");
    }
}
