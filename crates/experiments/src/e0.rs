//! E0 — lumped-model validation (§III-A of the paper).
//!
//! The paper justifies modeling a fault-free TSV as a single lumped
//! capacitor by comparing HSPICE charge curves of (1) a multi-segment RC
//! ladder with R = 0.1 Ω, C = 59 fF and (2) a single 59 fF capacitor,
//! both driven by a 4X buffer: "the resulting curves show no measurable
//! difference". This experiment reproduces that comparison.

use rotsv::mosfet::model::Nominal;
use rotsv::mosfet::tech45::DriveStrength;
use rotsv::spice::{Circuit, Edge, SourceWaveform, SpiceError, TransientSpec};
use rotsv::stdcell::CellBuilder;
use rotsv::tsv::{Tsv, TsvModel, TsvTech};

use crate::{Check, ExperimentReport, Fidelity};

/// Time for the TSV front node to charge to V_DD/2 through an X4 buffer.
fn charge_time(model: TsvModel) -> Result<f64, SpiceError> {
    let vdd_v = 1.1;
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(vdd_v));
    let input = ckt.node("in");
    ckt.add_vsource(
        input,
        Circuit::GROUND,
        SourceWaveform::step(0.0, vdd_v, 0.1e-9),
    );
    let front = ckt.node("tsv");
    Tsv::fault_free(TsvTech::default()).stamp(&mut ckt, front, model);
    let mut vary = Nominal;
    let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
    cells.buffer("drv", input, front, DriveStrength::X4);
    let spec = TransientSpec::new(2e-9, 0.2e-12).record(&[front]);
    let res = ckt.transient(&spec)?;
    Ok(res
        .waveform(front)
        .first_crossing_after(0.0, vdd_v / 2.0, Edge::Rising)
        .expect("TSV charges past VDD/2"))
}

/// Runs the validation.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let segment_counts: Vec<usize> = f.thin(&[2, 5, 10, 20]);
    let t_lumped = charge_time(TsvModel::Lumped)?;
    let mut rows = vec![vec![
        "lumped C = 59 fF".to_owned(),
        crate::ps(t_lumped),
        "0.0".to_owned(),
    ]];
    let mut max_diff: f64 = 0.0;
    for n in segment_counts {
        let t = charge_time(TsvModel::Distributed(n))?;
        let diff = t - t_lumped;
        max_diff = max_diff.max(diff.abs());
        rows.push(vec![
            format!("{n}-segment RC ladder"),
            crate::ps(t),
            format!("{:+.3}", diff * 1e12),
        ]);
    }
    let checks = vec![Check {
        description: format!(
            "lumped vs distributed charge curves show no measurable difference \
             (max |Δt50| = {:.3} ps < 0.5 ps)",
            max_diff * 1e12
        ),
        passed: max_diff < 0.5e-12,
    }];
    Ok(ExperimentReport {
        id: "e0",
        title: "Lumped TSV model validation (§III-A)".to_owned(),
        headers: vec![
            "TSV model".to_owned(),
            "t50 (ps)".to_owned(),
            "Δ vs lumped (ps)".to_owned(),
        ],
        rows,
        notes: vec![
            "Paper setup: 4X buffer driving (1) multi-segment RC ladder with \
             R = 0.1 Ω / C = 59 fF total and (2) a single 59 fF capacitor."
                .to_owned(),
        ],
        checks,
        seed: None,
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lumped_model_is_validated() {
        let report = run(&Fidelity::fast()).unwrap();
        assert!(report.all_checks_pass(), "{}", report.markdown());
        assert!(report.rows.len() >= 3);
    }
}
