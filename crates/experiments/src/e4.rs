//! E4 — Fig. 8: ΔT as a function of the leakage resistance R_L at
//! several supply voltages.
//!
//! Leakage increases ΔT; below a voltage-dependent threshold the ring
//! stops oscillating (stuck-at-0 TSV). The threshold *drops as V_DD
//! rises*, so weak leakage is caught at low voltage and strong leakage
//! at high voltage — the core argument for multi-voltage testing.

use rotsv::num::parallel::parallel_map;
use rotsv::num::units::Ohms;
use rotsv::ro::MeasureOpts;
use rotsv::spice::SpiceError;
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

use crate::{Check, ExperimentReport, Fidelity};

/// ΔT (or stuck) for every (voltage, R_L) pair of the sweep.
#[derive(Debug, Clone)]
pub struct LeakGrid {
    /// Voltages, volts.
    pub voltages: Vec<f64>,
    /// Leakage resistances, ohms (descending = worsening fault).
    pub r_leak: Vec<f64>,
    /// `delta[v][r]`: ΔT in seconds, `None` = stuck.
    pub delta: Vec<Vec<Option<f64>>>,
}

impl LeakGrid {
    /// The largest (weakest) R_L at which the ring is stuck for voltage
    /// index `v`, if any — the oscillation-stop threshold.
    pub fn stop_threshold(&self, v: usize) -> Option<f64> {
        self.r_leak
            .iter()
            .zip(&self.delta[v])
            .filter(|(_, dt)| dt.is_none())
            .map(|(&r, _)| r)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }
}

/// Runs the sweep and returns the grid.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn sweep(f: &Fidelity) -> Result<LeakGrid, SpiceError> {
    // A 2-segment group: the leakage mechanism is local to the segment
    // under test, and stuck rings must run to their full time budget, so
    // the smaller netlist keeps the sweep tractable on one core.
    let bench = TestBench::fast(2);
    let voltages: Vec<f64> = if f.is_fast() {
        vec![1.1, 0.8]
    } else {
        vec![1.1, 0.95, 0.8, 0.75]
    };
    let r_leak: Vec<f64> = f.thin(&[
        50e3, 20e3, 10e3, 5e3, 3e3, 2.5e3, 2e3, 1.5e3, 1.2e3, 1e3, 0.8e3,
    ]);
    let die = Die::nominal();

    let mut delta = Vec::with_capacity(voltages.len());
    for &vdd in &voltages {
        // Bound the time wasted on stuck rings: a fault-free measurement
        // tells us how long an oscillating run actually needs.
        let base = bench.opts_for(vdd);
        let ff = bench.measure_delta_t(vdd, &vec![TsvFault::None; bench.n_segments], &[0], &die)?;
        let t1_ff = ff
            .t1
            .period()
            .expect("fault-free ring oscillates at all plan voltages");
        let budget = t1_ff * (base.cycles + base.skip_cycles + 4) as f64 * 3.0;
        // (stuck rings burn the whole budget; 3x the healthy ring's needs
        // still admits leak-slowed periods up to ~3x fault-free)
        let opts = MeasureOpts {
            max_time: budget.min(base.max_time),
            ..base
        };

        let results: Vec<Result<Option<f64>, SpiceError>> = parallel_map(r_leak.len(), |i| {
            let mut faults = vec![TsvFault::None; bench.n_segments];
            faults[0] = TsvFault::Leakage { r: Ohms(r_leak[i]) };
            let m = bench.measure_delta_t_with(vdd, &faults, &[0], &die, &opts)?;
            Ok(m.delta())
        });
        let mut row = Vec::with_capacity(r_leak.len());
        for r in results {
            row.push(r?);
        }
        delta.push(row);
    }
    Ok(LeakGrid {
        voltages,
        r_leak,
        delta,
    })
}

/// Runs the Fig. 8 experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(f: &Fidelity) -> Result<ExperimentReport, SpiceError> {
    let grid = sweep(f)?;
    let mut headers = vec!["R_L (Ω)".to_owned()];
    for &v in &grid.voltages {
        headers.push(format!("ΔT @ {v:.2} V (ps)"));
    }
    let mut rows = Vec::new();
    for (i, &r) in grid.r_leak.iter().enumerate() {
        let mut row = vec![format!("{:.0}", r)];
        for v in 0..grid.voltages.len() {
            row.push(crate::ps_or_stuck(grid.delta[v][i]));
        }
        rows.push(row);
    }
    let mut threshold_row = vec!["oscillation-stop threshold".to_owned()];
    for v in 0..grid.voltages.len() {
        threshold_row.push(match grid.stop_threshold(v) {
            Some(r) => format!("≥{:.0} Ω", r),
            None => "none observed".to_owned(),
        });
    }
    rows.push(threshold_row);

    // Checks.
    let monotone_in_r = (0..grid.voltages.len()).all(|v| {
        grid.delta[v].windows(2).all(|w| match (w[0], w[1]) {
            (Some(a), Some(b)) => b >= a - 1e-12, // R_L decreasing => ΔT grows
            (Some(_), None) => true,              // oscillating -> stuck
            (None, None) => true,
            (None, Some(_)) => false, // stuck must not recover
        })
    });
    let thresholds: Vec<Option<f64>> = (0..grid.voltages.len())
        .map(|v| grid.stop_threshold(v))
        .collect();
    // Voltages are listed in descending order: thresholds must not shrink.
    let threshold_grows_at_low_v = thresholds.windows(2).all(|w| match (w[0], w[1]) {
        (Some(hi_v), Some(lo_v)) => lo_v >= hi_v,
        (None, Some(_)) | (None, None) => true,
        (Some(_), None) => false,
    });
    let weak_leak_is_benign = {
        // Weakest leak at the highest voltage: within a few percent of the
        // strongest R_L point (≈ fault-free).
        let first = grid.delta[0][0];
        first.is_some()
    };
    let checks = vec![
        Check {
            description: "ΔT increases as R_L decreases until the ring sticks".to_owned(),
            passed: monotone_in_r,
        },
        Check {
            description: format!(
                "the oscillation-stop threshold rises as V_DD falls \
                 (paper: ≈1 kΩ at 1.1 V; measured {:?} across {:?} V)",
                thresholds
                    .iter()
                    .map(|t| t.map(|r| format!("{r:.0} Ω")))
                    .collect::<Vec<_>>(),
                grid.voltages
            ),
            passed: threshold_grows_at_low_v,
        },
        Check {
            description: "weak leakage (50 kΩ) keeps the ring oscillating at nominal V_DD"
                .to_owned(),
            passed: weak_leak_is_benign,
        },
    ];
    Ok(ExperimentReport {
        id: "e4",
        title: "ΔT vs leakage resistance R_L at multiple voltages (Fig. 8)".to_owned(),
        headers,
        rows,
        notes: vec![
            "STUCK = the ring does not oscillate (the paper's stuck-at-0 regime). \
             In this reproduction the 1.1 V stop threshold sits near 1.5–2 kΩ \
             versus the paper's ≈1 kΩ — the threshold location depends on the \
             driver/receiver calibration, its voltage dependence is the claim."
                .to_owned(),
        ],
        checks,
        seed: None,
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_threshold_extraction() {
        let grid = LeakGrid {
            voltages: vec![1.1],
            r_leak: vec![5e3, 2e3, 1e3],
            delta: vec![vec![Some(1e-12), None, None]],
        };
        assert_eq!(grid.stop_threshold(0), Some(2e3));
        let clean = LeakGrid {
            voltages: vec![1.1],
            r_leak: vec![5e3],
            delta: vec![vec![Some(1e-12)]],
        };
        assert_eq!(clean.stop_threshold(0), None);
    }
}
