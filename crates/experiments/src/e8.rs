//! E8 — §IV-D: DfT area cost.
//!
//! Reproduces the paper's worked example — 1000 TSVs in groups of N = 5,
//! Nangate MUX2 (3.75 µm²) and INV (1.41 µm²): total 7782 µm², less than
//! 0.04 % of a 25 mm² die — and sweeps the group size and TSV count.

use rotsv::dft::DftAreaModel;

use crate::{Check, ExperimentReport, Fidelity};

/// Runs the area analysis.
pub fn run(_f: &Fidelity) -> ExperimentReport {
    let model = DftAreaModel::default();
    let configs = [
        (1000usize, 1usize, 25.0f64),
        (1000, 5, 25.0),
        (1000, 10, 25.0),
        (10_000, 5, 25.0),
        (10_000, 5, 100.0),
    ];
    let mut rows = Vec::new();
    for (n_tsvs, group, die) in configs {
        let area = model.total_area(n_tsvs, group);
        let frac = model.fraction_of_die(n_tsvs, group, die);
        rows.push(vec![
            n_tsvs.to_string(),
            group.to_string(),
            format!("{:.0}", area.value()),
            format!("{die:.0}"),
            format!("{:.4}%", frac * 100.0),
        ]);
    }

    let paper_area = model.total_area(1000, 5);
    let paper_frac = model.fraction_of_die(1000, 5, 25.0);
    let checks = vec![
        Check {
            description: format!(
                "paper example reproduced exactly: 1000 TSVs, N = 5 ⇒ {:.0} µm² \
                 (paper: 7782 µm²)",
                paper_area.value()
            ),
            passed: (paper_area.value() - 7782.0).abs() < 1e-9,
        },
        Check {
            description: format!(
                "DfT area is below 0.04 % of a 25 mm² die (measured {:.4} %)",
                paper_frac * 100.0
            ),
            passed: paper_frac < 0.0004,
        },
        Check {
            description: "mux area dominates: group size barely changes the total".to_owned(),
            passed: {
                let a1 = model.total_area(1000, 1).value();
                let a10 = model.total_area(1000, 10).value();
                (a1 - a10) / a10 < 0.25
            },
        },
    ];
    ExperimentReport {
        id: "e8",
        title: "DfT area cost (§IV-D)".to_owned(),
        headers: vec![
            "TSVs".to_owned(),
            "group size N".to_owned(),
            "DfT area (µm²)".to_owned(),
            "die (mm²)".to_owned(),
            "fraction of die".to_owned(),
        ],
        rows,
        notes: vec![
            "Two MUX2_X1 (3.75 µm²) per TSV plus one INV_X1 (1.41 µm²) per group; \
             control/measurement logic is shared across groups and amortizes to \
             a negligible extra (paper, §IV-D)."
                .to_owned(),
        ],
        checks,
        seed: None,
        stats: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_matches_paper_numbers() {
        let report = run(&Fidelity::full());
        assert!(report.all_checks_pass(), "{}", report.markdown());
        assert_eq!(report.rows.len(), 5);
    }
}
