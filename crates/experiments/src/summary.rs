//! Section-wise merging of `results/summary.md`.
//!
//! The experiments binary can run any subset of the suite, but
//! `summary.md` is a single committed artifact covering *all*
//! experiments. Rewriting the whole file from just the experiments of
//! the current invocation would silently delete every other section
//! (and let the header keep claiming full coverage), so the writer
//! merges instead: sections for experiments that just ran are replaced,
//! all other sections are carried over verbatim, and the result is kept
//! in canonical suite order (e0…e11, then a1…a3).
//!
//! The `Fidelity:` header line is only trusted when every section in
//! the merged file was produced at the same fidelity; a subset run at a
//! different fidelity than the carried-over sections downgrades it to
//! `mixed`.

/// Canonical position of an experiment section within `summary.md`.
/// Unknown ids sort after all known ones, preserving their merge order.
fn section_rank(id: &str) -> usize {
    let parse_num = |s: &str| s.parse::<usize>().ok();
    match id.split_at(1) {
        ("e", n) => parse_num(n).map_or(usize::MAX, |n| n),
        ("a", n) => parse_num(n).map_or(usize::MAX, |n| 100 + n),
        _ => usize::MAX,
    }
}

/// Splits an existing summary file into its fidelity label and its
/// `## <id> — …` sections. Tolerates a missing header or no sections.
fn parse_sections(text: &str) -> (Option<String>, Vec<(String, String)>) {
    let mut fidelity = None;
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("Fidelity:") {
            if sections.is_empty() && fidelity.is_none() {
                fidelity = Some(rest.trim().to_owned());
            }
        }
        if let Some(rest) = line.strip_prefix("## ") {
            let id = rest.split_whitespace().next().unwrap_or("").to_owned();
            sections.push((id, String::new()));
        }
        if let Some((_, body)) = sections.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    (fidelity, sections)
}

/// Merges freshly rendered experiment sections into an existing summary
/// file, returning the new file contents.
///
/// `new_sections` holds `(experiment id, rendered markdown)` pairs for
/// the experiments that just ran at `fidelity` (e.g. `"full"`);
/// `existing` is the previous file contents, if any.
pub fn merge_summary(
    existing: Option<&str>,
    new_sections: &[(String, String)],
    fidelity: &str,
) -> String {
    let (old_fidelity, old_sections) = match existing {
        Some(text) => parse_sections(text),
        None => (None, Vec::new()),
    };

    let mut merged: Vec<(String, String)> = Vec::new();
    let mut carried_over = false;
    for (id, body) in &old_sections {
        if new_sections.iter().any(|(new_id, _)| new_id == id) {
            continue; // replaced by this run
        }
        carried_over = true;
        merged.push((id.clone(), body.clone()));
    }
    for (id, body) in new_sections {
        merged.push((id.clone(), body.clone()));
    }
    // Stable sort: unknown ids keep their relative order at the end.
    merged.sort_by_key(|(id, _)| section_rank(id));

    // The header may only claim one fidelity for the whole file. A
    // subset run merged into sections produced at another fidelity
    // (comparing the label's first word: "full (single-core…)" is still
    // "full") makes the file mixed.
    let first_word = |s: &str| s.split_whitespace().next().unwrap_or("").to_owned();
    let label = match &old_fidelity {
        Some(old) if carried_over && first_word(old) != first_word(fidelity) => {
            "mixed (sections ran at different fidelities)".to_owned()
        }
        Some(old) if carried_over => old.clone(),
        _ => fidelity.to_owned(),
    };

    let mut out = String::from("# Experiment summary\n\n");
    out.push_str(&format!("Fidelity: {label}\n\n"));
    for (_, body) in &merged {
        out.push_str(body.trim_end_matches('\n'));
        out.push_str("\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(id: &str, marker: &str) -> (String, String) {
        (
            id.to_owned(),
            format!("## {id} — title\n\n| x |\n|---|\n| {marker} |\n"),
        )
    }

    #[test]
    fn fresh_file_contains_all_new_sections_in_order() {
        let new = vec![section("e3", "new3"), section("e1", "new1")];
        let text = merge_summary(None, &new, "full");
        assert!(text.starts_with("# Experiment summary\n\nFidelity: full\n"));
        let e1 = text.find("## e1").unwrap();
        let e3 = text.find("## e3").unwrap();
        assert!(e1 < e3, "sections must be in canonical order");
    }

    #[test]
    fn subset_run_preserves_untouched_sections() {
        let old = merge_summary(
            None,
            &[
                section("e0", "old0"),
                section("e4", "old4"),
                section("a1", "olda1"),
            ],
            "full",
        );
        let text = merge_summary(Some(&old), &[section("e4", "new4")], "full");
        assert!(
            text.contains("old0"),
            "e0 section must survive an e4-only run"
        );
        assert!(
            text.contains("olda1"),
            "a1 section must survive an e4-only run"
        );
        assert!(text.contains("new4"), "e4 section must be replaced");
        assert!(!text.contains("old4"), "stale e4 section must be gone");
        let e0 = text.find("## e0").unwrap();
        let e4 = text.find("## e4").unwrap();
        let a1 = text.find("## a1").unwrap();
        assert!(e0 < e4 && e4 < a1);
    }

    #[test]
    fn merge_is_idempotent_for_a_full_run() {
        let new: Vec<_> = ["e0", "e1", "a1"]
            .iter()
            .map(|id| section(id, "v2"))
            .collect();
        let once = merge_summary(None, &new, "full");
        let twice = merge_summary(Some(&once), &new, "full");
        assert_eq!(once, twice);
    }

    #[test]
    fn mixed_fidelity_is_reported_in_the_header() {
        let old = merge_summary(None, &[section("e0", "old0")], "full");
        let text = merge_summary(Some(&old), &[section("e1", "fast1")], "fast");
        assert!(
            text.contains("Fidelity: mixed"),
            "carrying full sections into a fast run must mark the file mixed: {text}"
        );
        // Replacing every section resets the label.
        let clean = merge_summary(
            Some(&text),
            &[section("e0", "f0"), section("e1", "f1")],
            "fast",
        );
        assert!(clean.contains("Fidelity: fast\n"), "{clean}");
    }

    #[test]
    fn seed_style_header_with_annotation_is_preserved() {
        let old = "# Experiment summary\n\nFidelity: full (single-core settings; see EXPERIMENTS.md)\n\n## e0 — t\n\nbody\n";
        let text = merge_summary(Some(old), &[section("e1", "n1")], "full");
        assert!(
            text.contains("Fidelity: full (single-core settings; see EXPERIMENTS.md)"),
            "annotated matching label should be kept: {text}"
        );
        assert!(text.contains("## e0"));
    }
}
