//! End-to-end campaign + golden drills on a real experiment.
//!
//! Uses the e1 sample set (three deterministic step responses — the
//! cheapest real experiment) so the whole file runs in seconds:
//!
//! - kill a campaign mid-run (`stop_after`), resume it, and require the
//!   merged ledger to be byte-identical to an uninterrupted run;
//! - compute golden signatures, check them clean, then perturb one
//!   fault point's ΔT by +1 % and require the check to flag exactly
//!   that fault point.

use std::path::PathBuf;

use rotsv_campaign::{
    collect_entries, diff_against_golden, golden_doc, run_campaign, CampaignOptions,
    ExperimentSignature, Json, SampleSet,
};
use rotsv_experiments::campaign_sets::E1Samples;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rotsv_e2e_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn e1_sets() -> Vec<Box<dyn SampleSet>> {
    vec![Box::new(E1Samples::new())]
}

#[test]
fn interrupted_e1_campaign_resumes_byte_identically() {
    let dir = temp_dir("resume");
    let uninterrupted = dir.join("a.jsonl");
    let report = run_campaign(&e1_sets(), &uninterrupted, &CampaignOptions::default()).unwrap();
    assert!(report.complete());
    assert_eq!(report.failures, Vec::new());
    assert_eq!(report.ran, 3);
    let want = std::fs::read(&uninterrupted).unwrap();

    let resumable = dir.join("b.jsonl");
    let stop = CampaignOptions {
        stop_after: Some(1),
        ..Default::default()
    };
    let stopped = run_campaign(&e1_sets(), &resumable, &stop).unwrap();
    assert!(stopped.stopped_early);
    let resumed = run_campaign(&e1_sets(), &resumable, &CampaignOptions::default()).unwrap();
    assert!(resumed.complete());
    assert_eq!(resumed.resumed, 1);
    assert_eq!(resumed.ran, 2);
    assert_eq!(
        std::fs::read(&resumable).unwrap(),
        want,
        "resumed ledger must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn golden_check_flags_a_one_percent_perturbation_by_fault_point() {
    let set = E1Samples::new();
    let entries = collect_entries(&set, "test-rev");
    let sig = ExperimentSignature::from_entries(&entries).unwrap();
    let golden = golden_doc(std::slice::from_ref(&sig), "fast");

    // Clean check: recomputing from the same entries must pass.
    let again = ExperimentSignature::from_entries(&entries).unwrap();
    assert_eq!(again.digest, sig.digest);
    assert_eq!(
        diff_against_golden(std::slice::from_ref(&again), &golden).unwrap(),
        Vec::new()
    );

    // +1 % on the open-TSV delay must be flagged, naming that point.
    let perturbed: Vec<_> = entries
        .into_iter()
        .map(|mut e| {
            if e.payload.get("point").and_then(Json::as_str) == Some("open-3k@0.5") {
                let v = e.payload.get("value").and_then(Json::as_f64).unwrap();
                e.payload = rotsv_campaign::value_payload("open-3k@0.5", v * 1.01);
            }
            e
        })
        .collect();
    let drifted = ExperimentSignature::from_entries(&perturbed).unwrap();
    let drifts = diff_against_golden(std::slice::from_ref(&drifted), &golden).unwrap();
    assert!(!drifts.is_empty(), "a 1 % drift is 5x the mean tolerance");
    assert!(
        drifts.iter().all(|d| d.point == "open-3k@0.5"),
        "only the perturbed fault point may be named: {drifts:?}"
    );
    assert!(drifts.iter().any(|d| d.metric == "mean"));
}
