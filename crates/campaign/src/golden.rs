//! Golden signatures: canonical digests of ΔT population summaries.
//!
//! The paper's fault classification rests on Monte-Carlo ΔT
//! populations, so a silent numerical drift anywhere in the
//! solver/RO/measurement chain corrupts conclusions without failing a
//! unit test. This module condenses each experiment's ledger into a
//! per-fault-point summary (count, stuck count, mean, σ, quantiles),
//! rounds every metric to [`ROUND_SIG_DIGITS`] significant digits, and
//! fingerprints the sorted result with FNV-1a. The summaries plus
//! digests live in a committed `GOLDEN.json`; `experiments golden
//! --check` recomputes them and compares metric by metric with the
//! tolerance bands below, naming exactly which fault point drifted and
//! by how much.
//!
//! Tolerances (documented contract, mirrored in `GOLDEN.json`):
//! - counts (`n`, `values`, `stuck`, `failed`): exact;
//! - `mean` and the quantile metrics (`min`, `q25`, `median`, `q75`,
//!   `max`): relative drift ≤ [`MEAN_TOLERANCE`];
//! - `std_dev`: relative drift ≤ [`STD_TOLERANCE`] (σ of a small
//!   population amplifies last-ulp differences);
//! - absolute differences below [`ABS_FLOOR`] (a tenth of a
//!   femtosecond — far under the counter's resolution) never count as
//!   drift.

use std::collections::BTreeMap;

use rotsv_num::stats::{percentile, Summary};
use rotsv_obs::{json_digest, Json};

use crate::ledger::{LedgerEntry, SampleStatus};

/// Significant decimal digits each metric is rounded to before
/// digesting — the documented quantization of the golden fingerprint.
pub const ROUND_SIG_DIGITS: u32 = 6;
/// Relative tolerance for `mean` and quantile metrics.
pub const MEAN_TOLERANCE: f64 = 2e-3;
/// Relative tolerance for `std_dev`.
pub const STD_TOLERANCE: f64 = 2e-2;
/// Absolute drift floor in metric units (seconds for ΔT metrics).
pub const ABS_FLOOR: f64 = 1e-16;
/// Schema version of `GOLDEN.json`.
pub const GOLDEN_SCHEMA_VERSION: f64 = 1.0;

/// Rounds to [`ROUND_SIG_DIGITS`] significant decimal digits.
pub fn round_metric(v: f64) -> f64 {
    if !v.is_finite() {
        return v;
    }
    format!("{v:.*e}", (ROUND_SIG_DIGITS - 1) as usize)
        .parse()
        .expect("formatted float reparses")
}

/// The ordered value metrics of a point summary.
const VALUE_METRICS: [&str; 7] = ["mean", "std_dev", "min", "q25", "median", "q75", "max"];

/// Summary of one fault point's sample population.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSignature {
    /// Fault-point label, e.g. `"vdd=1.10 open-1k"`.
    pub point: String,
    /// Total samples recorded at this point.
    pub n: usize,
    /// Samples that produced a usable value.
    pub values: usize,
    /// Samples whose ring stuck (a detection, not a failure).
    pub stuck: usize,
    /// Samples that failed (reference failures, solver errors, panics).
    pub failed: usize,
    /// `(metric, rounded value)` pairs in fixed order (`mean`,
    /// `std_dev`, `min`, `q25`, `median`, `q75`, `max`); empty when no
    /// sample produced a value.
    pub metrics: Vec<(String, f64)>,
}

impl PointSignature {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("point".into(), Json::Str(self.point.clone())),
            ("n".into(), Json::Num(self.n as f64)),
            ("values".into(), Json::Num(self.values as f64)),
            ("stuck".into(), Json::Num(self.stuck as f64)),
            ("failed".into(), Json::Num(self.failed as f64)),
        ];
        for (name, value) in &self.metrics {
            members.push((name.clone(), Json::num_or_null(*value)));
        }
        Json::Obj(members)
    }
}

/// One experiment's golden signature: sorted point summaries plus their
/// FNV-1a digest.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSignature {
    /// Experiment id.
    pub experiment: String,
    /// Campaign seed the populations were produced from.
    pub seed: u64,
    /// Point summaries, sorted by label.
    pub points: Vec<PointSignature>,
    /// FNV-1a digest of the canonical points array.
    pub digest: String,
}

impl ExperimentSignature {
    /// Condenses ledger entries of one experiment into its signature.
    ///
    /// Payload convention (see [`crate::SampleSet`]): objects with a
    /// `"point"` label and a `"kind"` of `"value"` (with `"value"`),
    /// `"stuck"`, or `"reference_failed"`. `failed` ledger entries
    /// count into `failed` of the point they name, or of the synthetic
    /// `"(unattributed)"` point when the failure payload has none.
    ///
    /// # Errors
    ///
    /// Returns a description when entries mix experiments or a payload
    /// violates the convention.
    pub fn from_entries(entries: &[LedgerEntry]) -> Result<ExperimentSignature, String> {
        let first = entries.first().ok_or("cannot sign an empty ledger")?;
        #[derive(Default)]
        struct Acc {
            values: Vec<f64>,
            stuck: usize,
            failed: usize,
            n: usize,
        }
        let mut by_point: BTreeMap<String, Acc> = BTreeMap::new();
        for e in entries {
            if e.experiment != first.experiment {
                return Err(format!(
                    "mixed experiments in one signature: '{}' and '{}'",
                    first.experiment, e.experiment
                ));
            }
            let point = e
                .payload
                .get("point")
                .and_then(Json::as_str)
                .unwrap_or("(unattributed)")
                .to_owned();
            let acc = by_point.entry(point).or_default();
            acc.n += 1;
            if e.status == SampleStatus::Failed {
                acc.failed += 1;
                continue;
            }
            match e.payload.get("kind").and_then(Json::as_str) {
                Some("value") => {
                    let v = e
                        .payload
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| {
                            format!(
                                "'{}' sample {}: kind 'value' without a numeric 'value'",
                                e.experiment, e.index
                            )
                        })?;
                    acc.values.push(v);
                }
                Some("stuck") => acc.stuck += 1,
                Some("reference_failed") => acc.failed += 1,
                other => {
                    return Err(format!(
                        "'{}' sample {}: unknown payload kind {other:?}",
                        e.experiment, e.index
                    ))
                }
            }
        }
        let points: Vec<PointSignature> = by_point
            .into_iter()
            .map(|(point, acc)| {
                let metrics = if acc.values.is_empty() {
                    Vec::new()
                } else {
                    let s = Summary::of(&acc.values);
                    [
                        s.mean,
                        s.std_dev,
                        s.min,
                        percentile(&acc.values, 25.0),
                        percentile(&acc.values, 50.0),
                        percentile(&acc.values, 75.0),
                        s.max,
                    ]
                    .iter()
                    .zip(VALUE_METRICS)
                    .map(|(v, name)| (name.to_owned(), round_metric(*v)))
                    .collect()
                };
                PointSignature {
                    point,
                    n: acc.n,
                    values: acc.values.len(),
                    stuck: acc.stuck,
                    failed: acc.failed,
                    metrics,
                }
            })
            .collect();
        let digest = json_digest(&Json::Arr(
            points.iter().map(PointSignature::to_json).collect(),
        ));
        Ok(ExperimentSignature {
            experiment: first.experiment.clone(),
            seed: first.seed,
            points,
            digest,
        })
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("digest".into(), Json::Str(self.digest.clone())),
            (
                "points".into(),
                Json::Arr(self.points.iter().map(PointSignature::to_json).collect()),
            ),
        ])
    }
}

/// Builds the `GOLDEN.json` document for a set of signatures.
pub fn golden_doc(signatures: &[ExperimentSignature], fidelity: &str) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(GOLDEN_SCHEMA_VERSION)),
        ("fidelity".into(), Json::Str(fidelity.to_owned())),
        (
            "rounding_sig_digits".into(),
            Json::Num(f64::from(ROUND_SIG_DIGITS)),
        ),
        (
            "tolerances".into(),
            Json::Obj(vec![
                ("mean".into(), Json::Num(MEAN_TOLERANCE)),
                ("quantile".into(), Json::Num(MEAN_TOLERANCE)),
                ("std_dev".into(), Json::Num(STD_TOLERANCE)),
                ("abs_floor".into(), Json::Num(ABS_FLOOR)),
            ]),
        ),
        (
            "experiments".into(),
            Json::Arr(
                signatures
                    .iter()
                    .map(ExperimentSignature::to_json)
                    .collect(),
            ),
        ),
    ])
}

/// One out-of-tolerance difference between current results and the
/// committed golden signatures.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Experiment id.
    pub experiment: String,
    /// Fault-point label (or `"(experiment)"` for experiment-level
    /// problems such as a seed change).
    pub point: String,
    /// Metric that drifted (`"mean"`, `"stuck"`, `"presence"`, …).
    pub metric: String,
    /// Human-readable description including both values and the band.
    pub detail: String,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} / {}: {}",
            self.experiment, self.point, self.metric, self.detail
        )
    }
}

fn tolerance_for(metric: &str) -> f64 {
    if metric == "std_dev" {
        STD_TOLERANCE
    } else {
        MEAN_TOLERANCE
    }
}

fn count_of(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn diff_point(experiment: &str, current: &PointSignature, golden: &Json, drifts: &mut Vec<Drift>) {
    for (key, now) in [
        ("n", current.n),
        ("values", current.values),
        ("stuck", current.stuck),
        ("failed", current.failed),
    ] {
        let then = count_of(golden, key);
        if then != now as f64 {
            drifts.push(Drift {
                experiment: experiment.to_owned(),
                point: current.point.clone(),
                metric: key.to_owned(),
                detail: format!("count changed: golden {then} -> current {now} (counts are exact)"),
            });
        }
    }
    let golden_metrics: Vec<(&str, Option<f64>)> = VALUE_METRICS
        .iter()
        .map(|m| (*m, golden.get(m).and_then(Json::as_f64)))
        .collect();
    for (name, then) in golden_metrics {
        let now = current
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v);
        match (then, now) {
            (None, None) => {}
            (Some(then), Some(now)) => {
                let tol = tolerance_for(name);
                let band = tol * then.abs().max(ABS_FLOOR);
                let diff = (now - then).abs();
                if diff > band.max(ABS_FLOOR) {
                    let rel = if then != 0.0 {
                        (now / then - 1.0) * 100.0
                    } else {
                        f64::INFINITY
                    };
                    drifts.push(Drift {
                        experiment: experiment.to_owned(),
                        point: current.point.clone(),
                        metric: name.to_owned(),
                        detail: format!(
                            "golden {then:.6e} -> current {now:.6e} ({rel:+.2} %, tolerance ±{:.2} %)",
                            tol * 100.0
                        ),
                    });
                }
            }
            (then, now) => {
                drifts.push(Drift {
                    experiment: experiment.to_owned(),
                    point: current.point.clone(),
                    metric: name.to_owned(),
                    detail: format!("metric presence changed: golden {then:?}, current {now:?}"),
                });
            }
        }
    }
}

/// Compares freshly computed signatures against a parsed `GOLDEN.json`.
///
/// Returns every out-of-tolerance drift (empty = pass). A digest match
/// short-circuits an experiment: byte-identical canonical summaries
/// cannot drift.
///
/// # Errors
///
/// Returns a description when the golden document is malformed or
/// misses an experiment that was requested.
pub fn diff_against_golden(
    current: &[ExperimentSignature],
    golden: &Json,
) -> Result<Vec<Drift>, String> {
    let experiments = golden
        .get("experiments")
        .and_then(Json::as_arr)
        .ok_or("GOLDEN.json: missing 'experiments' array")?;
    let mut drifts = Vec::new();
    for sig in current {
        let Some(gold) = experiments
            .iter()
            .find(|e| e.get("experiment").and_then(Json::as_str) == Some(&sig.experiment))
        else {
            return Err(format!(
                "GOLDEN.json has no entry for '{}'; regenerate with `experiments golden --write`",
                sig.experiment
            ));
        };
        if gold.get("digest").and_then(Json::as_str) == Some(&sig.digest) {
            continue;
        }
        if gold.get("seed").and_then(Json::as_f64) != Some(sig.seed as f64) {
            drifts.push(Drift {
                experiment: sig.experiment.clone(),
                point: "(experiment)".into(),
                metric: "seed".into(),
                detail: format!(
                    "seed changed (golden {:?}, current {}); goldens must be regenerated",
                    gold.get("seed").and_then(Json::as_f64),
                    sig.seed
                ),
            });
            continue;
        }
        let gold_points = gold.get("points").and_then(Json::as_arr).unwrap_or(&[]);
        for point in &sig.points {
            match gold_points
                .iter()
                .find(|p| p.get("point").and_then(Json::as_str) == Some(&point.point))
            {
                Some(gp) => diff_point(&sig.experiment, point, gp, &mut drifts),
                None => drifts.push(Drift {
                    experiment: sig.experiment.clone(),
                    point: point.point.clone(),
                    metric: "presence".into(),
                    detail: "fault point absent from GOLDEN.json".into(),
                }),
            }
        }
        for gp in gold_points {
            let label = gp.get("point").and_then(Json::as_str).unwrap_or("?");
            if !sig.points.iter().any(|p| p.point == label) {
                drifts.push(Drift {
                    experiment: sig.experiment.clone(),
                    point: label.to_owned(),
                    metric: "presence".into(),
                    detail: "golden fault point missing from current results".into(),
                });
            }
        }
    }
    Ok(drifts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value_entry(point: &str, index: usize, value: f64) -> LedgerEntry {
        LedgerEntry {
            experiment: "eX".into(),
            index,
            seed: 11,
            git_rev: "rev".into(),
            status: SampleStatus::Ok,
            payload: Json::Obj(vec![
                ("point".into(), Json::Str(point.into())),
                ("kind".into(), Json::Str("value".into())),
                ("value".into(), Json::Num(value)),
            ]),
        }
    }

    fn sample_entries() -> Vec<LedgerEntry> {
        let mut entries = Vec::new();
        for (i, v) in [1.0e-11, 1.1e-11, 1.2e-11, 0.9e-11].iter().enumerate() {
            entries.push(value_entry("vdd=1.10 fault-free", i, *v));
        }
        for (i, v) in [0.7e-11, 0.75e-11, 0.72e-11].iter().enumerate() {
            entries.push(value_entry("vdd=1.10 open-1k", 4 + i, *v));
        }
        entries
    }

    #[test]
    fn signature_is_deterministic_and_order_insensitive() {
        let a = ExperimentSignature::from_entries(&sample_entries()).unwrap();
        let mut shuffled = sample_entries();
        shuffled.reverse();
        let b = ExperimentSignature::from_entries(&shuffled).unwrap();
        assert_eq!(a, b, "grouping sorts points, so entry order is irrelevant");
        assert_eq!(a.points.len(), 2);
        assert_eq!(a.points[0].point, "vdd=1.10 fault-free");
        assert_eq!(a.points[0].values, 4);
    }

    #[test]
    fn rounding_is_six_significant_digits() {
        assert_eq!(round_metric(1.234567891e-11), 1.23457e-11);
        assert_eq!(round_metric(-9.876543e3), -9.87654e3);
        assert_eq!(round_metric(0.0), 0.0);
    }

    #[test]
    fn clean_check_passes_and_perturbed_mean_is_named() {
        let sig = ExperimentSignature::from_entries(&sample_entries()).unwrap();
        let golden = golden_doc(std::slice::from_ref(&sig), "fast");
        assert_eq!(
            diff_against_golden(std::slice::from_ref(&sig), &golden).unwrap(),
            Vec::new(),
            "identical signatures must not drift"
        );

        // A +1 % ΔT perturbation on the open point must be flagged and
        // named; 1 % is five times the 0.2 % mean tolerance.
        let perturbed: Vec<LedgerEntry> = sample_entries()
            .into_iter()
            .map(|mut e| {
                if e.payload.get("point").and_then(Json::as_str) == Some("vdd=1.10 open-1k") {
                    let v = e.payload.get("value").and_then(Json::as_f64).unwrap();
                    e.payload = Json::Obj(vec![
                        ("point".into(), Json::Str("vdd=1.10 open-1k".into())),
                        ("kind".into(), Json::Str("value".into())),
                        ("value".into(), Json::Num(v * 1.01)),
                    ]);
                }
                e
            })
            .collect();
        let drifted = ExperimentSignature::from_entries(&perturbed).unwrap();
        assert_ne!(drifted.digest, sig.digest);
        let drifts = diff_against_golden(std::slice::from_ref(&drifted), &golden).unwrap();
        assert!(!drifts.is_empty());
        assert!(
            drifts.iter().all(|d| d.point == "vdd=1.10 open-1k"),
            "only the perturbed fault point may drift: {drifts:?}"
        );
        assert!(
            drifts
                .iter()
                .any(|d| d.metric == "mean" && d.detail.contains("+1.0")),
            "the mean drift must be named with its size: {drifts:?}"
        );
    }

    #[test]
    fn stuck_and_failed_counts_are_exact() {
        let mut entries = sample_entries();
        entries.push(LedgerEntry {
            experiment: "eX".into(),
            index: 7,
            seed: 11,
            git_rev: "rev".into(),
            status: SampleStatus::Ok,
            payload: Json::Obj(vec![
                ("point".into(), Json::Str("vdd=1.10 open-1k".into())),
                ("kind".into(), Json::Str("stuck".into())),
            ]),
        });
        let sig = ExperimentSignature::from_entries(&entries).unwrap();
        let golden = golden_doc(std::slice::from_ref(&sig), "fast");

        entries.pop();
        let fewer = ExperimentSignature::from_entries(&entries).unwrap();
        let drifts = diff_against_golden(std::slice::from_ref(&fewer), &golden).unwrap();
        assert!(
            drifts
                .iter()
                .any(|d| d.metric == "stuck" && d.point == "vdd=1.10 open-1k"),
            "{drifts:?}"
        );
    }
}
