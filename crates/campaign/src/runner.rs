//! The resumable campaign runner.
//!
//! Runs every pending sample of every [`SampleSet`] in campaign order,
//! fanning chunks out across worker threads with
//! [`rotsv_num::parallel::try_parallel_map`] so one panicking die never
//! aborts the run: a panic is retried once and, if it persists,
//! recorded as a `failed` ledger entry carrying the panic payload.
//! Entries are appended in deterministic (experiment, index) order, so
//! resuming an interrupted campaign reproduces the uninterrupted ledger
//! byte for byte.

use std::collections::HashSet;
use std::path::Path;

use rotsv_num::parallel::{effective_threads, try_parallel_map};
use rotsv_obs::Json;

use crate::ledger::{read_ledger, LedgerEntry, LedgerWriter, SampleStatus};
use crate::SampleSet;

/// Options controlling one [`run_campaign`] invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignOptions {
    /// Discard any existing ledger instead of resuming from it.
    pub fresh: bool,
    /// Stop (cleanly, resumably) once the ledger holds this many
    /// entries. Used by tests and drills to simulate a killed run at a
    /// deterministic point.
    pub stop_after: Option<usize>,
}

/// Summary of one campaign invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Total samples across all experiments in the campaign.
    pub total: usize,
    /// Samples already present in the ledger and skipped.
    pub resumed: usize,
    /// Samples executed by this invocation.
    pub ran: usize,
    /// Failed samples in the *entire* ledger after this invocation:
    /// `(experiment, index, description)`.
    pub failures: Vec<(String, usize, String)>,
    /// `true` when `stop_after` ended the run before all samples were
    /// recorded; the campaign can be resumed.
    pub stopped_early: bool,
}

impl CampaignReport {
    /// `true` once every sample of every experiment is in the ledger.
    pub fn complete(&self) -> bool {
        !self.stopped_early
    }
}

fn failure_description(payload: &Json) -> String {
    for key in ["panic", "error"] {
        if let Some(msg) = payload.get(key).and_then(Json::as_str) {
            return format!("{key}: {msg}");
        }
    }
    payload.render()
}

type Attempt = Result<Result<Json, String>, rotsv_num::parallel::WorkerPanic>;

/// One panic-guarded attempt at a sample.
fn guarded_attempt(set: &dyn SampleSet, index: usize) -> Attempt {
    try_parallel_map(1, |_| set.run_sample(index))
        .pop()
        .expect("one result")
}

/// Converts a first-attempt outcome into a final `(status, payload)`.
///
/// A panicking first attempt is retried exactly once (covering
/// transient environment failures); a second panic — or a plain error
/// from the sample set, which is deterministic and not worth retrying —
/// yields a [`SampleStatus::Failed`] payload recording the panic
/// payload or error text.
fn flatten_attempt(set: &dyn SampleSet, index: usize, first: Attempt) -> (SampleStatus, Json) {
    let retried;
    let outcome = match first {
        Err(_) => {
            retried = guarded_attempt(set, index);
            &retried
        }
        ref done => done,
    };
    match outcome {
        Ok(Ok(payload)) => (SampleStatus::Ok, payload.clone()),
        Ok(Err(msg)) => (
            SampleStatus::Failed,
            Json::Obj(vec![("error".into(), Json::Str(msg.clone()))]),
        ),
        Err(p) => (
            SampleStatus::Failed,
            Json::Obj(vec![("panic".into(), Json::Str(p.payload.clone()))]),
        ),
    }
}

/// Runs one sample with panic isolation and a single retry.
pub fn run_one_sample(set: &dyn SampleSet, index: usize) -> (SampleStatus, Json) {
    let first = guarded_attempt(set, index);
    flatten_attempt(set, index, first)
}

/// Runs all samples of `set` in memory (no ledger), parallel and
/// panic-isolated, returning the would-be ledger entries in index
/// order. This is the path `golden --check` uses: same per-sample
/// semantics as a campaign, no resume bookkeeping.
pub fn collect_entries(set: &dyn SampleSet, git_rev: &str) -> Vec<LedgerEntry> {
    let n = set.len();
    try_parallel_map(n, |i| set.run_sample(i))
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let (status, payload) = flatten_attempt(set, i, r);
            LedgerEntry {
                experiment: set.experiment().to_owned(),
                index: i,
                seed: set.seed(),
                git_rev: git_rev.to_owned(),
                status,
                payload,
            }
        })
        .collect()
}

/// Runs (or resumes) a campaign over `sets`, appending per-sample
/// entries to the JSONL ledger at `ledger_path`.
///
/// Resume semantics: entries already in the ledger whose
/// `(experiment, index, seed, git_rev)` key matches the current
/// campaign are skipped (including `failed` entries — a deterministic
/// failure would only repeat). Entries for experiments not in `sets`
/// are left untouched. An entry for a listed experiment recorded under
/// a *different* seed or git revision is an error: mixing revisions in
/// one ledger would silently blend incomparable populations — rerun
/// with `fresh` instead.
///
/// # Errors
///
/// Returns I/O errors, ledger-key conflicts, and sample-set
/// inconsistencies as strings. Per-sample failures are *not* errors;
/// they are recorded in the ledger and reported in the
/// [`CampaignReport`].
pub fn run_campaign(
    sets: &[Box<dyn SampleSet>],
    ledger_path: &Path,
    opts: &CampaignOptions,
) -> Result<CampaignReport, String> {
    let git_rev = rotsv_obs::git_rev();
    if opts.fresh {
        match std::fs::remove_file(ledger_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot remove {}: {e}", ledger_path.display())),
        }
    }
    let loaded = read_ledger(ledger_path)?;

    let ids: Vec<&str> = sets.iter().map(|s| s.experiment()).collect();
    let mut done: Vec<HashSet<usize>> = vec![HashSet::new(); sets.len()];
    let mut failures = Vec::new();
    for entry in &loaded.entries {
        let Some(pos) = ids.iter().position(|id| *id == entry.experiment) else {
            continue;
        };
        let set = &sets[pos];
        if entry.seed != set.seed() || entry.git_rev != git_rev {
            return Err(format!(
                "ledger {} holds '{}' sample {} from seed {} at rev {}, but this campaign \
                 is seed {} at rev {}; resume requires a matching ledger (or --fresh)",
                ledger_path.display(),
                entry.experiment,
                entry.index,
                entry.seed,
                entry.git_rev,
                set.seed(),
                git_rev,
            ));
        }
        if entry.index >= set.len() {
            return Err(format!(
                "ledger {} holds '{}' sample {} but the experiment only has {} samples; \
                 was it recorded at a different fidelity?",
                ledger_path.display(),
                entry.experiment,
                entry.index,
                set.len(),
            ));
        }
        done[pos].insert(entry.index);
        if entry.status == SampleStatus::Failed {
            failures.push((
                entry.experiment.clone(),
                entry.index,
                failure_description(&entry.payload),
            ));
        }
    }

    let mut writer = LedgerWriter::open(ledger_path, loaded.valid_bytes)?;
    let mut written = loaded.entries.len();
    let total: usize = sets.iter().map(|s| s.len()).sum();
    let resumed: usize = done.iter().map(HashSet::len).sum();
    let mut ran = 0usize;
    let mut stopped_early = false;

    'campaign: for (pos, set) in sets.iter().enumerate() {
        let pending: Vec<usize> = (0..set.len()).filter(|i| !done[pos].contains(i)).collect();
        // Chunked fan-out: results are appended in index order after
        // each chunk, so the on-disk entry order is independent of
        // thread scheduling and a stop/kill point only shortens the
        // prefix.
        let chunk_size = (effective_threads(pending.len()) * 4).max(1);
        for chunk in pending.chunks(chunk_size) {
            let attempts = try_parallel_map(chunk.len(), |k| set.run_sample(chunk[k]));
            for (k, first) in attempts.into_iter().enumerate() {
                let index = chunk[k];
                let (status, payload) = flatten_attempt(set.as_ref(), index, first);
                if status == SampleStatus::Failed {
                    failures.push((
                        set.experiment().to_owned(),
                        index,
                        failure_description(&payload),
                    ));
                }
                writer.append(&LedgerEntry {
                    experiment: set.experiment().to_owned(),
                    index,
                    seed: set.seed(),
                    git_rev: git_rev.clone(),
                    status,
                    payload,
                })?;
                written += 1;
                ran += 1;
                if opts.stop_after.is_some_and(|limit| written >= limit) && written < total {
                    stopped_early = true;
                    break 'campaign;
                }
            }
        }
    }

    failures.sort();
    Ok(CampaignReport {
        total,
        resumed,
        ran,
        failures,
        stopped_early,
    })
}
