//! The append-only JSONL sample ledger.
//!
//! One line per completed sample, written in deterministic order
//! (experiments in campaign order, sample indices ascending), so the
//! ledger of an interrupted-then-resumed campaign is byte-identical to
//! that of an uninterrupted run. Every entry is keyed by
//! `(experiment, index, seed, git_rev)`; a resume only skips entries
//! whose full key matches the current campaign, and refuses to mix
//! revisions or seeds in one ledger.
//!
//! A crash can leave a partial trailing line (the process died inside a
//! `write`). [`read_ledger`] tolerates that: it returns the entries of
//! the valid prefix plus the prefix length in bytes, and the writer
//! truncates the file back to that length before appending.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use rotsv_obs::Json;

/// Outcome of one sample, as recorded in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStatus {
    /// The sample completed and its payload is a measurement.
    Ok,
    /// The sample failed (solver error, or a worker panic that
    /// persisted through one retry); the payload describes the failure.
    Failed,
}

impl SampleStatus {
    fn as_str(self) -> &'static str {
        match self {
            SampleStatus::Ok => "ok",
            SampleStatus::Failed => "failed",
        }
    }
}

/// One ledger line: a keyed, self-describing sample record.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Experiment id, e.g. `"e3"`.
    pub experiment: String,
    /// Sample index within the experiment's deterministic enumeration.
    pub index: usize,
    /// RNG seed of the experiment (every sample derives its own seed
    /// from this and its index).
    pub seed: u64,
    /// Git revision the sample was produced by.
    pub git_rev: String,
    /// Whether the sample completed.
    pub status: SampleStatus,
    /// Sample payload (see [`crate::SampleSet`] for the convention), or
    /// a failure description for [`SampleStatus::Failed`] entries.
    pub payload: Json,
}

impl LedgerEntry {
    /// Renders the entry as one compact JSON line (no trailing newline).
    /// The key order is fixed so identical entries are byte-identical.
    pub fn to_line(&self) -> String {
        Json::Obj(vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("index".into(), Json::Num(self.index as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("git_rev".into(), Json::Str(self.git_rev.clone())),
            ("status".into(), Json::Str(self.status.as_str().to_owned())),
            ("payload".into(), self.payload.clone()),
        ])
        .render()
    }

    /// Parses one ledger line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem (invalid JSON, missing
    /// or mistyped key).
    pub fn from_line(line: &str) -> Result<LedgerEntry, String> {
        let doc = rotsv_obs::json::parse(line)?;
        let experiment = doc
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("missing 'experiment'")?
            .to_owned();
        let index = doc
            .get("index")
            .and_then(Json::as_f64)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or("missing or non-integral 'index'")? as usize;
        let seed = doc
            .get("seed")
            .and_then(Json::as_f64)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or("missing or non-integral 'seed'")? as u64;
        let git_rev = doc
            .get("git_rev")
            .and_then(Json::as_str)
            .ok_or("missing 'git_rev'")?
            .to_owned();
        let status = match doc.get("status").and_then(Json::as_str) {
            Some("ok") => SampleStatus::Ok,
            Some("failed") => SampleStatus::Failed,
            _ => return Err("missing or unknown 'status'".into()),
        };
        let payload = doc.get("payload").ok_or("missing 'payload'")?.clone();
        Ok(LedgerEntry {
            experiment,
            index,
            seed,
            git_rev,
            status,
            payload,
        })
    }
}

/// A ledger file read back from disk.
#[derive(Debug, Clone, Default)]
pub struct LoadedLedger {
    /// Entries of the valid prefix, in file order.
    pub entries: Vec<LedgerEntry>,
    /// Byte length of the valid prefix (every complete, parseable line).
    pub valid_bytes: u64,
    /// Whether a partial or unparseable trailing line was dropped.
    pub truncated_tail: bool,
}

/// Reads a ledger file, tolerating a partial trailing line.
///
/// A line is part of the valid prefix only if it is newline-terminated
/// *and* parses as a ledger entry; everything from the first bad line on
/// is reported via `truncated_tail` and excluded from `valid_bytes`.
/// A missing file reads as an empty ledger.
///
/// # Errors
///
/// Returns I/O errors (other than "not found") as strings.
pub fn read_ledger(path: &Path) -> Result<LoadedLedger, String> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => f
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadedLedger::default()),
        Err(e) => return Err(format!("cannot open {}: {e}", path.display())),
    };
    let mut loaded = LoadedLedger::default();
    let mut offset = 0usize;
    while offset < text.len() {
        let rest = &text[offset..];
        let Some(nl) = rest.find('\n') else {
            // Partial trailing line: the previous run died mid-write.
            loaded.truncated_tail = true;
            break;
        };
        match LedgerEntry::from_line(&rest[..nl]) {
            Ok(entry) => {
                loaded.entries.push(entry);
                offset += nl + 1;
                loaded.valid_bytes = offset as u64;
            }
            Err(_) => {
                // Corrupt line: treat it and everything after as tail.
                loaded.truncated_tail = true;
                break;
            }
        }
    }
    Ok(loaded)
}

/// Appends ledger entries one line at a time, flushing after each line
/// so a killed process loses at most the line being written.
#[derive(Debug)]
pub struct LedgerWriter {
    path: PathBuf,
    file: File,
}

impl LedgerWriter {
    /// Opens `path` for appending, first truncating it to `valid_bytes`
    /// (dropping any partial trailing line found by [`read_ledger`]).
    /// Creates the file (and its parent directory) if missing.
    ///
    /// # Errors
    ///
    /// Returns I/O errors as strings.
    pub fn open(path: &Path, valid_bytes: u64) -> Result<LedgerWriter, String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        file.set_len(valid_bytes)
            .map_err(|e| format!("cannot truncate {}: {e}", path.display()))?;
        let mut w = LedgerWriter {
            path: path.to_owned(),
            file,
        };
        use std::io::Seek as _;
        w.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| format!("cannot seek {}: {e}", w.path.display()))?;
        Ok(w)
    }

    /// Appends one entry as a JSONL line and flushes.
    ///
    /// # Errors
    ///
    /// Returns I/O errors as strings.
    pub fn append(&mut self, entry: &LedgerEntry) -> Result<(), String> {
        let mut line = entry.to_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append to {}: {e}", self.path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: usize) -> LedgerEntry {
        LedgerEntry {
            experiment: "eX".into(),
            index: i,
            seed: 7,
            git_rev: "deadbeef".into(),
            status: if i == 2 {
                SampleStatus::Failed
            } else {
                SampleStatus::Ok
            },
            payload: Json::Obj(vec![
                ("point".into(), Json::Str(format!("p{}", i % 2))),
                ("kind".into(), Json::Str("value".into())),
                ("value".into(), Json::Num(1.5e-12 * (i as f64 + 1.0))),
            ]),
        }
    }

    #[test]
    fn line_roundtrip_is_lossless() {
        for i in 0..4 {
            let e = entry(i);
            let line = e.to_line();
            assert!(!line.contains('\n'), "single line: {line}");
            assert_eq!(LedgerEntry::from_line(&line).unwrap(), e);
        }
    }

    #[test]
    fn read_tolerates_and_reports_partial_tail() {
        let dir = std::env::temp_dir().join("rotsv_ledger_partial_tail");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");

        let mut text = String::new();
        for i in 0..3 {
            text.push_str(&entry(i).to_line());
            text.push('\n');
        }
        let full_len = text.len() as u64;
        text.push_str("{\"experiment\": \"eX\", \"ind"); // torn write
        std::fs::write(&path, &text).unwrap();

        let loaded = read_ledger(&path).unwrap();
        assert_eq!(loaded.entries.len(), 3);
        assert_eq!(loaded.valid_bytes, full_len);
        assert!(loaded.truncated_tail);

        // Re-opening the writer drops the torn tail; appending entry 3
        // yields exactly the uninterrupted file.
        let mut w = LedgerWriter::open(&path, loaded.valid_bytes).unwrap();
        w.append(&entry(3)).unwrap();
        let reread = read_ledger(&path).unwrap();
        assert_eq!(reread.entries.len(), 4);
        assert!(!reread.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let loaded =
            read_ledger(Path::new("/nonexistent/rotsv/ledger.jsonl")).expect("missing is empty");
        assert!(loaded.entries.is_empty());
        assert_eq!(loaded.valid_bytes, 0);
    }
}
