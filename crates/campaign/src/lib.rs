#![warn(missing_docs)]

//! Resumable experiment campaigns with golden-result regression gating.
//!
//! A *campaign* runs an arbitrary set of experiments as one resumable
//! unit: every per-sample result is streamed to an append-only JSONL
//! [`ledger`] keyed by `(experiment, sample index, seed, git rev)`, so
//! a killed or crashed run resumes exactly where it stopped — and
//! because every sample derives its RNG from its own index, the
//! resumed ledger is byte-identical to an uninterrupted one. Worker
//! panics are isolated per sample: caught, retried once, and recorded
//! as `failed` entries instead of aborting the campaign ([`runner`]).
//!
//! On top of the ledger sits the [`golden`] layer: each experiment's
//! per-fault-point ΔT population summaries, rounded to a documented
//! tolerance and FNV-fingerprinted, are committed as `GOLDEN.json`;
//! `experiments golden --check` recomputes and diffs them with
//! per-metric tolerance bands, turning silent numerical drift into a
//! named, sized CI failure.
//!
//! The crate is deliberately independent of the circuit stack: an
//! experiment plugs in by implementing [`SampleSet`], which enumerates
//! its samples and runs one sample by index. The concrete sets for the
//! paper's experiments live in `rotsv-experiments`.

pub mod golden;
pub mod ledger;
pub mod runner;

pub use golden::{
    diff_against_golden, golden_doc, Drift, ExperimentSignature, PointSignature,
    GOLDEN_SCHEMA_VERSION, MEAN_TOLERANCE, ROUND_SIG_DIGITS, STD_TOLERANCE,
};
pub use ledger::{read_ledger, LedgerEntry, LedgerWriter, LoadedLedger, SampleStatus};
pub use runner::{collect_entries, run_campaign, run_one_sample, CampaignOptions, CampaignReport};

pub use rotsv_obs::Json;

/// A deterministic, index-addressable set of experiment samples.
///
/// Implementations must be pure in the sense that `run_sample(i)`
/// depends only on `i` (plus the set's fixed configuration and seed):
/// the campaign runner re-executes arbitrary subsets in arbitrary
/// parallel order and relies on per-index determinism for byte-stable
/// ledgers.
///
/// # Payload convention
///
/// `run_sample` returns a JSON object consumed by the golden layer:
///
/// - `{"point": <label>, "kind": "value", "value": <number>}` — a
///   usable measurement (ΔT or delay, in seconds);
/// - `{"point": <label>, "kind": "stuck"}` — the ring stuck (a
///   detection outcome, not a failure);
/// - `{"point": <label>, "kind": "reference_failed"}` — the fault-free
///   reference run failed (flags a broken configuration).
///
/// The `point` label identifies the fault point — e.g.
/// `"vdd=1.10 open-1k"` — and is the unit the golden check names when
/// a drift is found. Use [`value_payload`], [`stuck_payload`] and
/// [`reference_failed_payload`] to build conforming payloads.
pub trait SampleSet: Sync {
    /// Experiment id, e.g. `"e3"`.
    fn experiment(&self) -> &str;
    /// Base RNG seed; sample `i` must derive its own stream from
    /// `(seed, i)`.
    fn seed(&self) -> u64;
    /// Number of samples in the set.
    fn len(&self) -> usize;
    /// `true` when the set has no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Runs sample `index`, returning its payload or an error text.
    ///
    /// # Errors
    ///
    /// Implementations return a description of the failure; the runner
    /// records it as a `failed` ledger entry and continues.
    fn run_sample(&self, index: usize) -> Result<Json, String>;
}

/// Builds a `kind: "value"` payload for a usable measurement.
pub fn value_payload(point: &str, value: f64) -> Json {
    Json::Obj(vec![
        ("point".into(), Json::Str(point.to_owned())),
        ("kind".into(), Json::Str("value".into())),
        ("value".into(), Json::num_or_null(value)),
    ])
}

/// Builds a `kind: "stuck"` payload (ring stopped oscillating).
pub fn stuck_payload(point: &str) -> Json {
    Json::Obj(vec![
        ("point".into(), Json::Str(point.to_owned())),
        ("kind".into(), Json::Str("stuck".into())),
    ])
}

/// Builds a `kind: "reference_failed"` payload.
pub fn reference_failed_payload(point: &str) -> Json {
    Json::Obj(vec![
        ("point".into(), Json::Str(point.to_owned())),
        ("kind".into(), Json::Str("reference_failed".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A cheap deterministic sample set; panics persistently on
    /// `poison` indices, errors on `broken` indices.
    struct SynthSet {
        id: &'static str,
        seed: u64,
        n: usize,
        poison: Vec<usize>,
        broken: Vec<usize>,
    }

    impl SynthSet {
        fn clean(id: &'static str, seed: u64, n: usize) -> Self {
            Self {
                id,
                seed,
                n,
                poison: Vec::new(),
                broken: Vec::new(),
            }
        }
    }

    impl SampleSet for SynthSet {
        fn experiment(&self) -> &str {
            self.id
        }
        fn seed(&self) -> u64 {
            self.seed
        }
        fn len(&self) -> usize {
            self.n
        }
        fn run_sample(&self, index: usize) -> Result<Json, String> {
            assert!(
                self.poison.iter().all(|p| *p != index),
                "poisoned sample {index}"
            );
            if self.broken.contains(&index) {
                return Err(format!("sample {index} cannot converge"));
            }
            // Index-deterministic "measurement".
            let value = (self.seed as f64 + 1.0) * 1e-12 * (index as f64 + 1.0);
            Ok(value_payload(&format!("p{}", index % 2), value))
        }
    }

    fn temp_ledger(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rotsv_campaign_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("ledger.jsonl")
    }

    fn sets() -> Vec<Box<dyn SampleSet>> {
        vec![
            Box::new(SynthSet::clean("s1", 3, 7)),
            Box::new(SynthSet::clean("s2", 5, 9)),
        ]
    }

    #[test]
    fn interrupted_then_resumed_ledger_is_byte_identical() {
        let uninterrupted = temp_ledger("uninterrupted");
        let report = run_campaign(&sets(), &uninterrupted, &CampaignOptions::default()).unwrap();
        assert!(report.complete());
        assert_eq!(report.total, 16);
        assert_eq!(report.ran, 16);
        let want = std::fs::read(&uninterrupted).unwrap();

        // Stop after 7 entries ("kill" mid-run, inside the first set's
        // chunking), then resume.
        let resumable = temp_ledger("resumable");
        let opts = CampaignOptions {
            stop_after: Some(7),
            ..Default::default()
        };
        let stopped = run_campaign(&sets(), &resumable, &opts).unwrap();
        assert!(stopped.stopped_early);
        assert_eq!(stopped.ran, 7);
        let resumed = run_campaign(&sets(), &resumable, &CampaignOptions::default()).unwrap();
        assert!(resumed.complete());
        assert_eq!(resumed.resumed, 7);
        assert_eq!(resumed.ran, 9);
        let got = std::fs::read(&resumable).unwrap();
        assert_eq!(
            got, want,
            "merged ledger must match the uninterrupted run byte for byte"
        );
        let _ = std::fs::remove_dir_all(uninterrupted.parent().unwrap());
        let _ = std::fs::remove_dir_all(resumable.parent().unwrap());
    }

    #[test]
    fn resume_after_torn_tail_is_byte_identical() {
        let clean = temp_ledger("torn_clean");
        run_campaign(&sets(), &clean, &CampaignOptions::default()).unwrap();
        let want = std::fs::read(&clean).unwrap();

        // Simulate a crash mid-write: keep 5 full lines plus half a line.
        let torn = temp_ledger("torn");
        let mut bytes: Vec<u8> = Vec::new();
        let mut lines = 0;
        for (i, b) in want.iter().enumerate() {
            bytes.push(*b);
            if *b == b'\n' {
                lines += 1;
                if lines == 5 {
                    bytes.extend_from_slice(&want[i + 1..i + 20]);
                    break;
                }
            }
        }
        std::fs::write(&torn, &bytes).unwrap();
        let resumed = run_campaign(&sets(), &torn, &CampaignOptions::default()).unwrap();
        assert!(resumed.complete());
        assert_eq!(resumed.resumed, 5, "the torn line is re-run, not trusted");
        assert_eq!(std::fs::read(&torn).unwrap(), want);
        let _ = std::fs::remove_dir_all(clean.parent().unwrap());
        let _ = std::fs::remove_dir_all(torn.parent().unwrap());
    }

    #[test]
    fn panics_and_errors_become_failed_entries_not_aborts() {
        let path = temp_ledger("poison");
        let sets: Vec<Box<dyn SampleSet>> = vec![Box::new(SynthSet {
            id: "s1",
            seed: 3,
            n: 6,
            poison: vec![2],
            broken: vec![4],
        })];
        let report = run_campaign(&sets, &path, &CampaignOptions::default()).unwrap();
        assert!(report.complete());
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
        assert!(report.failures[0].1 == 2 && report.failures[0].2.contains("poisoned sample 2"));
        assert!(report.failures[1].1 == 4 && report.failures[1].2.contains("cannot converge"));

        let loaded = read_ledger(&path).unwrap();
        assert_eq!(loaded.entries.len(), 6, "every sample is recorded");
        assert_eq!(loaded.entries[2].status, SampleStatus::Failed);
        assert!(loaded.entries[2]
            .payload
            .get("panic")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("poisoned sample 2")));
        assert_eq!(loaded.entries[4].status, SampleStatus::Failed);

        // Resuming re-runs nothing: failed entries are recorded state.
        let resumed = run_campaign(&sets, &path, &CampaignOptions::default()).unwrap();
        assert_eq!(resumed.ran, 0);
        assert_eq!(resumed.failures.len(), 2);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn transient_panic_is_retried_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        struct Flaky;
        impl SampleSet for Flaky {
            fn experiment(&self) -> &str {
                "flaky"
            }
            fn seed(&self) -> u64 {
                0
            }
            fn len(&self) -> usize {
                1
            }
            fn run_sample(&self, _index: usize) -> Result<Json, String> {
                assert!(
                    CALLS.fetch_add(1, Ordering::SeqCst) > 0,
                    "first attempt fails"
                );
                Ok(value_payload("p0", 1e-12))
            }
        }
        let (status, payload) = run_one_sample(&Flaky, 0);
        assert_eq!(status, SampleStatus::Ok, "{payload:?}");
        assert_eq!(CALLS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn mismatched_rev_or_seed_refuses_to_resume() {
        let path = temp_ledger("mismatch");
        run_campaign(&sets(), &path, &CampaignOptions::default()).unwrap();
        let other: Vec<Box<dyn SampleSet>> = vec![Box::new(SynthSet::clean("s1", 99, 7))];
        let err = run_campaign(&other, &path, &CampaignOptions::default()).unwrap_err();
        assert!(err.contains("seed"), "{err}");

        // --fresh discards the conflicting ledger and starts over.
        let opts = CampaignOptions {
            fresh: true,
            ..Default::default()
        };
        let report = run_campaign(&other, &path, &opts).unwrap();
        assert!(report.complete());
        assert_eq!(report.ran, 7);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
