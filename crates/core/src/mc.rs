//! Monte-Carlo populations of ΔT measurements.
//!
//! The paper's Figs. 7, 9 and 10 plot the *spread* of ΔT over random
//! process variation for fault-free and faulty dies. This module runs
//! those populations — in parallel, reproducibly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rotsv_num::SymbolicCache;
use rotsv_spice::{SolverStats, SpiceError};
use rotsv_tsv::TsvFault;
use rotsv_variation::ProcessSpread;

use crate::die::Die;
use crate::measure::{DeltaTMeasurement, TestBench};

/// Which transient engine a Monte-Carlo population runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McEngine {
    /// One scalar adaptive transient per run per die — the reference
    /// engine; golden signatures and campaign ledgers are recorded
    /// against it.
    Scalar,
    /// Picks [`McEngine::Scalar`] or [`McEngine::Batched`] per
    /// population from its sample count and the measured crossover
    /// ([`set_auto_crossover`]) — the default for the figure
    /// experiments.
    Auto,
    /// Streams the whole population through `lanes` structure-of-arrays
    /// SIMD lanes in one transient per run, with mid-transient lane
    /// refill and cohort scheduling (see
    /// `rotsv_spice::transient_queue`). Per-die results are
    /// bit-identical to [`McEngine::BatchedChunked`] and agree with the
    /// scalar engine to well under 0.5 % per ΔT.
    Batched {
        /// SIMD lanes the queue streams through (K).
        lanes: usize,
    },
    /// Fixed batches of up to `lanes` dies per transient in sample
    /// order, with no refill between batches — the v1 scheduling, kept
    /// as the cross-check for the refill path (its results must be
    /// bit-identical to [`McEngine::Batched`] at any lane count).
    BatchedChunked {
        /// Dies simulated per batch (K).
        lanes: usize,
    },
}

/// High bit of [`ENGINE_LANES`] marks the chunked (no-refill) variant.
const CHUNKED_FLAG: usize = 1 << (usize::BITS - 1);

/// Process-wide engine selection; 0 encodes [`McEngine::Scalar`],
/// `usize::MAX` encodes [`McEngine::Auto`], and otherwise the batched
/// lane count, with [`CHUNKED_FLAG`] set for the chunked variant.
static ENGINE_LANES: AtomicUsize = AtomicUsize::new(0);

/// Population size (in samples) at which [`McEngine::Auto`] switches
/// from scalar to batched. The conservative default of 2 reflects that
/// the v2 engine's K=1 overhead is within a few percent of scalar; the
/// experiments binary overwrites it with the crossover measured by
/// `bench_solver` when a benchmark baseline is available.
static AUTO_CROSSOVER: AtomicUsize = AtomicUsize::new(2);

/// Sets the scalar→batched crossover population size used by
/// [`McEngine::Auto`].
pub fn set_auto_crossover(samples: usize) {
    AUTO_CROSSOVER.store(samples.max(1), Ordering::Relaxed);
}

/// The current [`McEngine::Auto`] crossover population size.
pub fn auto_crossover() -> usize {
    AUTO_CROSSOVER.load(Ordering::Relaxed)
}

/// Measured lane table for [`McEngine::Auto`]: rows of
/// `(population_floor, lanes)`. Empty means "use the built-in default"
/// ([`DEFAULT_AUTO_LANE_TABLE`]).
static AUTO_LANE_TABLE: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());

/// The conservative built-in lane table: up to 16 lanes at any
/// population size, matching the pre-measurement behavior. The
/// experiments binary overwrites it with the table derived from
/// `bench_solver`'s `batched_vs_scalar` rows when a benchmark baseline
/// is available (wider K rows only enter once measured faster).
pub const DEFAULT_AUTO_LANE_TABLE: &[(usize, usize)] = &[(1, 16)];

/// Installs the measured lane table used by [`McEngine::Auto`]: each
/// row `(floor, lanes)` says "populations of at least `floor` samples
/// run best at `lanes` lanes". Rows are sorted by floor; the resolver
/// picks the last row the population reaches and never exceeds the
/// population itself. An empty table restores
/// [`DEFAULT_AUTO_LANE_TABLE`].
pub fn set_auto_lane_table(table: &[(usize, usize)]) {
    let mut t: Vec<(usize, usize)> = table
        .iter()
        .copied()
        .filter(|&(_, lanes)| lanes >= 1)
        .collect();
    t.sort_unstable();
    *AUTO_LANE_TABLE.lock().expect("lane table lock") = t;
}

/// The lane table [`McEngine::Auto`] currently resolves against.
pub fn auto_lane_table() -> Vec<(usize, usize)> {
    let t = AUTO_LANE_TABLE.lock().expect("lane table lock");
    if t.is_empty() {
        DEFAULT_AUTO_LANE_TABLE.to_vec()
    } else {
        t.clone()
    }
}

/// The lane width [`McEngine::Auto`] picks for a population of
/// `samples` dies (before capping at the population size).
fn auto_lanes_for(samples: usize) -> usize {
    let mut lanes = 1;
    for (floor, l) in auto_lane_table() {
        if samples >= floor {
            lanes = l;
        } else {
            break;
        }
    }
    lanes
}

/// Installs the measured scalar→batched crossover
/// ([`set_auto_crossover`]) and Auto lane table
/// ([`set_auto_lane_table`]) from a `bench_solver` baseline file
/// (`BENCH_solver.json`'s `batched_refill.crossover_samples` and
/// `batched_refill.auto_lane_table` members). Returns `true` when
/// anything was installed; a missing or malformed file leaves the
/// defaults untouched. Both the experiments binary and the screening
/// server load through here so every frontend resolves `Auto` the same
/// way.
pub fn load_measured_tuning(path: &std::path::Path) -> bool {
    use rotsv_obs::json::Json;
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    let Ok(doc) = rotsv_obs::json::parse(&text) else {
        return false;
    };
    let refill = doc.get("batched_refill");
    let mut installed = false;
    if let Some(n) = refill
        .and_then(|r| r.get("crossover_samples"))
        .and_then(Json::as_f64)
    {
        if n >= 1.0 && n.fract() == 0.0 {
            set_auto_crossover(n as usize);
            installed = true;
        }
    }
    if let Some(rows) = refill
        .and_then(|r| r.get("auto_lane_table"))
        .and_then(Json::as_arr)
    {
        let mut table = Vec::new();
        for row in rows {
            let Some(pair) = row.as_arr() else { continue };
            let floor = pair.first().and_then(Json::as_f64);
            let lanes = pair.get(1).and_then(Json::as_f64);
            if let (Some(f), Some(l)) = (floor, lanes) {
                if f >= 1.0 && f.fract() == 0.0 && l >= 1.0 && l.fract() == 0.0 {
                    table.push((f as usize, l as usize));
                }
            }
        }
        if !table.is_empty() {
            set_auto_lane_table(&table);
            installed = true;
        }
    }
    installed
}

/// Selects the engine [`delta_t_population`] uses process-wide.
///
/// Backs the experiments binary's `--engine` flag (mirroring
/// [`rotsv_num::parallel::set_thread_limit`] for `--threads`). Ledgered
/// campaigns and golden checks always measure per-sample on the scalar
/// engine and ignore this setting.
///
/// # Panics
///
/// Panics on a zero or flag-colliding lane count.
pub fn set_mc_engine(engine: McEngine) {
    let check = |lanes: usize| {
        assert!(lanes >= 1, "a batch needs at least one lane");
        assert!(lanes < CHUNKED_FLAG, "lane count out of range");
        lanes
    };
    let encoded = match engine {
        McEngine::Scalar => 0,
        McEngine::Auto => usize::MAX,
        McEngine::Batched { lanes } => check(lanes),
        McEngine::BatchedChunked { lanes } => check(lanes) | CHUNKED_FLAG,
    };
    ENGINE_LANES.store(encoded, Ordering::Relaxed);
}

/// The engine [`delta_t_population`] currently uses.
pub fn mc_engine() -> McEngine {
    match ENGINE_LANES.load(Ordering::Relaxed) {
        0 => McEngine::Scalar,
        usize::MAX => McEngine::Auto,
        v if v & CHUNKED_FLAG != 0 => McEngine::BatchedChunked {
            lanes: v & !CHUNKED_FLAG,
        },
        lanes => McEngine::Batched { lanes },
    }
}

/// Resolves [`McEngine::Auto`] for a population of `samples` dies:
/// scalar below the measured crossover, otherwise the refill queue at
/// the lane width the measured lane table ([`set_auto_lane_table`])
/// assigns to this population size, capped at the population itself.
/// Explicit engine choices pass through unchanged.
pub fn resolve_engine(engine: McEngine, samples: usize) -> McEngine {
    match engine {
        McEngine::Auto => {
            if samples < auto_crossover() {
                McEngine::Scalar
            } else {
                McEngine::Batched {
                    lanes: samples.min(auto_lanes_for(samples)),
                }
            }
        }
        other => other,
    }
}

/// A Monte-Carlo population of ΔT values.
#[derive(Debug, Clone)]
pub struct McDeltaT {
    /// ΔT of every die whose both runs oscillated, seconds.
    pub deltas: Vec<f64>,
    /// Dies whose run 1 was stuck (detected as strong leakage).
    pub stuck_count: usize,
    /// Dies whose reference run failed (should be zero; nonzero values
    /// flag a broken configuration).
    pub reference_failures: usize,
    /// Numerical-work counters summed over every die's two transient
    /// runs. `wall_seconds` is summed solver time, which under parallel
    /// sampling exceeds elapsed wall time.
    pub stats: SolverStats,
}

/// Equality compares the population itself; the work counters (which
/// include wall-clock time) are bookkeeping, not results.
impl PartialEq for McDeltaT {
    fn eq(&self, other: &Self) -> bool {
        self.deltas == other.deltas
            && self.stuck_count == other.stuck_count
            && self.reference_failures == other.reference_failures
    }
}

impl McDeltaT {
    /// Total number of dies simulated.
    pub fn total(&self) -> usize {
        self.deltas.len() + self.stuck_count + self.reference_failures
    }

    /// Fraction of dies that produced a usable ΔT.
    pub fn oscillating_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.deltas.len() as f64 / self.total() as f64
        }
    }
}

/// Runs `samples` Monte-Carlo dies of the given configuration and
/// collects the ΔT population.
///
/// Sample `i` is the die `Die::new(spread, derived_seed(seed, i))`, so
/// fault-free and faulty populations built from the same `seed` use the
/// *same dies* — matching the paper's methodology of comparing spreads
/// under identical variation.
///
/// # Errors
///
/// Propagates the first simulator error encountered.
///
/// # Panics
///
/// Panics if `samples` is zero or the bench/fault configuration is
/// inconsistent.
pub fn delta_t_population(
    bench: &TestBench,
    vdd: f64,
    faults: &[TsvFault],
    under_test: &[usize],
    spread: ProcessSpread,
    seed: u64,
    samples: usize,
) -> Result<McDeltaT, SpiceError> {
    delta_t_population_with_engine(
        bench,
        vdd,
        faults,
        under_test,
        spread,
        seed,
        samples,
        mc_engine(),
    )
}

/// [`delta_t_population`] on an explicitly chosen engine, ignoring the
/// process-wide [`set_mc_engine`] selection. Sample `i` is always the
/// die `Die::new(spread, die_seed(seed, i))`, on either engine.
///
/// # Errors
///
/// Propagates the first simulator error encountered.
///
/// # Panics
///
/// Panics if `samples` is zero or the bench/fault configuration is
/// inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn delta_t_population_with_engine(
    bench: &TestBench,
    vdd: f64,
    faults: &[TsvFault],
    under_test: &[usize],
    spread: ProcessSpread,
    seed: u64,
    samples: usize,
    engine: McEngine,
) -> Result<McDeltaT, SpiceError> {
    assert!(samples > 0, "need at least one sample");
    let span = rotsv_obs::span!("mc_population", "samples" = samples);
    span.field("vdd", vdd);
    let measurements = match resolve_engine(engine, samples) {
        McEngine::Scalar => {
            scalar_measurements(bench, vdd, faults, under_test, spread, seed, samples)?
        }
        McEngine::Auto => unreachable!("resolve_engine returns a concrete engine"),
        McEngine::Batched { lanes } => {
            queued_measurements(bench, vdd, faults, under_test, spread, seed, samples, lanes)?
        }
        McEngine::BatchedChunked { lanes } => {
            batched_measurements(bench, vdd, faults, under_test, spread, seed, samples, lanes)?
        }
    };
    Ok(collect_population(measurements))
}

/// Folds per-die measurements into an [`McDeltaT`] and feeds the
/// population metrics.
fn collect_population(measurements: Vec<DeltaTMeasurement>) -> McDeltaT {
    let mut out = McDeltaT {
        deltas: Vec::with_capacity(measurements.len()),
        stuck_count: 0,
        reference_failures: 0,
        stats: SolverStats::default(),
    };
    for m in measurements {
        out.stats.merge(&m.stats);
        if m.reference_failed() {
            out.reference_failures += 1;
        } else if m.is_stuck() {
            out.stuck_count += 1;
        } else {
            out.deltas
                .push(m.delta().expect("oscillating measurement has a delta"));
        }
    }
    if rotsv_obs::metrics_enabled() {
        let hist = rotsv_obs::histogram("mc.delta_t_seconds");
        for &d in &out.deltas {
            hist.observe(d);
        }
        rotsv_obs::counter("mc.samples").add(out.total() as u64);
        rotsv_obs::counter("mc.stuck").add(out.stuck_count as u64);
    }
    out
}

/// A heterogeneous fault-sweep population: die `i` is measured under its
/// *own* fault list `per_die_faults[i]` (all lists must share one matrix
/// topology, e.g. a [`TsvFault::Leakage`] resistance ladder from
/// hard-stuck to effectively fault-free). Sample `i` is still the die
/// `Die::new(spread, die_seed(seed, i))`, so the sweep reuses the same
/// dies as a homogeneous population with the same seed.
///
/// On the batched engines the whole sweep streams through one refill
/// queue (or fixed chunks) per run — stuck dies retire their lanes
/// early, which is exactly the workload where mid-transient refill and
/// cohort scheduling pay off over chunking.
///
/// # Errors
///
/// Propagates the first simulator error encountered.
///
/// # Panics
///
/// Panics if `per_die_faults` is empty, its lists disagree with the
/// bench segment count, or the fault lists mix matrix topologies.
pub fn delta_t_fault_sweep(
    bench: &TestBench,
    vdd: f64,
    per_die_faults: &[Vec<TsvFault>],
    under_test: &[usize],
    spread: ProcessSpread,
    seed: u64,
) -> Result<McDeltaT, SpiceError> {
    delta_t_fault_sweep_with_engine(
        bench,
        vdd,
        per_die_faults,
        under_test,
        spread,
        seed,
        mc_engine(),
    )
}

/// [`delta_t_fault_sweep`] on an explicitly chosen engine, ignoring the
/// process-wide [`set_mc_engine`] selection.
///
/// # Errors
///
/// Propagates the first simulator error encountered.
///
/// # Panics
///
/// Same conditions as [`delta_t_fault_sweep`].
pub fn delta_t_fault_sweep_with_engine(
    bench: &TestBench,
    vdd: f64,
    per_die_faults: &[Vec<TsvFault>],
    under_test: &[usize],
    spread: ProcessSpread,
    seed: u64,
    engine: McEngine,
) -> Result<McDeltaT, SpiceError> {
    let samples = per_die_faults.len();
    assert!(samples > 0, "need at least one sample");
    let span = rotsv_obs::span!("mc_fault_sweep", "samples" = samples);
    span.field("vdd", vdd);
    let measurements = match resolve_engine(engine, samples) {
        McEngine::Scalar => {
            let parent = rotsv_obs::current_path();
            let results = rotsv_num::parallel::try_parallel_map(samples, |i| {
                let sample_span = rotsv_obs::span::SpanGuard::enter_under(parent, "mc_sample");
                sample_span.field("i", i as f64);
                let die = Die::new(spread, die_seed(seed, i));
                bench.measure_delta_t(vdd, &per_die_faults[i], under_test, &die)
            });
            results
                .into_iter()
                .map(|r| {
                    r.map_err(|p| SpiceError::WorkerPanic {
                        index: p.index,
                        payload: p.payload,
                    })?
                })
                .collect::<Result<Vec<_>, _>>()?
        }
        McEngine::Auto => unreachable!("resolve_engine returns a concrete engine"),
        McEngine::Batched { lanes } => {
            let lanes = lanes.max(1);
            let cache = Arc::new(SymbolicCache::new());
            let opts = bench.opts_for(vdd);
            // Cohort order applies to the dies *and* their fault lists
            // together: the permutation is pure scheduling either way.
            let order = cohort_order(spread, seed, samples);
            let dies: Vec<Die> = order
                .iter()
                .map(|&i| Die::new(spread, die_seed(seed, i)))
                .collect();
            let die_refs: Vec<&Die> = dies.iter().collect();
            let fault_refs: Vec<&[TsvFault]> = order
                .iter()
                .map(|&i| per_die_faults[i].as_slice())
                .collect();
            let queued = bench.measure_delta_t_queue_hetero_with(
                vdd,
                &fault_refs,
                under_test,
                &die_refs,
                lanes,
                &opts,
                &cache,
            )?;
            let mut out: Vec<Option<DeltaTMeasurement>> = vec![None; samples];
            for (&i, m) in order.iter().zip(queued) {
                out[i] = Some(m);
            }
            out.into_iter()
                .map(|m| m.expect("every sample measured exactly once"))
                .collect()
        }
        McEngine::BatchedChunked { lanes } => {
            let lanes = lanes.max(1);
            let cache = Arc::new(SymbolicCache::new());
            let opts = bench.opts_for(vdd);
            let mut out = Vec::with_capacity(samples);
            let mut start = 0;
            while start < samples {
                let end = (start + lanes).min(samples);
                let dies: Vec<Die> = (start..end)
                    .map(|i| Die::new(spread, die_seed(seed, i)))
                    .collect();
                let die_refs: Vec<&Die> = dies.iter().collect();
                let fault_refs: Vec<&[TsvFault]> =
                    (start..end).map(|i| per_die_faults[i].as_slice()).collect();
                out.extend(bench.measure_delta_t_batch_hetero_with(
                    vdd,
                    &fault_refs,
                    under_test,
                    &die_refs,
                    &opts,
                    &cache,
                )?);
                start = end;
            }
            out
        }
    };
    Ok(collect_population(measurements))
}

/// One scalar two-run measurement per die, fanned out across threads.
fn scalar_measurements(
    bench: &TestBench,
    vdd: f64,
    faults: &[TsvFault],
    under_test: &[usize],
    spread: ProcessSpread,
    seed: u64,
    samples: usize,
) -> Result<Vec<DeltaTMeasurement>, SpiceError> {
    // Workers have no span stack of their own: capture this path so each
    // sample's spans attach under `mc_population` and survive the join
    // (per-thread collectors flush into the global registry when the
    // worker's stack empties and when its thread exits).
    let parent = rotsv_obs::current_path();
    // Panic-safe fan-out: a die whose worker panics is reported as
    // `SpiceError::WorkerPanic` with its sample index instead of tearing
    // down the other workers' scope with no context.
    let results = rotsv_num::parallel::try_parallel_map(samples, |i| {
        let sample_span = rotsv_obs::span::SpanGuard::enter_under(parent, "mc_sample");
        sample_span.field("i", i as f64);
        let die = Die::new(spread, die_seed(seed, i));
        bench.measure_delta_t(vdd, faults, under_test, &die)
    });
    results
        .into_iter()
        .map(|r| {
            r.map_err(|p| SpiceError::WorkerPanic {
                index: p.index,
                payload: p.payload,
            })?
        })
        .collect()
}

/// Orders the sample indices into variation cohorts: dies of similar
/// variation magnitude become lane neighbors in the refill queue, so
/// co-resident lanes propose similar step sizes and drain at similar
/// rates. The per-die trajectories are composition-independent (the
/// engine steps every lane by its own policies), so cohort order is
/// pure scheduling — results are un-permuted back to sample order.
///
/// The score is the magnitude of the die's first threshold-voltage
/// delta: the dominant variation axis, drawn from the same
/// index-deterministic stream the circuit build replays.
fn cohort_order(spread: ProcessSpread, seed: u64, samples: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..samples).collect();
    let score: Vec<f64> = (0..samples)
        .map(|i| Die::new(spread, die_seed(seed, i)).first_delta().dvth.abs())
        .collect();
    order.sort_by(|&a, &b| score[a].total_cmp(&score[b]).then(a.cmp(&b)));
    order
}

/// The refill queue: the whole population streams through `lanes` SIMD
/// lanes in one transient per run, re-seating a lane with the next
/// queued die the moment its current die's measurement completes. Dies
/// enter in cohort order ([`cohort_order`]); results return in sample
/// order. One symbolic cache spans both runs, so the population
/// performs O(topologies) symbolic analyses, not O(samples).
#[allow(clippy::too_many_arguments)]
fn queued_measurements(
    bench: &TestBench,
    vdd: f64,
    faults: &[TsvFault],
    under_test: &[usize],
    spread: ProcessSpread,
    seed: u64,
    samples: usize,
    lanes: usize,
) -> Result<Vec<DeltaTMeasurement>, SpiceError> {
    let lanes = lanes.max(1);
    let cache = Arc::new(SymbolicCache::new());
    let opts = bench.opts_for(vdd);
    let order = cohort_order(spread, seed, samples);
    let dies: Vec<Die> = order
        .iter()
        .map(|&i| Die::new(spread, die_seed(seed, i)))
        .collect();
    let die_refs: Vec<&Die> = dies.iter().collect();
    let queued = bench
        .measure_delta_t_queue_with(vdd, faults, under_test, &die_refs, lanes, &opts, &cache)?;
    let mut out: Vec<Option<DeltaTMeasurement>> = vec![None; samples];
    for (&i, m) in order.iter().zip(queued) {
        out[i] = Some(m);
    }
    Ok(out
        .into_iter()
        .map(|m| m.expect("every sample measured exactly once"))
        .collect())
}

/// Lockstep batches of up to `lanes` dies, grouped in sample-index
/// order so die derivation matches the scalar enumeration exactly. One
/// symbolic cache spans the whole population: every batch of both runs
/// shares the same matrix topology, so the population performs O(1)
/// symbolic analyses instead of one per transient.
#[allow(clippy::too_many_arguments)]
fn batched_measurements(
    bench: &TestBench,
    vdd: f64,
    faults: &[TsvFault],
    under_test: &[usize],
    spread: ProcessSpread,
    seed: u64,
    samples: usize,
    lanes: usize,
) -> Result<Vec<DeltaTMeasurement>, SpiceError> {
    let lanes = lanes.max(1);
    let cache = Arc::new(SymbolicCache::new());
    let opts = bench.opts_for(vdd);
    let mut out = Vec::with_capacity(samples);
    let mut start = 0;
    while start < samples {
        let end = (start + lanes).min(samples);
        let batch_span = rotsv_obs::span!("mc_batch", "start" = start);
        batch_span.field("lanes", (end - start) as f64);
        let dies: Vec<Die> = (start..end)
            .map(|i| Die::new(spread, die_seed(seed, i)))
            .collect();
        let die_refs: Vec<&Die> = dies.iter().collect();
        out.extend(
            bench.measure_delta_t_batch_with(vdd, faults, under_test, &die_refs, &opts, &cache)?,
        );
        start = end;
    }
    Ok(out)
}

/// Deterministic per-sample die seed.
pub fn die_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_num::units::Ohms;

    #[test]
    fn population_is_reproducible() {
        let bench = TestBench::fast(1);
        let faults = [TsvFault::None];
        let a =
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::paper(), 7, 4).unwrap();
        let b =
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::paper(), 7, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.reference_failures, 0);
    }

    #[test]
    fn variation_spreads_the_population() {
        let bench = TestBench::fast(1);
        let faults = [TsvFault::None];
        let pop =
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::paper(), 11, 4).unwrap();
        assert_eq!(pop.deltas.len(), 4);
        let s = rotsv_num::stats::Summary::of(&pop.deltas);
        assert!(s.std_dev > 0.0, "variation must spread the deltas");
    }

    #[test]
    fn stuck_dies_are_counted_not_lost() {
        let bench = TestBench::fast(1);
        let faults = [TsvFault::Leakage { r: Ohms(300.0) }];
        let pop =
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::none(), 3, 2).unwrap();
        assert_eq!(pop.stuck_count, 2);
        assert!(pop.deltas.is_empty());
        assert_eq!(pop.oscillating_fraction(), 0.0);
    }

    /// The solver work counters must not depend on how the population is
    /// scheduled across threads — every sample derives its die from its
    /// index, so the numerical work is identical whether the map runs on
    /// one thread or many. (`wall_seconds` is measured time and is
    /// deliberately excluded.)
    #[test]
    fn solver_counters_identical_across_thread_counts() {
        use rotsv_num::parallel::set_thread_limit;
        use std::num::NonZeroUsize;

        let bench = TestBench::fast(1);
        let faults = [TsvFault::None];
        let run = || {
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::paper(), 13, 6).unwrap()
        };
        set_thread_limit(NonZeroUsize::new(1));
        let serial = run();
        set_thread_limit(None);
        let parallel = run();

        assert_eq!(serial, parallel, "populations must match exactly");
        let (a, b) = (serial.stats, parallel.stats);
        assert_eq!(a.symbolic_analyses, b.symbolic_analyses);
        assert_eq!(a.factorizations, b.factorizations);
        assert_eq!(a.solves, b.solves);
        assert_eq!(a.newton_iterations, b.newton_iterations);
        assert_eq!(a.steps_accepted, b.steps_accepted);
        assert_eq!(a.steps_rejected, b.steps_rejected);
    }

    /// The batched engine must reproduce the scalar population die for
    /// die: same sample enumeration, ΔT within the 0.5 % agreement
    /// budget, same stuck classification.
    #[test]
    fn batched_population_matches_scalar() {
        let bench = TestBench::fast(1);
        let faults = [TsvFault::None];
        let run = |engine| {
            delta_t_population_with_engine(
                &bench,
                1.1,
                &faults,
                &[0],
                ProcessSpread::paper(),
                7,
                5,
                engine,
            )
            .unwrap()
        };
        let scalar = run(McEngine::Scalar);
        // K = 2 over 5 samples: two full batches plus a remainder lane.
        let batched = run(McEngine::Batched { lanes: 2 });
        assert_eq!(scalar.deltas.len(), batched.deltas.len());
        assert_eq!(scalar.stuck_count, batched.stuck_count);
        assert_eq!(scalar.reference_failures, batched.reference_failures);
        for (i, (s, b)) in scalar.deltas.iter().zip(&batched.deltas).enumerate() {
            let rel = (s - b).abs() / s.abs();
            assert!(rel < 5e-3, "sample {i}: scalar {s} vs batched {b} ({rel})");
        }
        // One topology per run pair for the whole population, shared
        // through the population-wide cache: O(topologies), not
        // O(samples) — against 2·samples analyses on the cache-less path.
        assert_eq!(batched.stats.symbolic_analyses, 1);
    }

    #[test]
    fn engine_selection_round_trips() {
        assert_eq!(mc_engine(), McEngine::Scalar);
        for engine in [
            McEngine::Batched { lanes: 4 },
            McEngine::BatchedChunked { lanes: 7 },
            McEngine::Auto,
            McEngine::Scalar,
        ] {
            set_mc_engine(engine);
            assert_eq!(mc_engine(), engine);
        }
    }

    #[test]
    fn auto_engine_resolves_by_population_size() {
        // Explicit engines pass through untouched.
        assert_eq!(resolve_engine(McEngine::Scalar, 100), McEngine::Scalar);
        assert_eq!(
            resolve_engine(McEngine::BatchedChunked { lanes: 4 }, 1),
            McEngine::BatchedChunked { lanes: 4 }
        );
        // Auto: scalar below the crossover, capped refill queue above.
        let saved = auto_crossover();
        set_auto_crossover(2);
        assert_eq!(resolve_engine(McEngine::Auto, 1), McEngine::Scalar);
        assert_eq!(
            resolve_engine(McEngine::Auto, 2),
            McEngine::Batched { lanes: 2 }
        );
        assert_eq!(
            resolve_engine(McEngine::Auto, 500),
            McEngine::Batched { lanes: 16 }
        );
        set_auto_crossover(8);
        assert_eq!(resolve_engine(McEngine::Auto, 7), McEngine::Scalar);
        assert_eq!(
            resolve_engine(McEngine::Auto, 8),
            McEngine::Batched { lanes: 8 }
        );

        // A measured lane table widens (or narrows) the pick per
        // population size; the population itself still caps the width.
        set_auto_crossover(2);
        set_auto_lane_table(&[(1, 8), (32, 32), (64, 64)]);
        assert_eq!(
            resolve_engine(McEngine::Auto, 16),
            McEngine::Batched { lanes: 8 }
        );
        assert_eq!(
            resolve_engine(McEngine::Auto, 32),
            McEngine::Batched { lanes: 32 }
        );
        assert_eq!(
            resolve_engine(McEngine::Auto, 48),
            McEngine::Batched { lanes: 32 }
        );
        assert_eq!(
            resolve_engine(McEngine::Auto, 500),
            McEngine::Batched { lanes: 64 }
        );
        assert_eq!(
            resolve_engine(McEngine::Auto, 3),
            McEngine::Batched { lanes: 3 }
        );
        // Empty table restores the built-in default.
        set_auto_lane_table(&[]);
        assert_eq!(auto_lane_table(), DEFAULT_AUTO_LANE_TABLE.to_vec());
        assert_eq!(
            resolve_engine(McEngine::Auto, 500),
            McEngine::Batched { lanes: 16 }
        );
        set_auto_crossover(saved);
    }

    /// The refill satellite contract: streaming the population through a
    /// refill queue must be per-die **bit-identical** to the chunked
    /// (no-refill) batches — cohort reordering and mid-transient
    /// re-seating are pure scheduling — and within the 0.5 % agreement
    /// budget of the scalar reference.
    #[test]
    fn refill_population_is_bit_identical_to_chunked() {
        let bench = TestBench::fast(1);
        let faults = [TsvFault::None];
        let run = |engine| {
            delta_t_population_with_engine(
                &bench,
                1.1,
                &faults,
                &[0],
                ProcessSpread::paper(),
                19,
                5,
                engine,
            )
            .unwrap()
        };
        // 5 samples through 2 lanes: three refills in the queue, a full
        // batch pair plus a remainder in the chunked run.
        let queued = run(McEngine::Batched { lanes: 2 });
        let chunked = run(McEngine::BatchedChunked { lanes: 2 });
        assert_eq!(
            queued, chunked,
            "refill must be bit-identical to chunked batching"
        );
        let scalar = run(McEngine::Scalar);
        assert_eq!(scalar.deltas.len(), queued.deltas.len());
        for (i, (s, q)) in scalar.deltas.iter().zip(&queued.deltas).enumerate() {
            let rel = (s - q).abs() / s.abs();
            assert!(rel < 5e-3, "sample {i}: scalar {s} vs queued {q} ({rel})");
        }
    }

    /// The heterogeneous fault-sweep contract: a mixed stuck/oscillating
    /// leakage ladder must classify every die exactly as the scalar
    /// engine does, and the refill queue must stay bit-identical to the
    /// chunked cross-check even as stuck dies retire lanes early.
    #[test]
    fn hetero_fault_sweep_matches_scalar_and_is_refill_invariant() {
        let bench = TestBench::fast(1);
        // Leakage ladder: hard-stuck (300 Ω), then progressively weaker
        // leaks up to effectively fault-free (1 GΩ) — one topology.
        let ladder = [300.0, 500.0, 1e5, 1e7, 1e8, 1e9];
        let per_die_faults: Vec<Vec<TsvFault>> = ladder
            .iter()
            .map(|&r| vec![TsvFault::Leakage { r: Ohms(r) }])
            .collect();
        let run = |engine| {
            delta_t_fault_sweep_with_engine(
                &bench,
                1.1,
                &per_die_faults,
                &[0],
                ProcessSpread::paper(),
                23,
                engine,
            )
            .unwrap()
        };
        let scalar = run(McEngine::Scalar);
        let queued = run(McEngine::Batched { lanes: 2 });
        let chunked = run(McEngine::BatchedChunked { lanes: 2 });
        assert_eq!(
            queued, chunked,
            "hetero refill must be bit-identical to chunked batching"
        );
        assert!(scalar.stuck_count >= 1, "the 300 Ω die must be stuck");
        assert_eq!(scalar.stuck_count, queued.stuck_count);
        assert_eq!(scalar.reference_failures, queued.reference_failures);
        assert_eq!(scalar.deltas.len(), queued.deltas.len());
        for (i, (s, q)) in scalar.deltas.iter().zip(&queued.deltas).enumerate() {
            let rel = (s - q).abs() / s.abs();
            assert!(rel < 5e-3, "sample {i}: scalar {s} vs queued {q} ({rel})");
        }
    }

    #[test]
    fn die_seed_is_injective_enough() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(die_seed(42, i)));
        }
    }
}
