//! Monte-Carlo populations of ΔT measurements.
//!
//! The paper's Figs. 7, 9 and 10 plot the *spread* of ΔT over random
//! process variation for fault-free and faulty dies. This module runs
//! those populations — in parallel, reproducibly.

use rotsv_spice::{SolverStats, SpiceError};
use rotsv_tsv::TsvFault;
use rotsv_variation::ProcessSpread;

use crate::die::Die;
use crate::measure::TestBench;

/// A Monte-Carlo population of ΔT values.
#[derive(Debug, Clone)]
pub struct McDeltaT {
    /// ΔT of every die whose both runs oscillated, seconds.
    pub deltas: Vec<f64>,
    /// Dies whose run 1 was stuck (detected as strong leakage).
    pub stuck_count: usize,
    /// Dies whose reference run failed (should be zero; nonzero values
    /// flag a broken configuration).
    pub reference_failures: usize,
    /// Numerical-work counters summed over every die's two transient
    /// runs. `wall_seconds` is summed solver time, which under parallel
    /// sampling exceeds elapsed wall time.
    pub stats: SolverStats,
}

/// Equality compares the population itself; the work counters (which
/// include wall-clock time) are bookkeeping, not results.
impl PartialEq for McDeltaT {
    fn eq(&self, other: &Self) -> bool {
        self.deltas == other.deltas
            && self.stuck_count == other.stuck_count
            && self.reference_failures == other.reference_failures
    }
}

impl McDeltaT {
    /// Total number of dies simulated.
    pub fn total(&self) -> usize {
        self.deltas.len() + self.stuck_count + self.reference_failures
    }

    /// Fraction of dies that produced a usable ΔT.
    pub fn oscillating_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.deltas.len() as f64 / self.total() as f64
        }
    }
}

/// Runs `samples` Monte-Carlo dies of the given configuration and
/// collects the ΔT population.
///
/// Sample `i` is the die `Die::new(spread, derived_seed(seed, i))`, so
/// fault-free and faulty populations built from the same `seed` use the
/// *same dies* — matching the paper's methodology of comparing spreads
/// under identical variation.
///
/// # Errors
///
/// Propagates the first simulator error encountered.
///
/// # Panics
///
/// Panics if `samples` is zero or the bench/fault configuration is
/// inconsistent.
pub fn delta_t_population(
    bench: &TestBench,
    vdd: f64,
    faults: &[TsvFault],
    under_test: &[usize],
    spread: ProcessSpread,
    seed: u64,
    samples: usize,
) -> Result<McDeltaT, SpiceError> {
    assert!(samples > 0, "need at least one sample");
    let span = rotsv_obs::span!("mc_population", "samples" = samples);
    span.field("vdd", vdd);
    // Workers have no span stack of their own: capture this path so each
    // sample's spans attach under `mc_population` and survive the join
    // (per-thread collectors flush into the global registry when the
    // worker's stack empties and when its thread exits).
    let parent = rotsv_obs::current_path();
    // Panic-safe fan-out: a die whose worker panics is reported as
    // `SpiceError::WorkerPanic` with its sample index instead of tearing
    // down the other workers' scope with no context.
    let results = rotsv_num::parallel::try_parallel_map(samples, |i| {
        let sample_span = rotsv_obs::span::SpanGuard::enter_under(parent, "mc_sample");
        sample_span.field("i", i as f64);
        let die = Die::new(spread, die_seed(seed, i));
        bench.measure_delta_t(vdd, faults, under_test, &die)
    });
    let mut out = McDeltaT {
        deltas: Vec::with_capacity(samples),
        stuck_count: 0,
        reference_failures: 0,
        stats: SolverStats::default(),
    };
    for r in results {
        let m = r.map_err(|p| SpiceError::WorkerPanic {
            index: p.index,
            payload: p.payload,
        })??;
        out.stats.merge(&m.stats);
        if m.reference_failed() {
            out.reference_failures += 1;
        } else if m.is_stuck() {
            out.stuck_count += 1;
        } else {
            out.deltas
                .push(m.delta().expect("oscillating measurement has a delta"));
        }
    }
    if rotsv_obs::metrics_enabled() {
        let hist = rotsv_obs::histogram("mc.delta_t_seconds");
        for &d in &out.deltas {
            hist.observe(d);
        }
        rotsv_obs::counter("mc.samples").add(out.total() as u64);
        rotsv_obs::counter("mc.stuck").add(out.stuck_count as u64);
    }
    Ok(out)
}

/// Deterministic per-sample die seed.
pub fn die_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_num::units::Ohms;

    #[test]
    fn population_is_reproducible() {
        let bench = TestBench::fast(1);
        let faults = [TsvFault::None];
        let a =
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::paper(), 7, 4).unwrap();
        let b =
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::paper(), 7, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.reference_failures, 0);
    }

    #[test]
    fn variation_spreads_the_population() {
        let bench = TestBench::fast(1);
        let faults = [TsvFault::None];
        let pop =
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::paper(), 11, 4).unwrap();
        assert_eq!(pop.deltas.len(), 4);
        let s = rotsv_num::stats::Summary::of(&pop.deltas);
        assert!(s.std_dev > 0.0, "variation must spread the deltas");
    }

    #[test]
    fn stuck_dies_are_counted_not_lost() {
        let bench = TestBench::fast(1);
        let faults = [TsvFault::Leakage { r: Ohms(300.0) }];
        let pop =
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::none(), 3, 2).unwrap();
        assert_eq!(pop.stuck_count, 2);
        assert!(pop.deltas.is_empty());
        assert_eq!(pop.oscillating_fraction(), 0.0);
    }

    /// The solver work counters must not depend on how the population is
    /// scheduled across threads — every sample derives its die from its
    /// index, so the numerical work is identical whether the map runs on
    /// one thread or many. (`wall_seconds` is measured time and is
    /// deliberately excluded.)
    #[test]
    fn solver_counters_identical_across_thread_counts() {
        use rotsv_num::parallel::set_thread_limit;
        use std::num::NonZeroUsize;

        let bench = TestBench::fast(1);
        let faults = [TsvFault::None];
        let run = || {
            delta_t_population(&bench, 1.1, &faults, &[0], ProcessSpread::paper(), 13, 6).unwrap()
        };
        set_thread_limit(NonZeroUsize::new(1));
        let serial = run();
        set_thread_limit(None);
        let parallel = run();

        assert_eq!(serial, parallel, "populations must match exactly");
        let (a, b) = (serial.stats, parallel.stats);
        assert_eq!(a.symbolic_analyses, b.symbolic_analyses);
        assert_eq!(a.factorizations, b.factorizations);
        assert_eq!(a.solves, b.solves);
        assert_eq!(a.newton_iterations, b.newton_iterations);
        assert_eq!(a.steps_accepted, b.steps_accepted);
        assert_eq!(a.steps_rejected, b.steps_rejected);
    }

    #[test]
    fn die_seed_is_injective_enough() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(die_seed(42, i)));
        }
    }
}
