//! A reproducible die: the process-variation identity of one chip.

use rotsv_mosfet::model::{MosDelta, VariationSource};
use rotsv_variation::{GaussianVariation, ProcessSpread};

/// The process-variation identity of one physical die.
///
/// The two-run ΔT procedure measures *the same die* twice (TSV enabled,
/// then bypassed). A `Die` captures that identity: every call to
/// [`Die::variation`] returns a variation stream that replays the same
/// per-transistor deltas, so two circuit builds of the same die are
/// electrically identical except for the control inputs.
///
/// # Examples
///
/// ```
/// use rotsv::Die;
/// use rotsv::variation::ProcessSpread;
/// use rotsv::mosfet::model::VariationSource;
///
/// let die = Die::new(ProcessSpread::paper(), 7);
/// let mut a = die.variation();
/// let mut b = die.variation();
/// assert_eq!(a.next_delta(), b.next_delta());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Die {
    spread: ProcessSpread,
    seed: u64,
}

impl Die {
    /// A die with the given variation spread and identity seed.
    pub fn new(spread: ProcessSpread, seed: u64) -> Self {
        Self { spread, seed }
    }

    /// The nominal die: no process variation at all.
    pub fn nominal() -> Self {
        Self::new(ProcessSpread::none(), 0)
    }

    /// A fresh variation stream replaying this die's deltas.
    pub fn variation(&self) -> GaussianVariation {
        GaussianVariation::new(self.spread, self.seed)
    }

    /// The variation spread of this die's process.
    pub fn spread(&self) -> ProcessSpread {
        self.spread
    }

    /// The first variation delta (handy for diagnostics).
    pub fn first_delta(&self) -> MosDelta {
        self.variation().next_delta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_die_has_zero_deltas() {
        let die = Die::nominal();
        let mut v = die.variation();
        for _ in 0..5 {
            assert_eq!(v.next_delta(), MosDelta::NOMINAL);
        }
    }

    #[test]
    fn same_die_replays_identical_streams() {
        let die = Die::new(ProcessSpread::paper(), 42);
        let a: Vec<MosDelta> = {
            let mut v = die.variation();
            (0..50).map(|_| v.next_delta()).collect()
        };
        let b: Vec<MosDelta> = {
            let mut v = die.variation();
            (0..50).map(|_| v.next_delta()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_dies_differ() {
        let a = Die::new(ProcessSpread::paper(), 1).first_delta();
        let b = Die::new(ProcessSpread::paper(), 2).first_delta();
        assert_ne!(a, b);
    }
}
