#![warn(missing_docs)]

//! # rotsv — non-invasive pre-bond TSV test
//!
//! A full reproduction of S. Deutsch and K. Chakrabarty, *"Non-Invasive
//! Pre-Bond TSV Test Using Ring Oscillators and Multiple Voltage
//! Levels"*, DATE 2013 — implemented from the transistor level up, with
//! no external circuit-simulation dependencies.
//!
//! ## The method
//!
//! Before bonding, TSVs are buried in silicon and cannot be probed. The
//! paper turns each group of N TSVs plus one inverter into a **ring
//! oscillator** built only from standard cells. The oscillation period is
//! measured twice — once with the TSV under test in the loop (T₁), once
//! with all TSVs bypassed (T₂). The difference **ΔT = T₁ − T₂** isolates
//! the TSV segment's delay and cancels process variation everywhere else:
//!
//! * a **resistive open** (micro-void) detaches part of the TSV
//!   capacitance ⇒ ΔT *decreases*,
//! * a **leakage fault** (pinhole to substrate) slows the charging edge
//!   more than it speeds the discharge ⇒ ΔT *increases*; strong leakage
//!   stops oscillation entirely (stuck-at-0),
//! * testing at **multiple supply voltages** raises sensitivity: opens
//!   separate best at high V_DD, weak leakage at low V_DD.
//!
//! ## Crate map
//!
//! This crate is the façade over the full stack and adds the test-method
//! layer itself:
//!
//! | layer | crate |
//! |---|---|
//! | numerics (LU, stats, RNG) | [`rotsv_num`] |
//! | MNA circuit simulator | [`rotsv_spice`] |
//! | compact MOSFET model, 45 nm cards | [`rotsv_mosfet`] |
//! | transistor-level standard cells | [`rotsv_stdcell`] |
//! | TSV electrical/fault models | [`rotsv_tsv`] |
//! | Monte-Carlo process variation | [`rotsv_variation`] |
//! | counter/LFSR measurement DfT, area model | [`rotsv_dft`] |
//! | ring-oscillator construction | [`rotsv_ro`] |
//! | ΔT procedure, classification, multi-voltage plans | this crate |
//!
//! ## Quickstart
//!
//! Measure ΔT of a fault-free and a leaky TSV on nominal dies:
//!
//! ```
//! use rotsv::{Die, TestBench};
//! use rotsv::tsv::TsvFault;
//! use rotsv::num::units::Ohms;
//!
//! # fn main() -> Result<(), rotsv::spice::SpiceError> {
//! let bench = TestBench::fast(2); // 2 TSVs per ring, coarse sim settings
//! let die = Die::nominal();
//!
//! let clean = bench.measure_delta_t(1.1, &[TsvFault::None; 2], &[0], &die)?;
//! let leaky_faults = [TsvFault::Leakage { r: Ohms(2.5e3) }, TsvFault::None];
//! let leaky = bench.measure_delta_t(1.1, &leaky_faults, &[0], &die)?;
//!
//! let dt_clean = clean.delta().expect("oscillates");
//! let dt_leaky = leaky.delta().expect("oscillates");
//! assert!(dt_leaky > dt_clean, "leakage increases \u{0394}T");
//! # Ok(())
//! # }
//! ```

pub mod aliasing;
pub mod classify;
pub mod diagnose;
pub mod die;
pub mod mc;
pub mod measure;
pub mod plan;

pub use aliasing::{analyze_aliasing, AliasingAnalysis, FaultFamily};
pub use classify::{DetectionThresholds, Verdict};
pub use diagnose::DiagnosisCurve;
pub use die::Die;
pub use mc::{
    delta_t_population, delta_t_population_with_engine, die_seed, mc_engine, set_mc_engine,
    McDeltaT, McEngine,
};
pub use measure::{DeltaTMeasurement, TestBench};
pub use plan::{MultiVoltagePlan, ScreenResult, VoltagePoint};

// Re-export the full stack under stable names.
pub use rotsv_dft as dft;
pub use rotsv_mosfet as mosfet;
pub use rotsv_num as num;
pub use rotsv_ro as ro;
pub use rotsv_spice as spice;
pub use rotsv_stdcell as stdcell;
pub use rotsv_tsv as tsv;
pub use rotsv_variation as variation;
