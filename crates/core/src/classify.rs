//! Fault detection and classification from ΔT.
//!
//! Because resistive opens *reduce* ΔT and leakage faults *increase* it
//! (and strong leakage kills the oscillation), a two-sided threshold on
//! ΔT not only detects but also *classifies* the fault — the paper's
//! observation that "these fault types are distinguishable from each
//! other".

use rotsv_num::stats::Summary;

use crate::measure::DeltaTMeasurement;

/// Screening verdict for one TSV at one voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// ΔT within the fault-free band.
    Pass,
    /// ΔT below the band: micro-void / resistive open.
    ResistiveOpen,
    /// ΔT above the band: pinhole / leakage.
    Leakage,
    /// Run 1 did not oscillate: strong leakage (stuck-at-0 TSV).
    StuckAt0,
    /// The all-bypassed reference did not oscillate: the DfT ring itself
    /// is defective and the TSV cannot be judged.
    ReferenceFailure,
}

impl Verdict {
    /// `true` for any verdict that fails the die.
    pub fn is_fault(self) -> bool {
        !matches!(self, Verdict::Pass)
    }
}

/// Acceptance band on ΔT, calibrated from the fault-free population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionThresholds {
    /// ΔT below this is flagged as a resistive open, seconds.
    pub lower: f64,
    /// ΔT above this is flagged as leakage, seconds.
    pub upper: f64,
}

impl DetectionThresholds {
    /// Builds thresholds as `mean ± k·σ` of a fault-free ΔT population.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty or `k_sigma` is not positive.
    pub fn from_population(fault_free: &[f64], k_sigma: f64) -> Self {
        assert!(k_sigma > 0.0, "k_sigma must be positive");
        let s = Summary::of(fault_free);
        Self {
            lower: s.mean - k_sigma * s.std_dev,
            upper: s.mean + k_sigma * s.std_dev,
        }
    }

    /// Builds thresholds from the observed fault-free range extended by a
    /// guard band (`guard` seconds on each side).
    ///
    /// # Panics
    ///
    /// Panics if the population is empty or `guard` is negative.
    pub fn from_range(fault_free: &[f64], guard: f64) -> Self {
        assert!(guard >= 0.0, "guard must be non-negative");
        let s = Summary::of(fault_free);
        Self {
            lower: s.min - guard,
            upper: s.max + guard,
        }
    }

    /// Classifies a two-run measurement against this band.
    pub fn classify(&self, m: &DeltaTMeasurement) -> Verdict {
        if m.reference_failed() {
            return Verdict::ReferenceFailure;
        }
        if m.is_stuck() {
            return Verdict::StuckAt0;
        }
        let dt = m
            .delta()
            .expect("both runs oscillate when neither failure flag is set");
        if dt < self.lower {
            Verdict::ResistiveOpen
        } else if dt > self.upper {
            Verdict::Leakage
        } else {
            Verdict::Pass
        }
    }

    /// Classifies a raw ΔT value (no stuck information).
    pub fn classify_delta(&self, dt: f64) -> Verdict {
        if dt < self.lower {
            Verdict::ResistiveOpen
        } else if dt > self.upper {
            Verdict::Leakage
        } else {
            Verdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_ro::OscillationOutcome;
    use rotsv_spice::PeriodMeasurement;

    fn oscillating(period: f64) -> OscillationOutcome {
        OscillationOutcome::Oscillating(PeriodMeasurement {
            mean: period,
            jitter: 0.0,
            cycles: 8,
        })
    }

    fn stuck() -> OscillationOutcome {
        OscillationOutcome::Stuck {
            final_voltage: 0.0,
            swing: 0.1,
        }
    }

    fn measurement(t1: OscillationOutcome, t2: OscillationOutcome) -> DeltaTMeasurement {
        DeltaTMeasurement {
            t1,
            t2,
            stats: rotsv_spice::SolverStats::default(),
        }
    }

    const BAND: DetectionThresholds = DetectionThresholds {
        lower: 400e-12,
        upper: 500e-12,
    };

    #[test]
    fn classification_covers_all_regions() {
        let t2 = oscillating(1.0e-9);
        let pass = measurement(oscillating(1.45e-9), t2.clone());
        let open = measurement(oscillating(1.35e-9), t2.clone());
        let leak = measurement(oscillating(1.60e-9), t2.clone());
        let stuck_m = measurement(stuck(), t2.clone());
        assert_eq!(BAND.classify(&pass), Verdict::Pass);
        assert_eq!(BAND.classify(&open), Verdict::ResistiveOpen);
        assert_eq!(BAND.classify(&leak), Verdict::Leakage);
        assert_eq!(BAND.classify(&stuck_m), Verdict::StuckAt0);
    }

    #[test]
    fn reference_failure_dominates() {
        let m = measurement(stuck(), stuck());
        assert_eq!(BAND.classify(&m), Verdict::ReferenceFailure);
        assert!(Verdict::ReferenceFailure.is_fault());
    }

    #[test]
    fn from_population_is_symmetric_about_mean() {
        let pop = [1.0, 2.0, 3.0];
        let t = DetectionThresholds::from_population(&pop, 3.0);
        assert!((t.lower - (2.0 - 3.0)).abs() < 1e-12);
        assert!((t.upper - (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn from_range_adds_guard() {
        let pop = [1.0, 2.0];
        let t = DetectionThresholds::from_range(&pop, 0.5);
        assert_eq!(t.lower, 0.5);
        assert_eq!(t.upper, 2.5);
    }

    #[test]
    fn verdict_fault_flags() {
        assert!(!Verdict::Pass.is_fault());
        for v in [Verdict::ResistiveOpen, Verdict::Leakage, Verdict::StuckAt0] {
            assert!(v.is_fault());
        }
    }

    #[test]
    fn classify_delta_matches_band_edges() {
        assert_eq!(BAND.classify_delta(450e-12), Verdict::Pass);
        assert_eq!(
            BAND.classify_delta(400e-12),
            Verdict::Pass,
            "edge inclusive"
        );
        assert_eq!(BAND.classify_delta(399e-12), Verdict::ResistiveOpen);
        assert_eq!(BAND.classify_delta(501e-12), Verdict::Leakage);
    }
}
