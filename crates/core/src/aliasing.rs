//! Quantitative aliasing analysis: minimum detectable fault size.
//!
//! The paper observes that process variation limits detection resolution
//! and leaves "a quantitative analysis of aliasing due to process
//! variations" as future work. This module carries out that analysis:
//! for a given voltage, it sweeps the fault size, builds Monte-Carlo ΔT
//! populations, and reports the smallest fault whose population clears
//! the fault-free acceptance band — the **minimum detectable fault**.

use rotsv_num::stats::{point_overlap, Summary};
use rotsv_num::units::Ohms;
use rotsv_spice::SpiceError;
use rotsv_tsv::TsvFault;
use rotsv_variation::ProcessSpread;

use crate::classify::DetectionThresholds;
use crate::mc::delta_t_population;
use crate::measure::TestBench;

/// Which fault family is being sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFamily {
    /// Resistive opens at a fixed location `x`; size = R_O in ohms
    /// (larger = worse).
    ResistiveOpen,
    /// Leakage to substrate; size = R_L in ohms (smaller = worse).
    Leakage,
}

impl FaultFamily {
    fn fault(self, size: f64) -> TsvFault {
        match self {
            FaultFamily::ResistiveOpen => TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(size),
            },
            FaultFamily::Leakage => TsvFault::Leakage { r: Ohms(size) },
        }
    }
}

/// Detection statistics for one fault size.
#[derive(Debug, Clone)]
pub struct SizePoint {
    /// Fault size, ohms.
    pub size: f64,
    /// ΔT population of the faulty dies (oscillating only).
    pub faulty: Option<Summary>,
    /// Dies detected (outside the band or stuck) over total dies.
    pub detected: usize,
    /// Total dies simulated.
    pub total: usize,
    /// Overlap of faulty points with the fault-free band region.
    pub alias_fraction: f64,
}

impl SizePoint {
    /// Fraction of faulty dies correctly flagged.
    pub fn detection_rate(&self) -> f64 {
        self.detected as f64 / self.total as f64
    }
}

/// Result of an aliasing sweep at one voltage.
#[derive(Debug, Clone)]
pub struct AliasingAnalysis {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Fault family analyzed.
    pub family: FaultFamily,
    /// The fault-free acceptance band used.
    pub thresholds: DetectionThresholds,
    /// Per-size detection statistics, in sweep order.
    pub points: Vec<SizePoint>,
}

impl AliasingAnalysis {
    /// The smallest (mildest) fault size whose detection rate reaches
    /// `target` (e.g. 1.0 for guaranteed detection within the MC sample).
    ///
    /// "Mildest" respects the family's direction: the largest R_L for
    /// leakage, the smallest R_O for opens. Returns `None` when no swept
    /// size reaches the target.
    pub fn minimum_detectable(&self, target: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for p in &self.points {
            if p.detection_rate() >= target {
                best = Some(match (self.family, best) {
                    (FaultFamily::ResistiveOpen, Some(b)) => b.min(p.size),
                    (FaultFamily::Leakage, Some(b)) => b.max(p.size),
                    (_, None) => p.size,
                });
            }
        }
        best
    }
}

/// Runs the aliasing analysis for one fault family at one voltage.
///
/// The fault-free band is calibrated from its own Monte-Carlo population
/// (range + `guard` seconds); each swept fault size gets an independent
/// faulty population over the *same dies*.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `sizes` is empty, `samples` is zero, or a fault-free die
/// fails to oscillate.
#[allow(clippy::too_many_arguments)]
pub fn analyze_aliasing(
    bench: &TestBench,
    vdd: f64,
    family: FaultFamily,
    sizes: &[f64],
    spread: ProcessSpread,
    seed: u64,
    samples: usize,
    guard: f64,
) -> Result<AliasingAnalysis, SpiceError> {
    assert!(!sizes.is_empty(), "need at least one fault size");
    let ff_faults = vec![TsvFault::None; bench.n_segments];
    let ff = delta_t_population(bench, vdd, &ff_faults, &[0], spread, seed, samples)?;
    assert_eq!(
        ff.stuck_count + ff.reference_failures,
        0,
        "fault-free calibration failed at {vdd} V"
    );
    let thresholds = DetectionThresholds::from_range(&ff.deltas, guard);

    let mut points = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut faults = ff_faults.clone();
        faults[0] = family.fault(size);
        let pop = delta_t_population(bench, vdd, &faults, &[0], spread, seed, samples)?;
        let outside = pop
            .deltas
            .iter()
            .filter(|&&dt| thresholds.classify_delta(dt).is_fault())
            .count();
        let detected = outside + pop.stuck_count;
        let alias_fraction = if pop.deltas.is_empty() {
            0.0
        } else {
            point_overlap(&ff.deltas, &pop.deltas)
        };
        points.push(SizePoint {
            size,
            faulty: (!pop.deltas.is_empty()).then(|| Summary::of(&pop.deltas)),
            detected,
            total: pop.total(),
            alias_fraction,
        });
    }
    Ok(AliasingAnalysis {
        vdd,
        family,
        thresholds,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_builds_expected_faults() {
        assert!(matches!(
            FaultFamily::ResistiveOpen.fault(2e3),
            TsvFault::ResistiveOpen { .. }
        ));
        assert!(matches!(
            FaultFamily::Leakage.fault(2e3),
            TsvFault::Leakage { .. }
        ));
    }

    #[test]
    fn minimum_detectable_respects_direction() {
        let mk = |family, sizes_rates: &[(f64, usize)]| AliasingAnalysis {
            vdd: 1.1,
            family,
            thresholds: DetectionThresholds {
                lower: 0.0,
                upper: 1.0,
            },
            points: sizes_rates
                .iter()
                .map(|&(size, detected)| SizePoint {
                    size,
                    faulty: None,
                    detected,
                    total: 10,
                    alias_fraction: 0.0,
                })
                .collect(),
        };
        // Opens: 5k and 10k fully detected, 1k not -> minimum is 5k.
        let opens = mk(
            FaultFamily::ResistiveOpen,
            &[(1e3, 4), (5e3, 10), (10e3, 10)],
        );
        assert_eq!(opens.minimum_detectable(1.0), Some(5e3));
        // Leakage: 1k and 2k fully detected, 5k not -> minimum severity is
        // the *largest* detected R_L = 2k.
        let leaks = mk(FaultFamily::Leakage, &[(5e3, 3), (2e3, 10), (1e3, 10)]);
        assert_eq!(leaks.minimum_detectable(1.0), Some(2e3));
        // Nothing reaches the target.
        assert_eq!(opens.minimum_detectable(1.1), None);
    }

    /// End-to-end on a tiny configuration: a huge open is always detected,
    /// a negligible one never is.
    #[test]
    fn extreme_sizes_behave() {
        let bench = TestBench::fast(1);
        let analysis = analyze_aliasing(
            &bench,
            1.1,
            FaultFamily::ResistiveOpen,
            &[10.0, 100e3],
            ProcessSpread::paper().scaled(0.5),
            3,
            4,
            5e-12,
        )
        .unwrap();
        let tiny = &analysis.points[0];
        let huge = &analysis.points[1];
        assert_eq!(tiny.detected, 0, "10 Ω open is invisible: {tiny:?}");
        assert_eq!(huge.detected, huge.total, "full open always caught");
        assert_eq!(analysis.minimum_detectable(1.0), Some(100e3));
    }
}
