//! Multi-voltage test planning (the paper's headline idea).
//!
//! Each supply voltage gets its own fault-free acceptance band,
//! calibrated by Monte-Carlo simulation of fault-free dies. A TSV is
//! screened at every voltage; verdicts are fused with the priority
//! stuck > leakage > open > pass. Opens surface at high V_DD, weak
//! leakage at low V_DD — testing at multiple levels widens the range of
//! detectable defects.

use rotsv_spice::SpiceError;
use rotsv_tsv::TsvFault;
use rotsv_variation::ProcessSpread;

use crate::classify::{DetectionThresholds, Verdict};
use crate::die::Die;
use crate::mc::delta_t_population;
use crate::measure::TestBench;

/// One calibrated voltage level of a test plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltagePoint {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Acceptance band on ΔT at this voltage.
    pub thresholds: DetectionThresholds,
}

/// A calibrated multi-voltage screening plan.
#[derive(Debug, Clone)]
pub struct MultiVoltagePlan {
    bench: TestBench,
    points: Vec<VoltagePoint>,
}

/// Result of screening one TSV across all plan voltages.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenResult {
    /// Per-voltage verdicts in plan order.
    pub per_voltage: Vec<(f64, Verdict)>,
    /// Fused verdict.
    pub verdict: Verdict,
}

impl MultiVoltagePlan {
    /// Calibrates a plan: simulates `samples` fault-free Monte-Carlo dies
    /// at each voltage and sets the acceptance band to the observed
    /// fault-free range extended by `guard_band` seconds.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `voltages` is empty, `samples` is zero, or a fault-free
    /// calibration die fails to oscillate (the band would be meaningless).
    pub fn calibrate(
        bench: TestBench,
        voltages: &[f64],
        spread: ProcessSpread,
        seed: u64,
        samples: usize,
        guard_band: f64,
    ) -> Result<Self, SpiceError> {
        assert!(!voltages.is_empty(), "plan needs at least one voltage");
        let faults = vec![TsvFault::None; bench.n_segments];
        let mut points = Vec::with_capacity(voltages.len());
        for &vdd in voltages {
            let pop = delta_t_population(&bench, vdd, &faults, &[0], spread, seed, samples)?;
            assert_eq!(
                pop.stuck_count + pop.reference_failures,
                0,
                "fault-free calibration die failed at {vdd} V"
            );
            points.push(VoltagePoint {
                vdd,
                thresholds: DetectionThresholds::from_range(&pop.deltas, guard_band),
            });
        }
        Ok(Self { bench, points })
    }

    /// The calibrated voltage points.
    pub fn points(&self) -> &[VoltagePoint] {
        &self.points
    }

    /// The bench this plan was calibrated for.
    pub fn bench(&self) -> &TestBench {
        &self.bench
    }

    /// Screens segment `segment` of a die with the given per-segment
    /// faults at every plan voltage and fuses the verdicts.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn screen(
        &self,
        faults: &[TsvFault],
        segment: usize,
        die: &Die,
    ) -> Result<ScreenResult, SpiceError> {
        let mut per_voltage = Vec::with_capacity(self.points.len());
        for p in &self.points {
            let m = self.bench.measure_delta_t(p.vdd, faults, &[segment], die)?;
            per_voltage.push((p.vdd, p.thresholds.classify(&m)));
        }
        Ok(ScreenResult {
            verdict: fuse(per_voltage.iter().map(|&(_, v)| v)),
            per_voltage,
        })
    }
}

/// Fuses per-voltage verdicts: any failure wins over pass; among
/// failures, stuck > reference failure > leakage > open.
pub fn fuse(verdicts: impl IntoIterator<Item = Verdict>) -> Verdict {
    let mut fused = Verdict::Pass;
    for v in verdicts {
        fused = match (fused, v) {
            (Verdict::StuckAt0, _) | (_, Verdict::StuckAt0) => Verdict::StuckAt0,
            (Verdict::ReferenceFailure, _) | (_, Verdict::ReferenceFailure) => {
                Verdict::ReferenceFailure
            }
            (Verdict::Leakage, _) | (_, Verdict::Leakage) => Verdict::Leakage,
            (Verdict::ResistiveOpen, _) | (_, Verdict::ResistiveOpen) => Verdict::ResistiveOpen,
            (Verdict::Pass, Verdict::Pass) => Verdict::Pass,
        };
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_num::units::Ohms;

    #[test]
    fn fuse_priorities() {
        use Verdict::*;
        assert_eq!(fuse([Pass, Pass]), Pass);
        assert_eq!(fuse([Pass, ResistiveOpen]), ResistiveOpen);
        assert_eq!(fuse([Leakage, ResistiveOpen]), Leakage);
        assert_eq!(fuse([Leakage, StuckAt0, Pass]), StuckAt0);
        assert_eq!(fuse([ReferenceFailure, Leakage]), ReferenceFailure);
        assert_eq!(fuse(std::iter::empty()), Pass);
    }

    /// End-to-end: calibrate a tiny single-voltage plan and screen a
    /// clean die, a leaky die and an open die.
    #[test]
    fn single_voltage_plan_screens_faults() {
        let bench = TestBench::fast(1);
        let plan = MultiVoltagePlan::calibrate(bench, &[1.1], ProcessSpread::paper(), 21, 6, 5e-12)
            .unwrap();
        assert_eq!(plan.points().len(), 1);

        let die = Die::new(ProcessSpread::paper(), 999);
        let clean = plan.screen(&[TsvFault::None], 0, &die).unwrap();
        assert_eq!(clean.verdict, Verdict::Pass, "{clean:?}");

        let leaky = plan
            .screen(&[TsvFault::Leakage { r: Ohms(2e3) }], 0, &die)
            .unwrap();
        assert!(
            matches!(leaky.verdict, Verdict::Leakage | Verdict::StuckAt0),
            "{leaky:?}"
        );

        let open = plan
            .screen(
                &[TsvFault::ResistiveOpen {
                    x: 0.2,
                    r: Ohms(50e3),
                }],
                0,
                &die,
            )
            .unwrap();
        assert_eq!(open.verdict, Verdict::ResistiveOpen, "{open:?}");
    }
}
