//! The two-run ΔT measurement procedure (Section IV-A of the paper).

use std::sync::Arc;

use rotsv_num::SymbolicCache;
use rotsv_ro::{MeasureOpts, OscillationOutcome, RingOscillator, RoConfig};
use rotsv_spice::{SolverStats, SpiceError};
use rotsv_tsv::{TsvFault, TsvModel, TsvTech};

use crate::die::Die;

/// The simulation setup shared by all measurements of one experiment.
#[derive(Debug, Clone)]
pub struct TestBench {
    /// Segments per ring-oscillator group (the paper's N; it uses 5).
    pub n_segments: usize,
    /// TSV technology parameters.
    pub tech: TsvTech,
    /// TSV discretization.
    pub tsv_model: TsvModel,
    /// Base measurement options at nominal voltage; scaled per voltage by
    /// [`TestBench::opts_for`].
    pub base_opts: MeasureOpts,
}

impl TestBench {
    /// The paper's configuration: N = 5 segments, lumped TSV model,
    /// default measurement accuracy.
    pub fn paper() -> Self {
        Self::new(5)
    }

    /// A bench with `n_segments` segments and default accuracy.
    pub fn new(n_segments: usize) -> Self {
        Self {
            n_segments,
            tech: TsvTech::default(),
            tsv_model: TsvModel::Lumped,
            base_opts: MeasureOpts::default(),
        }
    }

    /// A coarse, fast bench for tests and smoke runs.
    pub fn fast(n_segments: usize) -> Self {
        Self {
            base_opts: MeasureOpts::fast(),
            ..Self::new(n_segments)
        }
    }

    /// Measurement options scaled for supply voltage `vdd`: near-threshold
    /// operation slows the ring several-fold, so the step and the time
    /// budget stretch accordingly.
    pub fn opts_for(&self, vdd: f64) -> MeasureOpts {
        let nominal = rotsv_mosfet::tech45::VDD_NOMINAL;
        let stretch = (nominal / vdd).powi(3).clamp(1.0, 30.0);
        MeasureOpts {
            dt: self.base_opts.dt * stretch.sqrt(),
            max_time: self.base_opts.max_time * stretch,
            ..self.base_opts
        }
    }

    /// The `(enabled, bypassed)` ring configurations of the two-run
    /// procedure at `vdd`: run 1 with the TSVs in `under_test` enabled,
    /// run 2 with every TSV bypassed. This is the single source of the
    /// configuration construction — every measurement path (scalar,
    /// batched, queued, and a screening server's streamed units) builds
    /// from it, which is what makes their per-die results comparable
    /// bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `faults.len() != self.n_segments`, `under_test` is
    /// empty or out of range, or `vdd` is not positive.
    pub fn ro_configs(
        &self,
        vdd: f64,
        faults: &[TsvFault],
        under_test: &[usize],
    ) -> (RoConfig, RoConfig) {
        assert_eq!(
            faults.len(),
            self.n_segments,
            "fault list must cover every segment"
        );
        assert!(
            !under_test.is_empty(),
            "at least one TSV must be under test"
        );
        let bypassed = RoConfig {
            n_segments: self.n_segments,
            vdd,
            tech: self.tech,
            tsv_model: self.tsv_model,
            faults: faults.to_vec(),
            enabled: vec![false; self.n_segments],
        };
        let enabled = bypassed.clone().enable_only(under_test);
        (enabled, bypassed)
    }

    /// Runs the full two-run procedure on one die at one voltage:
    /// run 1 with the TSVs listed in `under_test` enabled, run 2 with all
    /// TSVs bypassed.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `faults.len() != self.n_segments`, `under_test` is empty
    /// or out of range, or `vdd` is not positive.
    pub fn measure_delta_t(
        &self,
        vdd: f64,
        faults: &[TsvFault],
        under_test: &[usize],
        die: &Die,
    ) -> Result<DeltaTMeasurement, SpiceError> {
        self.measure_delta_t_with(vdd, faults, under_test, die, &self.opts_for(vdd))
    }

    /// Like [`TestBench::measure_delta_t`] but with explicit measurement
    /// options (no voltage scaling applied).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TestBench::measure_delta_t`].
    pub fn measure_delta_t_with(
        &self,
        vdd: f64,
        faults: &[TsvFault],
        under_test: &[usize],
        die: &Die,
        opts: &MeasureOpts,
    ) -> Result<DeltaTMeasurement, SpiceError> {
        let _span = rotsv_obs::span!("measure_delta_t", "vdd" = vdd);
        let opts = *opts;
        let (enabled_config, config) = self.ro_configs(vdd, faults, under_test);

        // Both runs share one symbolic-analysis cache. They have the same
        // topology (only the BY source *values* differ) and the first
        // factorization of each run happens at the x = 0 first Newton
        // iterate, where the matrix values depend only on device
        // parameters — identical for the same die. Run 2 therefore reuses
        // exactly the pivot order it would have derived itself: the
        // analysis counter halves, the waveform bits do not change.
        let cache = Arc::new(SymbolicCache::new());
        // Run 1: TSVs under test enabled.
        let mut ro1 = RingOscillator::build(&enabled_config, &mut die.variation());
        ro1.set_symbolic_cache(Arc::clone(&cache));
        let (t1, stats1) = ro1.measure_with_stats(&opts)?;
        // Run 2: all bypassed. Same die — identical variation stream.
        let mut ro2 = RingOscillator::build(&config, &mut die.variation());
        ro2.set_symbolic_cache(cache);
        let (t2, stats2) = ro2.measure_with_stats(&opts)?;
        let mut stats = stats1;
        stats.merge(&stats2);
        Ok(DeltaTMeasurement { t1, t2, stats })
    }

    /// The two-run procedure on `dies.len()` dies at once, using the
    /// batched transient engine: each run simulates all dies as lanes
    /// of one structure-of-arrays transient, each lane on its own clock
    /// ([`RingOscillator::measure_batch_with_stats`]).
    ///
    /// Returns one measurement per die, in input order. Empty input
    /// returns an empty vector.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TestBench::measure_delta_t`].
    pub fn measure_delta_t_batch(
        &self,
        vdd: f64,
        faults: &[TsvFault],
        under_test: &[usize],
        dies: &[&Die],
    ) -> Result<Vec<DeltaTMeasurement>, SpiceError> {
        let cache = Arc::new(SymbolicCache::new());
        self.measure_delta_t_batch_with(vdd, faults, under_test, dies, &self.opts_for(vdd), &cache)
    }

    /// Like [`TestBench::measure_delta_t_batch`] with explicit
    /// measurement options and an externally owned symbolic cache — a
    /// population run passes the same cache to every batch so the whole
    /// population performs O(topologies) symbolic analyses, not
    /// O(samples).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TestBench::measure_delta_t`].
    pub fn measure_delta_t_batch_with(
        &self,
        vdd: f64,
        faults: &[TsvFault],
        under_test: &[usize],
        dies: &[&Die],
        opts: &MeasureOpts,
        cache: &Arc<SymbolicCache>,
    ) -> Result<Vec<DeltaTMeasurement>, SpiceError> {
        if dies.is_empty() {
            return Ok(Vec::new());
        }
        let span = rotsv_obs::span!("measure_delta_t_batch", "vdd" = vdd);
        span.field("lanes", dies.len() as f64);
        let (enabled_config, config) = self.ro_configs(vdd, faults, under_test);
        let build_all = |cfg: &RoConfig| -> Vec<RingOscillator> {
            dies.iter()
                .map(|die| {
                    let mut ro = RingOscillator::build(cfg, &mut die.variation());
                    ro.set_symbolic_cache(Arc::clone(cache));
                    ro
                })
                .collect()
        };
        // Run 1: TSVs under test enabled, all dies as lanes.
        let ros1 = build_all(&enabled_config);
        let refs1: Vec<&RingOscillator> = ros1.iter().collect();
        let run1 = RingOscillator::measure_batch_with_stats(&refs1, opts)?;
        // Run 2: all bypassed. Same dies — identical variation streams.
        let ros2 = build_all(&config);
        let refs2: Vec<&RingOscillator> = ros2.iter().collect();
        let run2 = RingOscillator::measure_batch_with_stats(&refs2, opts)?;
        Ok(run1
            .into_iter()
            .zip(run2)
            .map(|((t1, stats1), (t2, stats2))| {
                let mut stats = stats1;
                stats.merge(&stats2);
                DeltaTMeasurement { t1, t2, stats }
            })
            .collect())
    }

    /// The two-run procedure on a whole die queue streamed through
    /// `lanes` SIMD lanes with mid-transient refill
    /// ([`RingOscillator::measure_queue_with_stats`]): each run simulates
    /// the *entire* population in one transient, seating the next die
    /// into a lane the moment its predecessor's measurement completes.
    /// Per-die results are bit-identical to
    /// [`TestBench::measure_delta_t_batch_with`] over the same dies.
    ///
    /// Returns one measurement per die, in input order. Empty input
    /// returns an empty vector.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TestBench::measure_delta_t`].
    #[allow(clippy::too_many_arguments)]
    pub fn measure_delta_t_queue_with(
        &self,
        vdd: f64,
        faults: &[TsvFault],
        under_test: &[usize],
        dies: &[&Die],
        lanes: usize,
        opts: &MeasureOpts,
        cache: &Arc<SymbolicCache>,
    ) -> Result<Vec<DeltaTMeasurement>, SpiceError> {
        if dies.is_empty() {
            return Ok(Vec::new());
        }
        let span = rotsv_obs::span!("measure_delta_t_queue", "vdd" = vdd);
        span.field("lanes", lanes as f64);
        span.field("dies", dies.len() as f64);
        let (enabled_config, config) = self.ro_configs(vdd, faults, under_test);
        let build_all = |cfg: &RoConfig| -> Vec<RingOscillator> {
            dies.iter()
                .map(|die| {
                    let mut ro = RingOscillator::build(cfg, &mut die.variation());
                    ro.set_symbolic_cache(Arc::clone(cache));
                    ro
                })
                .collect()
        };
        // Run 1: TSVs under test enabled, the whole queue streamed.
        let ros1 = build_all(&enabled_config);
        let refs1: Vec<&RingOscillator> = ros1.iter().collect();
        let run1 = RingOscillator::measure_queue_with_stats(&refs1, lanes, opts)?;
        // Run 2: all bypassed. Same dies — identical variation streams.
        let ros2 = build_all(&config);
        let refs2: Vec<&RingOscillator> = ros2.iter().collect();
        let run2 = RingOscillator::measure_queue_with_stats(&refs2, lanes, opts)?;
        Ok(run1
            .into_iter()
            .zip(run2)
            .map(|((t1, stats1), (t2, stats2))| {
                let mut stats = stats1;
                stats.merge(&stats2);
                DeltaTMeasurement { t1, t2, stats }
            })
            .collect())
    }

    /// Heterogeneous variant of [`TestBench::measure_delta_t_queue_with`]:
    /// die `i` carries its *own* fault list `per_die_faults[i]` — a fault
    /// sweep (e.g. a leakage-resistance ladder from hard-stuck to
    /// effectively fault-free) streamed through one refill queue instead
    /// of one transient per fault value.
    ///
    /// Every die's faults must produce the same matrix topology (e.g.
    /// all [`rotsv_tsv::TsvFault::Leakage`] with different resistances):
    /// the queue engine asserts topology uniformity across seated lanes.
    /// Per-die results are bit-identical to measuring each die alone.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TestBench::measure_delta_t`], plus a
    /// `per_die_faults`/`dies` length mismatch or mixed-topology faults.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_delta_t_queue_hetero_with(
        &self,
        vdd: f64,
        per_die_faults: &[&[TsvFault]],
        under_test: &[usize],
        dies: &[&Die],
        lanes: usize,
        opts: &MeasureOpts,
        cache: &Arc<SymbolicCache>,
    ) -> Result<Vec<DeltaTMeasurement>, SpiceError> {
        assert_eq!(
            per_die_faults.len(),
            dies.len(),
            "one fault list per die in a heterogeneous sweep"
        );
        if dies.is_empty() {
            return Ok(Vec::new());
        }
        let span = rotsv_obs::span!("measure_delta_t_queue_hetero", "vdd" = vdd);
        span.field("lanes", lanes as f64);
        span.field("dies", dies.len() as f64);
        let build_all = |enabled: bool| -> Vec<RingOscillator> {
            dies.iter()
                .zip(per_die_faults)
                .map(|(die, faults)| {
                    let (en, by) = self.ro_configs(vdd, faults, under_test);
                    let cfg = if enabled { en } else { by };
                    let mut ro = RingOscillator::build(&cfg, &mut die.variation());
                    ro.set_symbolic_cache(Arc::clone(cache));
                    ro
                })
                .collect()
        };
        // Run 1: TSVs under test enabled, the whole sweep streamed.
        let ros1 = build_all(true);
        let refs1: Vec<&RingOscillator> = ros1.iter().collect();
        let run1 = RingOscillator::measure_queue_with_stats(&refs1, lanes, opts)?;
        // Run 2: all bypassed. Same dies — identical variation streams.
        let ros2 = build_all(false);
        let refs2: Vec<&RingOscillator> = ros2.iter().collect();
        let run2 = RingOscillator::measure_queue_with_stats(&refs2, lanes, opts)?;
        Ok(run1
            .into_iter()
            .zip(run2)
            .map(|((t1, stats1), (t2, stats2))| {
                let mut stats = stats1;
                stats.merge(&stats2);
                DeltaTMeasurement { t1, t2, stats }
            })
            .collect())
    }

    /// Heterogeneous variant of [`TestBench::measure_delta_t_batch_with`]
    /// (fixed lockstep batch, no refill): die `i` carries its own fault
    /// list. Same topology-uniformity requirement as
    /// [`TestBench::measure_delta_t_queue_hetero_with`]; the chunked
    /// cross-check for the heterogeneous refill benchmark.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Same conditions as
    /// [`TestBench::measure_delta_t_queue_hetero_with`].
    #[allow(clippy::too_many_arguments)]
    pub fn measure_delta_t_batch_hetero_with(
        &self,
        vdd: f64,
        per_die_faults: &[&[TsvFault]],
        under_test: &[usize],
        dies: &[&Die],
        opts: &MeasureOpts,
        cache: &Arc<SymbolicCache>,
    ) -> Result<Vec<DeltaTMeasurement>, SpiceError> {
        assert_eq!(
            per_die_faults.len(),
            dies.len(),
            "one fault list per die in a heterogeneous sweep"
        );
        if dies.is_empty() {
            return Ok(Vec::new());
        }
        let span = rotsv_obs::span!("measure_delta_t_batch_hetero", "vdd" = vdd);
        span.field("lanes", dies.len() as f64);
        let build_all = |enabled: bool| -> Vec<RingOscillator> {
            dies.iter()
                .zip(per_die_faults)
                .map(|(die, faults)| {
                    let (en, by) = self.ro_configs(vdd, faults, under_test);
                    let cfg = if enabled { en } else { by };
                    let mut ro = RingOscillator::build(&cfg, &mut die.variation());
                    ro.set_symbolic_cache(Arc::clone(cache));
                    ro
                })
                .collect()
        };
        // Run 1: TSVs under test enabled, all dies as lanes.
        let ros1 = build_all(true);
        let refs1: Vec<&RingOscillator> = ros1.iter().collect();
        let run1 = RingOscillator::measure_batch_with_stats(&refs1, opts)?;
        // Run 2: all bypassed. Same dies — identical variation streams.
        let ros2 = build_all(false);
        let refs2: Vec<&RingOscillator> = ros2.iter().collect();
        let run2 = RingOscillator::measure_batch_with_stats(&refs2, opts)?;
        Ok(run1
            .into_iter()
            .zip(run2)
            .map(|((t1, stats1), (t2, stats2))| {
                let mut stats = stats1;
                stats.merge(&stats2);
                DeltaTMeasurement { t1, t2, stats }
            })
            .collect())
    }
}

/// The pair of oscillation measurements of the two-run procedure.
#[derive(Debug, Clone)]
pub struct DeltaTMeasurement {
    /// Run 1: TSV(s) under test in the loop.
    pub t1: OscillationOutcome,
    /// Run 2: all TSVs bypassed (the reference).
    pub t2: OscillationOutcome,
    /// Numerical-work counters summed over both transient runs.
    pub stats: SolverStats,
}

/// Equality compares the *measurements* only; the work counters (which
/// include wall-clock time) are bookkeeping, not results.
impl PartialEq for DeltaTMeasurement {
    fn eq(&self, other: &Self) -> bool {
        self.t1 == other.t1 && self.t2 == other.t2
    }
}

impl DeltaTMeasurement {
    /// ΔT = T₁ − T₂, or `None` if either run did not oscillate.
    pub fn delta(&self) -> Option<f64> {
        Some(self.t1.period()? - self.t2.period()?)
    }

    /// `true` when run 1 is stuck while the reference oscillates — the
    /// signature of a strong leakage fault (stuck-at-0 TSV).
    pub fn is_stuck(&self) -> bool {
        !self.t1.is_oscillating() && self.t2.is_oscillating()
    }

    /// `true` when even the all-bypassed reference failed to oscillate,
    /// which indicates a defect in the DfT itself rather than a TSV.
    pub fn reference_failed(&self) -> bool {
        !self.t2.is_oscillating()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_num::units::Ohms;

    fn bench() -> TestBench {
        TestBench::fast(2)
    }

    #[test]
    fn fault_free_delta_is_positive_segment_delay() {
        let m = bench()
            .measure_delta_t(1.1, &[TsvFault::None; 2], &[0], &Die::nominal())
            .unwrap();
        let dt = m.delta().expect("both runs oscillate");
        assert!(
            dt > 100e-12 && dt < 2e-9,
            "segment delay {dt} out of expected range"
        );
        assert!(!m.is_stuck());
        assert!(!m.reference_failed());
    }

    #[test]
    fn measurement_is_deterministic_per_die() {
        let die = Die::new(rotsv_variation::ProcessSpread::paper(), 5);
        let b = bench();
        let faults = [TsvFault::None; 2];
        let a = b.measure_delta_t(1.1, &faults, &[0], &die).unwrap();
        let c = b.measure_delta_t(1.1, &faults, &[0], &die).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn open_reduces_and_leak_increases_delta() {
        let b = bench();
        let die = Die::nominal();
        let ff = [TsvFault::None; 2];
        let open = [
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(3e3),
            },
            TsvFault::None,
        ];
        let leak = [TsvFault::Leakage { r: Ohms(3e3) }, TsvFault::None];
        let d_ff = b
            .measure_delta_t(1.1, &ff, &[0], &die)
            .unwrap()
            .delta()
            .unwrap();
        let d_open = b
            .measure_delta_t(1.1, &open, &[0], &die)
            .unwrap()
            .delta()
            .unwrap();
        let d_leak = b
            .measure_delta_t(1.1, &leak, &[0], &die)
            .unwrap()
            .delta()
            .unwrap();
        assert!(d_open < d_ff, "open {d_open} !< fault-free {d_ff}");
        assert!(d_leak > d_ff, "leak {d_leak} !> fault-free {d_ff}");
    }

    #[test]
    fn strong_leak_reports_stuck() {
        let b = bench();
        let faults = [TsvFault::Leakage { r: Ohms(300.0) }, TsvFault::None];
        let m = b
            .measure_delta_t(1.1, &faults, &[0], &Die::nominal())
            .unwrap();
        assert!(m.is_stuck());
        assert_eq!(m.delta(), None);
        assert!(!m.reference_failed());
    }

    #[test]
    fn opts_scale_with_voltage() {
        let b = bench();
        let nominal = b.opts_for(1.1);
        let low = b.opts_for(0.7);
        assert!(low.max_time > 2.0 * nominal.max_time);
        assert!(low.dt > nominal.dt);
    }

    #[test]
    #[should_panic(expected = "fault list")]
    fn fault_length_mismatch_panics() {
        let _ = bench().measure_delta_t(1.1, &[TsvFault::None], &[0], &Die::nominal());
    }

    #[test]
    #[should_panic(expected = "at least one TSV")]
    fn empty_under_test_panics() {
        let _ = bench().measure_delta_t(1.1, &[TsvFault::None; 2], &[], &Die::nominal());
    }
}
