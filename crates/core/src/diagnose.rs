//! Fault-size diagnosis from measured ΔT.
//!
//! Detection tells us *that* a TSV is defective; diagnosis estimates *how
//! big* the defect is — valuable because the paper motivates early
//! screening with defects that "get aggravated over time": a weak leak
//! near the detection limit is a reliability risk even if functionally
//! benign today. The paper points to ring-oscillator-based diagnosis as
//! related work (\[10\], \[14\]); this module implements it on top of the
//! ΔT machinery:
//!
//! 1. **Calibrate** a ΔT-vs-fault-size curve on a nominal die by sweeping
//!    injected fault sizes (a simulation the DfT designer runs once).
//! 2. **Invert** a measured ΔT through monotone interpolation of that
//!    curve to estimate the defect size.

use rotsv_num::interp::lerp_at;
use rotsv_num::units::Ohms;
use rotsv_spice::SpiceError;
use rotsv_tsv::TsvFault;

use crate::aliasing::FaultFamily;
use crate::die::Die;
use crate::measure::TestBench;

/// A calibrated ΔT(fault size) curve for one family at one voltage.
#[derive(Debug, Clone)]
pub struct DiagnosisCurve {
    family: FaultFamily,
    vdd: f64,
    /// Fault sizes in ohms, sorted ascending.
    sizes: Vec<f64>,
    /// ΔT at each size, seconds (same order as `sizes`).
    deltas: Vec<f64>,
}

impl DiagnosisCurve {
    /// Calibrates the curve by simulating a nominal die with each fault
    /// size injected.
    ///
    /// Sizes producing a stuck ring are dropped from the curve (they are
    /// diagnosed as "beyond the strongest oscillating size").
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or fewer than two sizes oscillate.
    pub fn calibrate(
        bench: &TestBench,
        vdd: f64,
        family: FaultFamily,
        sizes: &[f64],
    ) -> Result<Self, SpiceError> {
        assert!(!sizes.is_empty(), "need at least one size");
        let die = Die::nominal();
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(sizes.len());
        for &size in sizes {
            let mut faults = vec![TsvFault::None; bench.n_segments];
            faults[0] = match family {
                FaultFamily::ResistiveOpen => TsvFault::ResistiveOpen {
                    x: 0.5,
                    r: Ohms(size),
                },
                FaultFamily::Leakage => TsvFault::Leakage { r: Ohms(size) },
            };
            if let Some(dt) = bench.measure_delta_t(vdd, &faults, &[0], &die)?.delta() {
                pairs.push((size, dt));
            }
        }
        assert!(
            pairs.len() >= 2,
            "need at least two oscillating sizes to build a curve"
        );
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite sizes"));
        let (sizes, deltas) = pairs.into_iter().unzip();
        Ok(Self {
            family,
            vdd,
            sizes,
            deltas,
        })
    }

    /// The fault family this curve diagnoses.
    pub fn family(&self) -> FaultFamily {
        self.family
    }

    /// The calibration voltage.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The calibration points `(size, ΔT)`.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.sizes.iter().copied().zip(self.deltas.iter().copied())
    }

    /// Estimates the fault size from a measured ΔT by inverse
    /// interpolation; clamps to the calibrated range.
    ///
    /// ΔT is monotone in the fault size within a family (decreasing in
    /// R_O severity for opens, increasing as R_L shrinks for leaks), so
    /// the inversion is well-posed on the calibrated interval.
    pub fn estimate_size(&self, measured_delta: f64) -> Ohms {
        // Build an increasing-x view of (ΔT, size).
        let mut pairs: Vec<(f64, f64)> = self
            .deltas
            .iter()
            .copied()
            .zip(self.sizes.iter().copied())
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite deltas"));
        // Deduplicate equal ΔT values (flat spots at the benign end).
        pairs.dedup_by(|a, b| a.0 == b.0);
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        Ohms(lerp_at(&xs, &ys, measured_delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_curve(family: FaultFamily, pts: &[(f64, f64)]) -> DiagnosisCurve {
        DiagnosisCurve {
            family,
            vdd: 1.1,
            sizes: pts.iter().map(|p| p.0).collect(),
            deltas: pts.iter().map(|p| p.1).collect(),
        }
    }

    #[test]
    fn inversion_recovers_calibration_points() {
        let curve = synthetic_curve(
            FaultFamily::Leakage,
            &[(1e3, 900e-12), (3e3, 600e-12), (10e3, 500e-12)],
        );
        assert!((curve.estimate_size(900e-12).value() - 1e3).abs() < 1e-6);
        assert!((curve.estimate_size(600e-12).value() - 3e3).abs() < 1e-6);
        // Midpoint interpolates between sizes.
        let mid = curve.estimate_size(750e-12).value();
        assert!((1e3..3e3).contains(&mid), "mid = {mid}");
    }

    #[test]
    fn out_of_range_measurements_clamp() {
        let curve = synthetic_curve(
            FaultFamily::ResistiveOpen,
            &[(500.0, 450e-12), (3e3, 400e-12)],
        );
        // ΔT below the strongest calibrated point clamps to its size.
        assert_eq!(curve.estimate_size(1e-12).value(), 3e3);
        assert_eq!(curve.estimate_size(1.0).value(), 500.0);
    }

    /// Full loop: calibrate on simulation, inject a fault the calibration
    /// never saw, diagnose its size from the measured ΔT.
    #[test]
    fn diagnoses_unseen_leak_size() {
        let bench = TestBench::fast(1);
        let curve =
            DiagnosisCurve::calibrate(&bench, 1.1, FaultFamily::Leakage, &[2.5e3, 4e3, 8e3, 20e3])
                .unwrap();
        // A 5 kΩ leak, not in the calibration set.
        let faults = [TsvFault::Leakage { r: Ohms(5e3) }];
        let dt = bench
            .measure_delta_t(1.1, &faults, &[0], &Die::nominal())
            .unwrap()
            .delta()
            .unwrap();
        let est = curve.estimate_size(dt).value();
        assert!(
            (3.5e3..7e3).contains(&est),
            "estimated {est} Ω for a 5 kΩ leak"
        );
    }

    #[test]
    fn diagnoses_unseen_open_size() {
        let bench = TestBench::fast(1);
        let curve = DiagnosisCurve::calibrate(
            &bench,
            1.1,
            FaultFamily::ResistiveOpen,
            &[0.5e3, 1e3, 2e3, 4e3],
        )
        .unwrap();
        let faults = [TsvFault::ResistiveOpen {
            x: 0.5,
            r: Ohms(1.5e3),
        }];
        let dt = bench
            .measure_delta_t(1.1, &faults, &[0], &Die::nominal())
            .unwrap()
            .delta()
            .unwrap();
        let est = curve.estimate_size(dt).value();
        assert!(
            (1e3..2.2e3).contains(&est),
            "estimated {est} Ω for a 1.5 kΩ open"
        );
    }
}
