#![warn(missing_docs)]

//! Monte-Carlo process variation.
//!
//! The paper validates its test method against random process variation
//! with HSPICE Monte-Carlo runs using **3σ(V_th) = 30 mV** and
//! **3σ(L_eff) = 10 %**, values "consistent with those reported by
//! industry for recent technology nodes". This crate reproduces that
//! model:
//!
//! * [`ProcessSpread`] — the σ values,
//! * [`GaussianVariation`] — a seeded
//!   [`rotsv_mosfet::VariationSource`] drawing an independent
//!   (ΔV_th, ΔL_eff) pair for every transistor,
//! * [`McRunner`] — reproducible, parallel fan-out of Monte-Carlo
//!   samples: sample `i` always sees the same variation stream regardless
//!   of thread count.
//!
//! # Examples
//!
//! ```
//! use rotsv_mosfet::model::VariationSource;
//! use rotsv_variation::{GaussianVariation, ProcessSpread};
//!
//! let mut v = GaussianVariation::new(ProcessSpread::paper(), 42);
//! let d = v.next_delta();
//! assert!(d.dvth.abs() < 0.1, "30 mV-sigma deltas stay small");
//! ```

use rotsv_mosfet::model::{MosDelta, VariationSource};
use rotsv_num::parallel::parallel_map;
use rotsv_num::rng::GaussianRng;

/// Standard deviations of the per-transistor process parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessSpread {
    /// σ of the threshold-voltage shift, volts.
    pub sigma_vth: f64,
    /// σ of the relative effective-length change.
    pub sigma_leff_rel: f64,
}

impl ProcessSpread {
    /// The paper's Monte-Carlo model: 3σ(V_th) = 30 mV, 3σ(L_eff) = 10 %.
    pub fn paper() -> Self {
        Self {
            sigma_vth: 0.030 / 3.0,
            sigma_leff_rel: 0.10 / 3.0,
        }
    }

    /// No variation at all (degenerate spread).
    pub fn none() -> Self {
        Self {
            sigma_vth: 0.0,
            sigma_leff_rel: 0.0,
        }
    }

    /// A scaled copy (e.g. `scaled(2.0)` doubles both sigmas) — used to
    /// study how detection resolution degrades with a less mature process.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite(), "factor must be >= 0");
        Self {
            sigma_vth: self.sigma_vth * factor,
            sigma_leff_rel: self.sigma_leff_rel * factor,
        }
    }
}

/// A seeded Gaussian [`VariationSource`].
#[derive(Debug, Clone)]
pub struct GaussianVariation {
    spread: ProcessSpread,
    rng: GaussianRng,
}

impl GaussianVariation {
    /// Creates a source with the given spread and seed.
    pub fn new(spread: ProcessSpread, seed: u64) -> Self {
        Self {
            spread,
            rng: GaussianRng::seed_from(seed),
        }
    }

    /// The spread this source samples from.
    pub fn spread(&self) -> ProcessSpread {
        self.spread
    }
}

impl VariationSource for GaussianVariation {
    fn next_delta(&mut self) -> MosDelta {
        MosDelta {
            dvth: self.rng.normal(0.0, self.spread.sigma_vth),
            dleff_rel: self.rng.normal(0.0, self.spread.sigma_leff_rel),
        }
    }
}

/// Reproducible parallel Monte-Carlo fan-out.
///
/// Each sample index derives its own RNG seed from the runner seed, so the
/// result vector is a pure function of `(seed, samples)` — thread count
/// and scheduling cannot change it.
#[derive(Debug, Clone, Copy)]
pub struct McRunner {
    spread: ProcessSpread,
    seed: u64,
    samples: usize,
}

impl McRunner {
    /// Creates a runner for `samples` Monte-Carlo samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn new(spread: ProcessSpread, seed: u64, samples: usize) -> Self {
        assert!(samples > 0, "Monte-Carlo needs at least one sample");
        Self {
            spread,
            seed,
            samples,
        }
    }

    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Runs `f` once per sample, in parallel, handing each invocation its
    /// sample index and a private variation source.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, GaussianVariation) -> T + Sync,
    {
        let spread = self.spread;
        let seed = self.seed;
        parallel_map(self.samples, move |i| {
            let sample_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1);
            f(i, GaussianVariation::new(spread, sample_seed))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_num::stats::Summary;

    #[test]
    fn paper_spread_matches_three_sigma_values() {
        let s = ProcessSpread::paper();
        assert!((3.0 * s.sigma_vth - 0.030).abs() < 1e-12);
        assert!((3.0 * s.sigma_leff_rel - 0.10).abs() < 1e-12);
    }

    #[test]
    fn sampled_sigma_matches_spec() {
        let mut v = GaussianVariation::new(ProcessSpread::paper(), 7);
        let deltas: Vec<MosDelta> = (0..20_000).map(|_| v.next_delta()).collect();
        let vths: Vec<f64> = deltas.iter().map(|d| d.dvth).collect();
        let leffs: Vec<f64> = deltas.iter().map(|d| d.dleff_rel).collect();
        let sv = Summary::of(&vths);
        let sl = Summary::of(&leffs);
        assert!(sv.mean.abs() < 2e-4);
        assert!((sv.std_dev - 0.01).abs() < 5e-4, "sigma_vth {}", sv.std_dev);
        assert!(
            (sl.std_dev - 0.10 / 3.0).abs() < 2e-3,
            "sigma_leff {}",
            sl.std_dev
        );
    }

    #[test]
    fn zero_spread_gives_nominal_deltas() {
        let mut v = GaussianVariation::new(ProcessSpread::none(), 3);
        for _ in 0..10 {
            assert_eq!(v.next_delta(), MosDelta::NOMINAL);
        }
    }

    #[test]
    fn scaled_multiplies_sigmas() {
        let s = ProcessSpread::paper().scaled(2.0);
        assert!((s.sigma_vth - 0.02).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 0")]
    fn negative_scale_rejected() {
        let _ = ProcessSpread::paper().scaled(-1.0);
    }

    #[test]
    fn runner_is_reproducible_and_order_stable() {
        let runner = McRunner::new(ProcessSpread::paper(), 99, 32);
        let collect = || {
            runner.run(|i, mut v| {
                let d = v.next_delta();
                (i, d.dvth, d.dleff_rel)
            })
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b);
        for (i, item) in a.iter().enumerate() {
            assert_eq!(item.0, i);
        }
        // Different samples see different streams.
        assert_ne!(a[0].1, a[1].1);
    }

    #[test]
    fn different_seeds_differ() {
        let a = McRunner::new(ProcessSpread::paper(), 1, 4).run(|_, mut v| v.next_delta().dvth);
        let b = McRunner::new(ProcessSpread::paper(), 2, 4).run(|_, mut v| v.next_delta().dvth);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = McRunner::new(ProcessSpread::paper(), 0, 0);
    }
}
