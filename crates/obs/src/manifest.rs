//! Run manifests: one machine-readable JSON document per experiment run.
//!
//! A manifest captures everything needed to audit or compare a run —
//! provenance (git rev, timestamp, seed), configuration (fidelity,
//! thread count), outcome (check pass/fail counts, solver statistics),
//! the per-phase wall-time breakdown from the span tracer, and every
//! registered metric. `bench_solver --check` and the CI smoke test
//! consume these files, so the schema is versioned and validated.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "experiment": "e3",
//!   "git_rev": "abc123… | unknown",
//!   "timestamp_unix": 1754000000,
//!   "fidelity": "fast | full",
//!   "threads": 8,
//!   "seed": 1007,                  // or null
//!   "wall_seconds": 4.7,
//!   "checks": {"passed": 3, "failed": 0},
//!   "solver_stats": {…},           // or null
//!   "phases": [                    // depth-1 spans, main thread
//!     {"name": "mc_population", "path": "e3>mc_population",
//!      "count": 1, "total_seconds": 4.1, "self_seconds": 0.2}
//!   ],
//!   "metrics": {"counters": {…}, "gauges": {…}, "histograms": {…}}
//! }
//! ```

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::span::SpanReport;

/// Version of the manifest schema emitted by [`build_manifest`].
pub const SCHEMA_VERSION: f64 = 1.0;

/// Run-level inputs to a manifest that the tracer and metrics registry
/// don't know about.
#[derive(Debug, Clone)]
pub struct ManifestInputs {
    /// Experiment id, e.g. `"e3"`.
    pub experiment: String,
    /// Fidelity label, e.g. `"fast"` or `"full"`.
    pub fidelity: String,
    /// Worker thread count used for parallel sections.
    pub threads: usize,
    /// RNG seed of the run, when the experiment is stochastic.
    pub seed: Option<u64>,
    /// Total wall time of the run in seconds.
    pub wall_seconds: f64,
    /// Acceptance checks that passed.
    pub checks_passed: u64,
    /// Acceptance checks that failed.
    pub checks_failed: u64,
    /// Aggregated solver statistics as JSON, when available.
    pub solver_stats: Option<Json>,
}

/// The current git revision, or `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Builds a schema-version-1 manifest from run inputs, a span report
/// (its depth-1 entries become the `phases` array), and a metrics dump
/// (normally [`crate::metrics::dump_json`]).
pub fn build_manifest(inputs: &ManifestInputs, spans: &SpanReport, metrics: Json) -> Json {
    let timestamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as f64)
        .unwrap_or(0.0);
    let phases: Vec<Json> = spans
        .at_depth(1)
        .map(|e| {
            Json::Obj(vec![
                ("name".into(), Json::Str(e.name.clone())),
                ("path".into(), Json::Str(e.path.clone())),
                ("count".into(), Json::Num(e.count as f64)),
                ("total_seconds".into(), Json::num_or_null(e.total_seconds)),
                ("self_seconds".into(), Json::num_or_null(e.self_seconds)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(SCHEMA_VERSION)),
        ("experiment".into(), Json::Str(inputs.experiment.clone())),
        ("git_rev".into(), Json::Str(git_rev())),
        ("timestamp_unix".into(), Json::Num(timestamp)),
        ("fidelity".into(), Json::Str(inputs.fidelity.clone())),
        ("threads".into(), Json::Num(inputs.threads as f64)),
        (
            "seed".into(),
            inputs.seed.map_or(Json::Null, |s| Json::Num(s as f64)),
        ),
        (
            "wall_seconds".into(),
            Json::num_or_null(inputs.wall_seconds),
        ),
        (
            "checks".into(),
            Json::Obj(vec![
                ("passed".into(), Json::Num(inputs.checks_passed as f64)),
                ("failed".into(), Json::Num(inputs.checks_failed as f64)),
            ]),
        ),
        (
            "solver_stats".into(),
            inputs.solver_stats.clone().unwrap_or(Json::Null),
        ),
        ("phases".into(), Json::Arr(phases)),
        ("metrics".into(), metrics),
    ])
}

fn require<'a>(doc: &'a Json, key: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = doc.get(key);
    if v.is_none() {
        errors.push(format!("missing key '{key}'"));
    }
    v
}

fn require_num(doc: &Json, key: &str, errors: &mut Vec<String>) -> Option<f64> {
    let v = require(doc, key, errors)?;
    let n = v.as_f64();
    if n.is_none() {
        errors.push(format!("'{key}' must be a number"));
    }
    n
}

fn require_str(doc: &Json, key: &str, errors: &mut Vec<String>) {
    if let Some(v) = require(doc, key, errors) {
        if v.as_str().is_none() {
            errors.push(format!("'{key}' must be a string"));
        }
    }
}

/// Validates a parsed document against the version-1 manifest schema.
/// Returns every violation found, so CI output names all problems at
/// once.
///
/// Schema versions are `major.minor` encoded as a number. An unknown
/// *major* (`trunc(v) != 1`) is an error — field meanings may have
/// changed. A newer *minor* within the known major (e.g. `1.2` when
/// this validator knows `1.0`) is forward-compatible by contract
/// (minors only add fields), so the document is validated against the
/// known fields and the mismatch is reported as a warning in `Ok`.
pub fn validate_manifest(doc: &Json) -> Result<Vec<String>, Vec<String>> {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();
    if !matches!(doc, Json::Obj(_)) {
        return Err(vec!["manifest must be a JSON object".into()]);
    }
    if let Some(v) = require_num(doc, "schema_version", &mut errors) {
        if v.trunc() != SCHEMA_VERSION.trunc() {
            errors.push(format!(
                "unsupported schema_version {v} (this validator understands major version {})",
                SCHEMA_VERSION.trunc()
            ));
        } else if v > SCHEMA_VERSION {
            warnings.push(format!(
                "schema_version {v} is newer than the supported {SCHEMA_VERSION}; \
                 validating against the known version-{SCHEMA_VERSION} fields only"
            ));
        }
    }
    require_str(doc, "experiment", &mut errors);
    require_str(doc, "git_rev", &mut errors);
    require_str(doc, "fidelity", &mut errors);
    require_num(doc, "timestamp_unix", &mut errors);
    require_num(doc, "threads", &mut errors);
    require_num(doc, "wall_seconds", &mut errors);
    if let Some(seed) = require(doc, "seed", &mut errors) {
        if !matches!(seed, Json::Null | Json::Num(_)) {
            errors.push("'seed' must be a number or null".into());
        }
    }
    if let Some(checks) = require(doc, "checks", &mut errors) {
        require_num(checks, "passed", &mut errors);
        require_num(checks, "failed", &mut errors);
    }
    if let Some(stats) = require(doc, "solver_stats", &mut errors) {
        if !matches!(stats, Json::Null | Json::Obj(_)) {
            errors.push("'solver_stats' must be an object or null".into());
        }
    }
    match require(doc, "phases", &mut errors) {
        Some(Json::Arr(phases)) => {
            for (i, phase) in phases.iter().enumerate() {
                let mut phase_errors = Vec::new();
                require_str(phase, "name", &mut phase_errors);
                require_str(phase, "path", &mut phase_errors);
                require_num(phase, "count", &mut phase_errors);
                require_num(phase, "total_seconds", &mut phase_errors);
                require_num(phase, "self_seconds", &mut phase_errors);
                errors.extend(
                    phase_errors
                        .into_iter()
                        .map(|e| format!("phases[{i}]: {e}")),
                );
            }
        }
        Some(_) => errors.push("'phases' must be an array".into()),
        None => {}
    }
    match require(doc, "metrics", &mut errors) {
        Some(metrics @ Json::Obj(_)) => {
            for section in ["counters", "gauges", "histograms"] {
                if !matches!(metrics.get(section), Some(Json::Obj(_))) {
                    errors.push(format!("'metrics.{section}' must be an object"));
                }
            }
        }
        Some(_) => errors.push("'metrics' must be an object".into()),
        None => {}
    }
    if errors.is_empty() {
        Ok(warnings)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_inputs() -> ManifestInputs {
        ManifestInputs {
            experiment: "e_test".into(),
            fidelity: "fast".into(),
            threads: 4,
            seed: Some(1007),
            wall_seconds: 1.25,
            checks_passed: 3,
            checks_failed: 1,
            solver_stats: Some(Json::Obj(vec![(
                "newton_iterations".into(),
                Json::Num(42.0),
            )])),
        }
    }

    #[test]
    fn built_manifest_validates_and_roundtrips() {
        let manifest = build_manifest(
            &sample_inputs(),
            &SpanReport::default(),
            crate::metrics::dump_json(),
        );
        validate_manifest(&manifest).expect("fresh manifest conforms to its own schema");
        let reparsed = json::parse(&manifest.render_pretty()).expect("parse");
        validate_manifest(&reparsed).expect("roundtripped manifest conforms");
        assert_eq!(
            reparsed.get("experiment").and_then(Json::as_str),
            Some("e_test")
        );
        assert_eq!(
            reparsed
                .get("checks")
                .and_then(|c| c.get("failed"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn null_seed_and_stats_are_valid() {
        let mut inputs = sample_inputs();
        inputs.seed = None;
        inputs.solver_stats = None;
        let manifest = build_manifest(&inputs, &SpanReport::default(), crate::metrics::dump_json());
        validate_manifest(&manifest).expect("nullable fields validate");
        assert_eq!(manifest.get("seed"), Some(&Json::Null));
    }

    #[test]
    fn schema_version_major_minor_semantics() {
        fn with_version(doc: &Json, v: f64) -> Json {
            let Json::Obj(fields) = doc else {
                panic!("manifest is an object")
            };
            Json::Obj(
                fields
                    .iter()
                    .map(|(k, val)| {
                        if k == "schema_version" {
                            (k.clone(), Json::Num(v))
                        } else {
                            (k.clone(), val.clone())
                        }
                    })
                    .collect(),
            )
        }
        let manifest = build_manifest(
            &sample_inputs(),
            &SpanReport::default(),
            crate::metrics::dump_json(),
        );
        // The current version validates without warnings…
        assert!(validate_manifest(&manifest)
            .expect("current version")
            .is_empty());
        // …an older minor of the same major too…
        assert!(validate_manifest(&with_version(&manifest, 1.0))
            .expect("known minor")
            .is_empty());
        // …a newer minor passes but warns…
        let warnings =
            validate_manifest(&with_version(&manifest, 1.7)).expect("newer minor accepted");
        assert!(warnings.iter().any(|w| w.contains("newer")), "{warnings:?}");
        // …and an unknown major fails outright, both up and down.
        for major in [2.0, 2.3, 0.9] {
            let errors = validate_manifest(&with_version(&manifest, major))
                .expect_err("unknown major rejected");
            assert!(
                errors.iter().any(|e| e.contains("schema_version")),
                "{errors:?}"
            );
        }
    }

    #[test]
    fn validation_reports_all_violations() {
        let doc = json::parse(r#"{"schema_version": 99, "experiment": 5}"#).expect("parse");
        let errors = validate_manifest(&doc).expect_err("invalid manifest");
        assert!(errors.iter().any(|e| e.contains("schema_version")));
        assert!(errors
            .iter()
            .any(|e| e.contains("'experiment' must be a string")));
        assert!(errors.iter().any(|e| e.contains("missing key 'phases'")));
        assert!(errors.len() >= 8, "{errors:?}");
    }
}
