//! Prometheus text exposition over the metrics registry.
//!
//! [`render_prometheus`] snapshots every registered counter, gauge and
//! histogram as Prometheus text format (version 0.0.4) — the interface
//! a resident screening server will serve on `/metrics`, and the one
//! `promtool`/Prometheus agents already speak. Until that server
//! exists, [`PrometheusFlusher`] gives the same data as a file: a
//! background thread rewrites a snapshot atomically (write-to-temp +
//! rename) on a fixed interval, so an external scraper — or a human
//! with `watch cat` — always sees a complete document.
//!
//! Names are prefixed `rotsv_` and dots become underscores
//! (`mc.samples` → `rotsv_mc_samples`). Histograms expose the usual
//! cumulative `_bucket{le="…"}` series (upper bounds of the log-linear
//! buckets; underflow is cumulative from the first bucket on),
//! `_sum` and `_count`.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::{bucket_upper, snapshot_all, HistogramSummary};

/// `mc.batch_occupancy` → `rotsv_mc_batch_occupancy`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("rotsv_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus float literal (`NaN`, `+Inf`, `-Inf` spelled out).
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, s: &HistogramSummary) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} histogram");
    // Prometheus buckets are cumulative; underflowed samples are below
    // every bound, so they seed the running total.
    let mut cumulative = s.underflow;
    for &(lower, count) in &s.buckets {
        cumulative += count;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            num(bucket_upper(lower))
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", s.count);
    let _ = writeln!(out, "{name}_sum {}", num(s.sum));
    let _ = writeln!(out, "{name}_count {}", s.count);
}

fn render_from(
    counters: &[(String, u64)],
    gauges: &[(String, f64)],
    histograms: &[(String, HistogramSummary)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", num(*value));
    }
    for (name, summary) in histograms {
        render_histogram(&mut out, &sanitize(name), summary);
    }
    out
}

/// Renders every registered metric in Prometheus text format.
pub fn render_prometheus() -> String {
    let (counters, gauges, histograms) = snapshot_all();
    render_from(&counters, &gauges, &histograms)
}

/// Writes a [`render_prometheus`] snapshot to `path` atomically
/// (write-to-temp in the same directory, then rename).
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_prometheus(path: &Path) -> io::Result<()> {
    let tmp = path.with_extension("prom.tmp");
    std::fs::write(&tmp, render_prometheus())?;
    std::fs::rename(&tmp, path)
}

/// Handle of the periodic Prometheus snapshot thread; the thread stops
/// (after one final snapshot) when this drops or [`stop`] is called.
///
/// [`stop`]: PrometheusFlusher::stop
///
/// # Examples
///
/// ```no_run
/// let flusher = rotsv_obs::prom::PrometheusFlusher::start(
///     "results/metrics.prom",
///     std::time::Duration::from_secs(1),
/// );
/// // ... run experiments; the file refreshes every second ...
/// flusher.stop();
/// ```
pub struct PrometheusFlusher {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl PrometheusFlusher {
    /// Spawns the flush thread writing to `path` every `interval`.
    /// Periodic write errors are ignored (telemetry must never take a
    /// run down); the final flush's result is reported by
    /// [`PrometheusFlusher::stop`].
    pub fn start(path: impl Into<PathBuf>, interval: Duration) -> PrometheusFlusher {
        let path = path.into();
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_path = path.clone();
        let handle = std::thread::Builder::new()
            .name("prom-flush".into())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                let mut stopped = lock.lock().expect("prom flusher flag");
                loop {
                    if *stopped {
                        return;
                    }
                    let (next, _timeout) = cvar
                        .wait_timeout(stopped, interval)
                        .expect("prom flusher wait");
                    stopped = next;
                    if *stopped {
                        return;
                    }
                    let _ = write_prometheus(&thread_path);
                }
            })
            .expect("spawn prom-flush thread");
        PrometheusFlusher {
            stop,
            handle: Some(handle),
            path,
        }
    }

    /// Stops the flush thread, joins it, and writes one final snapshot
    /// so the file reflects end-of-run state.
    ///
    /// # Errors
    ///
    /// Propagates the final snapshot's file-system error.
    pub fn stop(mut self) -> io::Result<()> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> io::Result<()> {
        let Some(handle) = self.handle.take() else {
            return Ok(());
        };
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock().expect("prom flusher flag") = true;
            cvar.notify_all();
        }
        let _ = handle.join();
        write_prometheus(&self.path)
    }
}

impl Drop for PrometheusFlusher {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let h = Histogram::default();
        h.observe(1.0);
        h.observe(1.0); // boundary: both land in [1.0, 1.25)
        h.observe(3.0);
        h.observe(f64::NAN); // underflow, excluded from the sum
        let text = render_from(
            &[("mc.samples".into(), 7)],
            &[("queue.depth".into(), 2.5), ("bad".into(), f64::NAN)],
            &[("lu.numeric".into(), h.summary())],
        );
        assert!(text.contains("# TYPE rotsv_mc_samples counter\nrotsv_mc_samples 7\n"));
        assert!(text.contains("# TYPE rotsv_queue_depth gauge\nrotsv_queue_depth 2.5\n"));
        assert!(text.contains("rotsv_bad NaN\n"));
        assert!(text.contains("# TYPE rotsv_lu_numeric histogram"));
        // Cumulative buckets: underflow (1) + two at le=1.25, + one in
        // [3.0, 3.5); +Inf equals total count.
        assert!(text.contains("rotsv_lu_numeric_bucket{le=\"1.25\"} 3\n"));
        assert!(text.contains("rotsv_lu_numeric_bucket{le=\"3.5\"} 4\n"));
        assert!(text.contains("rotsv_lu_numeric_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("rotsv_lu_numeric_sum 5\n"));
        assert!(text.contains("rotsv_lu_numeric_count 4\n"));
    }

    #[test]
    fn flusher_writes_snapshots_and_stops() {
        let dir = std::env::temp_dir().join(format!("rotsv_prom_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("metrics.prom");
        let flusher = PrometheusFlusher::start(&path, Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !path.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        flusher.stop().expect("final snapshot");
        assert!(path.exists(), "flusher never wrote a snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
