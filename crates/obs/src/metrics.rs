//! Process-wide metrics registry: counters, gauges, and log-linear
//! histograms.
//!
//! Metrics are registered on first use by name and live for the process.
//! Handles are `Arc`s over lock-free atomics — hot paths resolve a
//! handle once (e.g. when a solver workspace is built) and then update
//! it without taking the registry lock. The whole registry dumps to a
//! JSON value for run manifests.
//!
//! Like tracing, metrics collection has a process-wide switch
//! ([`set_metrics`]); instrumented code only *resolves* handles when the
//! switch is on, so the disabled cost is a relaxed atomic load at setup
//! points and nothing at all per sample.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

static METRICS: AtomicBool = AtomicBool::new(false);

/// Turns metrics collection on or off process-wide.
pub fn set_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

/// `true` when metrics collection is enabled.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Buckets: 1 underflow, 256 octaves × 4 linear sub-buckets covering
/// exactly `[2⁻¹²⁸, 2¹²⁸)`, 1 overflow.
const N_BUCKETS: usize = 1 + 256 * 4 + 1;

/// Biased-exponent bounds of the tracked range: values with a biased
/// exponent below `MIN_BIASED_EXP` (all subnormals included) underflow,
/// values above `MAX_BIASED_EXP` (including +∞) overflow.
const MIN_BIASED_EXP: i64 = 1023 - 128;
const MAX_BIASED_EXP: i64 = 1023 + 127;

/// A lock-free log-linear histogram of positive values.
///
/// Values land in one of four linear sub-buckets per power of two over
/// the range `[2⁻¹²⁸, 2¹²⁸)` — ~9 % relative resolution over any range
/// this repo measures (picoseconds to kiloseconds, iteration counts,
/// resistances). Buckets are left-closed: a sample exactly on a bucket
/// boundary deterministically lands in the bucket it opens. Values
/// outside the range go to dedicated underflow/overflow buckets (zero,
/// negatives, NaN and all subnormals underflow; `≥ 2¹²⁸` and +∞
/// overflow).
///
/// # Examples
///
/// ```
/// use rotsv_obs::metrics::Histogram;
///
/// let h = Histogram::default();
/// for v in [1.0, 1.1, 3.0, 3.2, 100.0] {
///     h.observe(v);
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 100.0);
/// assert!(s.quantile(0.5) >= 1.0 && s.quantile(0.5) <= 4.0);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// Bucket index of `v`.
///
/// Data buckets are left-closed/right-open: a sample exactly on a
/// bucket boundary `(1 + sub/4)·2^e` lands in the bucket that boundary
/// *opens* (its bits are exactly the boundary's, so the exponent and
/// sub-bucket fields select it directly), never the one below. Values
/// outside the tracked range `[2⁻¹²⁸, 2¹²⁸)` — zero, negatives, NaN,
/// every subnormal and any tinier normal on one side; `≥ 2¹²⁸` and +∞
/// on the other — go to the underflow/overflow buckets, so every data
/// bucket's lower bound really bounds its samples.
fn bucket_of(v: f64) -> usize {
    if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        // NaN, zero and negatives share the underflow bucket…
        return 0;
    }
    let bits = v.to_bits();
    let be = ((bits >> 52) & 0x7ff) as i64;
    if be < MIN_BIASED_EXP {
        // …as do positive values below 2⁻¹²⁸ (subnormals included).
        return 0;
    }
    if be > MAX_BIASED_EXP {
        // 2¹²⁸ and up — +∞ included — get the overflow bucket.
        return N_BUCKETS - 1;
    }
    let e = be - 1023;
    let sub = ((bits >> 50) & 0b11) as i64;
    (1 + (e + 128) * 4 + sub) as usize
}

/// Lower bound of bucket `idx` (1-based data buckets).
fn bucket_lower(idx: usize) -> f64 {
    debug_assert!((1..N_BUCKETS - 1).contains(&idx));
    let k = (idx - 1) as i64;
    let e = k / 4 - 128;
    let sub = k % 4;
    (1.0 + sub as f64 / 4.0) * (e as f64).exp2()
}

/// Exclusive upper bound of the data bucket opened at `lower` — the
/// next boundary up, or `2¹²⁸` for the topmost bucket. Used by the
/// Prometheus renderer to turn `(lower, count)` pairs into cumulative
/// `le` buckets. `lower` must be an exact bucket boundary (as produced
/// by [`HistogramSummary::buckets`]).
pub(crate) fn bucket_upper(lower: f64) -> f64 {
    let idx = bucket_of(lower);
    debug_assert!((1..N_BUCKETS - 1).contains(&idx));
    debug_assert_eq!(bucket_lower(idx), lower, "not a bucket boundary");
    if idx + 1 < N_BUCKETS - 1 {
        bucket_lower(idx + 1)
    } else {
        128f64.exp2()
    }
}

fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
        Some(f(f64::from_bits(bits)).to_bits())
    });
}

impl Histogram {
    /// Records one value.
    pub fn observe(&self, v: f64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            atomic_f64_update(&self.sum_bits, |s| s + v);
            atomic_f64_update(&self.min_bits, |m| m.min(v));
            atomic_f64_update(&self.max_bits, |m| m.max(v));
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshots the histogram.
    pub fn summary(&self) -> HistogramSummary {
        let buckets: Vec<(f64, u64)> = (1..N_BUCKETS - 1)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_lower(i), c))
            })
            .collect();
        HistogramSummary {
            count: self.count(),
            underflow: self.buckets[0].load(Ordering::Relaxed),
            overflow: self.buckets[N_BUCKETS - 1].load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// Point-in-time snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Total recorded values (including under/overflow).
    pub count: u64,
    /// Values below the tracked range: zero, negative, NaN, or a
    /// positive value below `2⁻¹²⁸` (all subnormals included).
    pub underflow: u64,
    /// Values at or above `2¹²⁸`, +∞ included.
    pub overflow: u64,
    /// Sum of finite recorded values.
    pub sum: f64,
    /// Smallest finite recorded value (+∞ when empty).
    pub min: f64,
    /// Largest finite recorded value (−∞ when empty).
    pub max: f64,
    /// Non-empty data buckets as `(lower_bound, count)`, ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSummary {
    /// Mean of the finite recorded values.
    pub fn mean(&self) -> f64 {
        let finite = self.count - self.overflow;
        if finite == 0 {
            0.0
        } else {
            self.sum / finite as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1) from the bucket counts; the
    /// answer is a bucket lower bound, exact to the ~9 % bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        let in_buckets: u64 = self.buckets.iter().map(|&(_, c)| c).sum();
        let target = ((q.clamp(0.0, 1.0) * in_buckets as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(lower, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return lower;
            }
        }
        self.buckets.last().map_or(0.0, |&(lower, _)| lower)
    }

    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("underflow".into(), Json::Num(self.underflow as f64)),
            ("overflow".into(), Json::Num(self.overflow as f64)),
            ("sum".into(), Json::num_or_null(self.sum)),
            (
                "min".into(),
                if self.count > self.overflow {
                    Json::num_or_null(self.min)
                } else {
                    Json::Null
                },
            ),
            (
                "max".into(),
                if self.count > self.overflow {
                    Json::num_or_null(self.max)
                } else {
                    Json::Null
                },
            ),
            ("mean".into(), Json::num_or_null(self.mean())),
            ("p50".into(), Json::num_or_null(self.quantile(0.5))),
            ("p90".into(), Json::num_or_null(self.quantile(0.9))),
            ("p99".into(), Json::num_or_null(self.quantile(0.99))),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(lower, c)| {
                            Json::Arr(vec![Json::num_or_null(lower), Json::Num(c as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Default)]
struct MetricsRegistry {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

fn metrics_registry() -> &'static Mutex<MetricsRegistry> {
    static REGISTRY: OnceLock<Mutex<MetricsRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(MetricsRegistry::default()))
}

/// The counter registered under `name` (registered on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = metrics_registry().lock().expect("metrics registry");
    Arc::clone(reg.counters.entry(name.to_owned()).or_default())
}

/// The gauge registered under `name` (registered on first use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = metrics_registry().lock().expect("metrics registry");
    Arc::clone(reg.gauges.entry(name.to_owned()).or_default())
}

/// The histogram registered under `name` (registered on first use).
///
/// Hot paths should call this once at setup and keep the `Arc`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = metrics_registry().lock().expect("metrics registry");
    Arc::clone(reg.histograms.entry(name.to_owned()).or_default())
}

/// Convenience single-shot observation (takes the registry lock; fine
/// for cold paths).
pub fn observe(name: &str, v: f64) {
    histogram(name).observe(v);
}

/// Dumps every registered metric as a JSON object
/// (`{"counters": {...}, "gauges": {...}, "histograms": {...}}`).
pub fn dump_json() -> Json {
    let reg = metrics_registry().lock().expect("metrics registry");
    Json::Obj(vec![
        (
            "counters".into(),
            Json::Obj(
                reg.counters
                    .iter()
                    .map(|(k, c)| (k.clone(), Json::Num(c.get() as f64)))
                    .collect(),
            ),
        ),
        (
            "gauges".into(),
            Json::Obj(
                reg.gauges
                    .iter()
                    .map(|(k, g)| (k.clone(), Json::num_or_null(g.get())))
                    .collect(),
            ),
        ),
        (
            "histograms".into(),
            Json::Obj(
                reg.histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), h.summary().to_json()))
                    .collect(),
            ),
        ),
    ])
}

/// Counter, gauge and histogram (name, value) series in registration
/// order — the shape [`snapshot_all`] hands to external renderers.
pub(crate) type MetricsSnapshot = (
    Vec<(String, u64)>,
    Vec<(String, f64)>,
    Vec<(String, HistogramSummary)>,
);

/// Point-in-time copy of every registered metric, for renderers that
/// live outside this module (the registry maps stay private so all
/// registration goes through [`counter`]/[`gauge`]/[`histogram`]).
pub(crate) fn snapshot_all() -> MetricsSnapshot {
    let reg = metrics_registry().lock().expect("metrics registry");
    (
        reg.counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect(),
        reg.gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect(),
        reg.histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect(),
    )
}

/// Zeroes every registered metric (registrations are kept, so cached
/// handles stay valid).
pub fn reset_metrics() {
    let reg = metrics_registry().lock().expect("metrics registry");
    for c in reg.counters.values() {
        c.0.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.values() {
        g.set(0.0);
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn boundary_samples_land_left_closed() {
        // A sample exactly on a bucket boundary opens its own bucket:
        // the bucket's lower bound equals the sample.
        for v in [1.0, 1.25, 1.5, 1.75, 2.0, 0.5, 4.0, 2.5, 1e-30] {
            let idx = bucket_of(v);
            if v == 1e-30 {
                // Not a boundary; just confirm it stays in range.
                assert!((1..N_BUCKETS - 1).contains(&idx));
                continue;
            }
            assert_eq!(bucket_lower(idx), v, "boundary {v} must open its bucket");
            // One ULP below the boundary falls in the bucket below.
            let below = f64::from_bits(v.to_bits() - 1);
            assert_eq!(bucket_of(below), idx - 1, "just below {v}");
        }
    }

    #[test]
    fn out_of_range_values_under_and_overflow() {
        let min = (-128f64).exp2();
        let max = 128f64.exp2();
        assert_eq!(bucket_of(min), 1);
        assert_eq!(bucket_of(f64::from_bits(min.to_bits() - 1)), 0);
        assert_eq!(bucket_of(f64::MIN_POSITIVE), 0); // smallest normal
        assert_eq!(bucket_of(5e-324), 0); // smallest subnormal
        assert_eq!(bucket_of(max), N_BUCKETS - 1);
        assert_eq!(bucket_of(f64::from_bits(max.to_bits() - 1)), N_BUCKETS - 2);
        assert_eq!(bucket_of(f64::MAX), N_BUCKETS - 1);
        let h = Histogram::default();
        h.observe(1e-300); // normal but below 2⁻¹²⁸
        h.observe(5e-324);
        assert_eq!(h.summary().underflow, 2);
        assert!(h.summary().buckets.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2048))]

        /// Every f64 bit pattern routes to a valid bucket, and data
        /// buckets really bracket their samples (the tracked range is
        /// exactly [2⁻¹²⁸, 2¹²⁸)).
        #[test]
        fn bucket_invariants_for_arbitrary_bits(bits in 0u64..u64::MAX) {
            let v = f64::from_bits(bits);
            let idx = bucket_of(v);
            prop_assert!(idx < N_BUCKETS);
            let min = (-128f64).exp2();
            let max = 128f64.exp2();
            if idx == 0 {
                // NaN belongs to the underflow bucket too.
                prop_assert!(v < min || v.is_nan(), "underflowed but v = {v:e}");
            } else if idx == N_BUCKETS - 1 {
                prop_assert!(v >= max, "overflowed but v = {v:e}");
            } else {
                let lower = bucket_lower(idx);
                let upper = bucket_upper(lower);
                prop_assert!(
                    lower <= v && v < upper,
                    "v = {v:e} outside [{lower:e}, {upper:e})"
                );
            }
        }

        /// Exact boundaries land deterministically in the bucket they
        /// open, for every octave and sub-bucket.
        #[test]
        fn boundaries_open_their_bucket(e in 0i64..256, sub in 0i64..4) {
            let lower = (1.0 + sub as f64 / 4.0) * ((e - 128) as f64).exp2();
            let idx = (1 + e * 4 + sub) as usize;
            prop_assert_eq!(bucket_of(lower), idx);
            prop_assert_eq!(bucket_lower(idx), lower);
            let below = f64::from_bits(lower.to_bits() - 1);
            prop_assert_eq!(bucket_of(below), idx - 1);
        }

        /// All subnormals (biased exponent 0) underflow rather than
        /// polluting the bottom octave with out-of-order samples.
        #[test]
        fn subnormals_underflow(mantissa in 1u64..(1u64 << 52)) {
            let v = f64::from_bits(mantissa);
            prop_assert!(v > 0.0 && v < f64::MIN_POSITIVE);
            prop_assert_eq!(bucket_of(v), 0);
        }
    }

    #[test]
    fn bucket_bounds_bracket_values() {
        for v in [1e-12, 3.7e-9, 0.5, 1.0, 1.3, 2.0, 777.0, 1e15] {
            let idx = bucket_of(v);
            let lower = bucket_lower(idx);
            assert!(lower <= v, "lower {lower} !<= v {v}");
            let upper = if idx + 1 < N_BUCKETS - 1 {
                bucket_lower(idx + 1)
            } else {
                f64::INFINITY
            };
            assert!(v < upper, "v {v} !< upper {upper}");
        }
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-1.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(f64::INFINITY), N_BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_and_quantiles() {
        let h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        let p50 = s.quantile(0.5);
        assert!((40.0..=64.0).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!(p99 >= 90.0, "p99 = {p99}");
        assert!(s.to_json().render().contains("\"count\": 100"));
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = Histogram::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        h.observe(1.0 + (i % 10) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert!((h.summary().sum - 4.0 * (1000.0 + 4500.0)).abs() < 1e-6);
    }

    #[test]
    fn registry_roundtrip_and_reset() {
        counter("test.a").add(3);
        gauge("test.g").set(2.5);
        histogram("test.h").observe(1.0);
        assert_eq!(counter("test.a").get(), 3);
        let dump = dump_json();
        let c = dump
            .get("counters")
            .and_then(|c| c.get("test.a"))
            .and_then(Json::as_f64);
        assert_eq!(c, Some(3.0));
        reset_metrics();
        assert_eq!(counter("test.a").get(), 0);
        assert_eq!(histogram("test.h").count(), 0);
    }
}
