//! Observability for the rotsv pipeline.
//!
//! Seven pieces, deliberately dependency-free so every crate in the
//! workspace can use them:
//!
//! - [`mod@span`] — hierarchical span tracing with nanosecond timings and
//!   per-span key/value fields. Thread-local collectors keep the hot
//!   path lock-free; when tracing is disabled a span costs one relaxed
//!   atomic load and no allocation.
//! - [`metrics`] — a process-wide registry of counters, gauges and
//!   log-linear histograms, dumpable as JSON.
//! - [`event`] — a bounded lock-free ring of timestamped events (lane
//!   lifecycle, accepted steps, shallow span open/close) fed live by
//!   the batched Monte-Carlo engine, with drop counting instead of
//!   blocking on overflow.
//! - [`trace`] — a Chrome trace-event exporter over the event ring:
//!   `trace_<id>.json` files loadable in Perfetto, with span slices
//!   and per-lane occupancy tracks.
//! - [`prom`] — Prometheus text exposition over the metrics registry,
//!   on demand ([`prom::render_prometheus`]) or via a periodic flush
//!   thread ([`prom::PrometheusFlusher`]).
//! - [`manifest`] — versioned, machine-readable run manifests
//!   (`results/manifest_<exp>.json`) combining provenance, span
//!   phases, metrics and solver statistics, with a schema validator.
//! - [`digest`] — FNV-1a fingerprints of canonical JSON documents,
//!   used by the campaign ledger and the golden-signature layer.
//!
//! # Quick start
//!
//! ```
//! rotsv_obs::set_tracing(true);
//! {
//!     let _run = rotsv_obs::span!("my_run");
//!     {
//!         let _phase = rotsv_obs::span!("phase_a", "items" = 3);
//!         // ... work ...
//!     }
//! }
//! let report = rotsv_obs::span_report();
//! assert_eq!(report.entries[0].name, "my_run");
//! rotsv_obs::set_tracing(false);
//! rotsv_obs::reset();
//! ```

#![warn(missing_docs)]

pub mod digest;
pub mod event;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod prom;
pub mod span;
pub mod trace;

pub use digest::{fnv1a_64, json_digest};
pub use event::{
    event_ring, events_enabled, record_event, reset_events, set_events, Event, EventKind,
    EventRing, LANE_NONE,
};
pub use json::Json;
pub use manifest::{build_manifest, git_rev, validate_manifest, ManifestInputs, SCHEMA_VERSION};
pub use metrics::{
    counter, dump_json, gauge, histogram, metrics_enabled, reset_metrics, set_metrics, Counter,
    Gauge, Histogram, HistogramSummary,
};
pub use prom::{render_prometheus, write_prometheus, PrometheusFlusher};
pub use span::{
    current_path, reset_spans, set_tracing, span_report, tracing_enabled, FieldAgg, PathId,
    SpanEntry, SpanGuard, SpanReport,
};
pub use trace::{render_chrome_trace, write_chrome_trace};

/// Zeroes all recorded span statistics, all registered metrics, and
/// the event ring. Call between experiment runs so each manifest and
/// trace covers one run only.
pub fn reset() {
    reset_spans();
    reset_metrics();
    reset_events();
}

/// Opens a span and returns its RAII guard; the span closes when the
/// guard drops.
///
/// Forms:
/// - `span!("name")` — a plain span.
/// - `span!("name", "key" = value)` — records `value` (cast to `f64`)
///   under `"key"` on the span.
/// - `span!("name", index)` — shorthand recording `index` under `"i"`,
///   for loop iterations like `span!("mc_sample", i)`.
///
/// The guard must be bound to a local (`let _s = span!(…)`); `let _ =`
/// would drop it immediately and record an empty span.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $key:literal = $val:expr) => {{
        let guard = $crate::span::SpanGuard::enter($name);
        guard.field($key, ($val) as f64);
        guard
    }};
    ($name:expr, $idx:expr) => {{
        let guard = $crate::span::SpanGuard::enter($name);
        guard.field("i", ($idx) as f64);
        guard
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_macro_forms_compile_and_record() {
        // Serialized against other span tests via the shared gate.
        let _g = crate::span::tests_gate();
        crate::set_tracing(true);
        crate::reset();
        {
            let _a = crate::span!("macro_root");
            let _b = crate::span!("macro_kv", "items" = 7);
            drop(_b);
            for i in 0..2 {
                let _c = crate::span!("macro_idx", i);
            }
        }
        let report = crate::span_report();
        crate::set_tracing(false);
        let kv = report
            .entries
            .iter()
            .find(|e| e.path == "macro_root>macro_kv")
            .expect("kv span");
        assert_eq!(kv.fields[0].0, "items");
        assert_eq!(kv.fields[0].1.sum, 7.0);
        let idx = report
            .entries
            .iter()
            .find(|e| e.path == "macro_root>macro_idx")
            .expect("idx span");
        assert_eq!(idx.count, 2);
        assert_eq!(idx.fields[0].0, "i");
        assert_eq!(idx.fields[0].1.sum, 1.0);
    }
}
