//! Chrome trace-event export: renders the event ring as a
//! `trace_<id>.json` timeline loadable in Perfetto (`ui.perfetto.dev`)
//! or `chrome://tracing`.
//!
//! Two synthetic processes structure the view:
//!
//! - **pid 1 "spans"** — one track per recording thread, with a
//!   complete-event (`ph:"X"`) slice for every shallow span open/close
//!   pair mirrored into the ring by the tracer (see
//!   `SPAN_EVENT_MAX_DEPTH` in the span module).
//! - **pid 2 "lanes"** — one track per batched Monte-Carlo lane. Each
//!   seat→retire interval renders as an `mc_sample` slice carrying the
//!   die index, the number of accepted steps and the Newton iterations
//!   spent; pivot-growth re-analyses appear as instant events, and
//!   per-lane 0/1 occupancy counters plus the engine's sampled
//!   `lanes busy` counter make refill gaps visible.
//!
//! Slices still open when the ring was snapshotted (a hung lane, an
//! unclosed span) are emitted to the last seen timestamp and tagged
//! `"unfinished": true` rather than dropped.

use std::io;
use std::path::Path;

use crate::event::{event_ring, Event, EventKind, LANE_NONE};
use crate::json::Json;
use crate::span;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn us(t_ns: u64) -> Json {
    Json::Num(t_ns as f64 / 1e3)
}

const PID_SPANS: f64 = 1.0;
const PID_LANES: f64 = 2.0;

fn meta_process(pid: f64, name: &str) -> Json {
    obj(vec![
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Num(pid)),
        ("tid", Json::Num(0.0)),
        ("args", obj(vec![("name", Json::Str(name.into()))])),
    ])
}

fn meta_thread(pid: f64, tid: u32, name: String) -> Json {
    obj(vec![
        ("name", Json::Str("thread_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Num(pid)),
        ("tid", Json::Num(f64::from(tid))),
        ("args", obj(vec![("name", Json::Str(name))])),
    ])
}

fn slice(
    name: &str,
    cat: &str,
    pid: f64,
    tid: u32,
    t0_ns: u64,
    t1_ns: u64,
    args: Vec<(&str, Json)>,
) -> Json {
    obj(vec![
        ("name", Json::Str(name.into())),
        ("cat", Json::Str(cat.into())),
        ("ph", Json::Str("X".into())),
        ("ts", us(t0_ns)),
        ("dur", us(t1_ns.saturating_sub(t0_ns))),
        ("pid", Json::Num(pid)),
        ("tid", Json::Num(f64::from(tid))),
        ("args", obj(args)),
    ])
}

fn counter(name: String, tid: u32, t_ns: u64, key: &str, value: f64) -> Json {
    obj(vec![
        ("name", Json::Str(name)),
        ("ph", Json::Str("C".into())),
        ("ts", us(t_ns)),
        ("pid", Json::Num(PID_LANES)),
        ("tid", Json::Num(f64::from(tid))),
        ("args", obj(vec![(key, Json::Num(value))])),
    ])
}

/// A lane interval being assembled between a seat/refill and its
/// retire.
struct OpenLane {
    die: u32,
    t0_ns: u64,
    steps: u64,
    newton_iters: u64,
}

fn lane_slice(lane: u32, open: OpenLane, t1_ns: u64, unfinished: bool) -> Json {
    let mut args = vec![
        ("die", Json::Num(f64::from(open.die))),
        ("steps", Json::Num(open.steps as f64)),
        ("newton_iters", Json::Num(open.newton_iters as f64)),
    ];
    if unfinished {
        args.push(("unfinished", Json::Bool(true)));
    }
    slice(
        "mc_sample",
        "lane",
        PID_LANES,
        lane,
        open.t0_ns,
        t1_ns,
        args,
    )
}

/// Renders the current contents of the global event ring as a Chrome
/// trace-event document (`{"traceEvents": [...], ...}`).
///
/// Call after the run of interest, before the next [`crate::reset`];
/// interned span names survive a reset, ring events do not.
pub fn render_chrome_trace() -> Json {
    let mut events: Vec<Event> = event_ring().snapshot();
    // Stable by timestamp: ring claim order breaks ties, so a zero-
    // length span's begin still precedes its end.
    events.sort_by_key(|e| e.t_ns);
    let names = span::path_names();
    let name_of = |id: u32| -> String {
        names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("span#{id}"))
    };
    let last_ns = events.last().map_or(0, |e| e.t_ns);

    let mut out: Vec<Json> = vec![
        meta_process(PID_SPANS, "spans"),
        meta_process(PID_LANES, "lanes"),
    ];
    let mut span_tids: Vec<u32> = Vec::new();
    let mut lanes: Vec<u32> = Vec::new();
    // Per-thread stacks of open (path id, t_ns) span frames.
    let mut span_stacks: std::collections::HashMap<u32, Vec<(u32, u64)>> = Default::default();
    // Per-lane open interval.
    let mut open_lanes: std::collections::HashMap<u32, OpenLane> = Default::default();

    let note_lane = |lanes: &mut Vec<u32>, lane: u32| {
        if !lanes.contains(&lane) {
            lanes.push(lane);
        }
    };

    for e in &events {
        match e.kind {
            EventKind::SpanBegin => {
                if !span_tids.contains(&e.b) {
                    span_tids.push(e.b);
                }
                span_stacks.entry(e.b).or_default().push((e.a, e.t_ns));
            }
            EventKind::SpanEnd => {
                let stack = span_stacks.entry(e.b).or_default();
                // Well-nested per thread by construction; an end whose
                // begin was dropped in overflow finds no frame and is
                // skipped.
                if let Some(pos) = stack.iter().rposition(|&(id, _)| id == e.a) {
                    let (id, t0) = stack.remove(pos);
                    out.push(slice(
                        &name_of(id),
                        "span",
                        PID_SPANS,
                        e.b,
                        t0,
                        e.t_ns,
                        vec![],
                    ));
                }
            }
            EventKind::LaneSeat | EventKind::LaneRefill => {
                note_lane(&mut lanes, e.a);
                if let Some(open) = open_lanes.remove(&e.a) {
                    // Retire was dropped: close the stale interval here.
                    out.push(lane_slice(e.a, open, e.t_ns, true));
                } else {
                    out.push(counter(
                        format!("lane{} busy", e.a),
                        e.a,
                        e.t_ns,
                        "busy",
                        1.0,
                    ));
                }
                open_lanes.insert(
                    e.a,
                    OpenLane {
                        die: e.b,
                        t0_ns: e.t_ns,
                        steps: 0,
                        newton_iters: 0,
                    },
                );
            }
            EventKind::LaneRetire => {
                note_lane(&mut lanes, e.a);
                if let Some(open) = open_lanes.remove(&e.a) {
                    out.push(lane_slice(e.a, open, e.t_ns, false));
                }
                out.push(counter(
                    format!("lane{} busy", e.a),
                    e.a,
                    e.t_ns,
                    "busy",
                    0.0,
                ));
            }
            EventKind::StepAccepted => {
                if e.a != LANE_NONE {
                    if let Some(open) = open_lanes.get_mut(&e.a) {
                        open.steps += 1;
                        open.newton_iters += u64::from(e.b);
                    }
                }
            }
            EventKind::Reanalysis => {
                note_lane(&mut lanes, e.a);
                out.push(obj(vec![
                    ("name", Json::Str("reanalysis".into())),
                    ("cat", Json::Str("lane".into())),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", us(e.t_ns)),
                    ("pid", Json::Num(PID_LANES)),
                    ("tid", Json::Num(f64::from(e.a))),
                    ("args", obj(vec![("analyses", Json::Num(f64::from(e.b)))])),
                ]));
            }
            EventKind::Occupancy => {
                out.push(counter(
                    "lanes busy".into(),
                    0,
                    e.t_ns,
                    "busy",
                    f64::from(e.a),
                ));
            }
        }
    }
    // Close anything still open at the last seen timestamp.
    for (lane, open) in open_lanes {
        out.push(lane_slice(lane, open, last_ns, true));
    }
    for (tid, stack) in span_stacks {
        for (id, t0) in stack.into_iter().rev() {
            let mut s = slice(&name_of(id), "span", PID_SPANS, tid, t0, last_ns, vec![]);
            if let Json::Obj(fields) = &mut s {
                if let Some((_, args)) = fields.iter_mut().find(|(k, _)| k == "args") {
                    *args = obj(vec![("unfinished", Json::Bool(true))]);
                }
            }
            out.push(s);
        }
    }
    span_tids.sort_unstable();
    for tid in span_tids {
        out.push(meta_thread(PID_SPANS, tid, format!("thread {tid}")));
    }
    lanes.sort_unstable();
    for lane in lanes {
        out.push(meta_thread(PID_LANES, lane, format!("lane {lane}")));
    }

    let ring = event_ring();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(out)),
        ("displayTimeUnit".into(), Json::Str("ns".into())),
        (
            "otherData".into(),
            Json::Obj(vec![
                ("ring_events".into(), Json::Num(events.len() as f64)),
                ("ring_dropped".into(), Json::Num(ring.dropped() as f64)),
                ("ring_capacity".into(), Json::Num(ring.capacity() as f64)),
            ]),
        ),
    ])
}

/// Renders the ring as a Chrome trace and writes it to `path`
/// (pretty-printed, trailing newline).
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    let doc = render_chrome_trace();
    std::fs::write(path, doc.render_pretty() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{record_event, reset_events, set_events};
    use crate::span::SpanGuard;

    fn events_named<'a>(doc: &'a Json, name: &str) -> Vec<&'a Json> {
        doc.get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array")
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .collect()
    }

    #[test]
    fn trace_renders_span_slices_and_lane_timeline() {
        let _g = crate::span::tests_gate();
        crate::span::set_tracing(true);
        set_events(true);
        crate::reset();
        {
            let _root = SpanGuard::enter("trace_test");
            let _pop = SpanGuard::enter("mc_population");
            // Lane 0 runs die 0 to completion; lane 1 stays open.
            record_event(EventKind::LaneSeat, 0, 0, 0.0);
            record_event(EventKind::LaneSeat, 1, 1, 0.0);
            record_event(EventKind::StepAccepted, 0, 3, 1e-12);
            record_event(EventKind::StepAccepted, 0, 2, 2e-12);
            record_event(EventKind::Occupancy, 2, 2, 1.0);
            record_event(EventKind::Reanalysis, 0, 1, 0.0);
            record_event(EventKind::LaneRetire, 0, 0, 0.0);
            record_event(EventKind::LaneRefill, 0, 2, 0.0);
        }
        let doc = render_chrome_trace();
        crate::span::set_tracing(false);
        set_events(false);
        reset_events();

        // Round-trips through the JSON parser.
        let parsed = crate::json::parse(&doc.render_pretty()).expect("trace parses");
        let lane_slices = events_named(&parsed, "mc_sample");
        assert!(!lane_slices.is_empty(), "expected mc_sample lane slices");
        let finished = lane_slices
            .iter()
            .find(|s| s.get("args").and_then(|a| a.get("unfinished")).is_none())
            .expect("finished lane slice");
        assert_eq!(
            finished
                .get("args")
                .and_then(|a| a.get("steps"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            finished
                .get("args")
                .and_then(|a| a.get("newton_iters"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        // The still-open refill closes as unfinished.
        assert!(lane_slices
            .iter()
            .any(|s| { s.get("args").and_then(|a| a.get("unfinished")).is_some() }));
        // Span slices for the shallow spans.
        assert_eq!(events_named(&parsed, "trace_test").len(), 1);
        assert_eq!(events_named(&parsed, "mc_population").len(), 1);
        // Counter tracks: per-lane busy plus the sampled global.
        assert!(!events_named(&parsed, "lane0 busy").is_empty());
        assert!(!events_named(&parsed, "lanes busy").is_empty());
        assert!(!events_named(&parsed, "reanalysis").is_empty());
        assert_eq!(
            parsed
                .get("otherData")
                .and_then(|o| o.get("ring_dropped"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn empty_ring_renders_a_valid_document() {
        let _g = crate::span::tests_gate();
        reset_events();
        let doc = render_chrome_trace();
        let parsed = crate::json::parse(&doc.render()).expect("parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("array");
        // Only the two process metadata records.
        assert_eq!(events.len(), 2);
    }
}
