//! FNV-1a hashing for canonical-JSON digests.
//!
//! The golden-signature layer fingerprints rounded ΔT population
//! summaries so a drift anywhere in the solver/RO/measurement chain
//! changes a short committed string. FNV-1a is not cryptographic — it
//! is a fast, dependency-free, stable fingerprint; collisions only
//! matter if an *accidental* drift produces the same 64-bit hash, which
//! the per-metric tolerance comparison would still catch.

use crate::json::Json;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
///
/// # Examples
///
/// ```
/// // Reference vectors from the FNV specification.
/// assert_eq!(rotsv_obs::digest::fnv1a_64(b""), 0xcbf29ce484222325);
/// assert_eq!(rotsv_obs::digest::fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
/// ```
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of a JSON value: FNV-1a over its compact rendering, as a
/// fixed-width lowercase hex string.
///
/// The compact rendering preserves object-key insertion order, so
/// callers must build the document deterministically (sorted points,
/// fixed metric order) for the digest to be meaningful.
pub fn json_digest(doc: &Json) -> String {
    format!("{:016x}", fnv1a_64(doc.render().as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let a = Json::Obj(vec![
            ("x".into(), Json::Num(1.0)),
            ("y".into(), Json::Num(2.0)),
        ]);
        let b = Json::Obj(vec![
            ("y".into(), Json::Num(2.0)),
            ("x".into(), Json::Num(1.0)),
        ]);
        assert_eq!(json_digest(&a), json_digest(&a));
        assert_ne!(json_digest(&a), json_digest(&b));
        assert_eq!(json_digest(&a).len(), 16);
    }
}
