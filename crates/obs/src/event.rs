//! Bounded lock-free event buffer: the timestamped feed behind the live
//! telemetry exports.
//!
//! The span tracer and metrics registry aggregate — they answer "how
//! much time, how many" but not "when". The event buffer records the
//! *when*: each [`Event`] carries a nanosecond timestamp relative to a
//! process-wide epoch, a [`EventKind`], two small integer operands and
//! one `f64` payload. The batched Monte-Carlo engine feeds it per
//! super-iteration (lane seat/retire/refill, accepted steps, pivot
//! re-analyses) and the span tracer mirrors shallow span open/close
//! pairs into it, so [`crate::trace::render_chrome_trace`] can rebuild
//! a timeline after the run.
//!
//! # Concurrency and overflow
//!
//! Recording never blocks and never takes a lock: a writer claims a
//! slot with one `fetch_add` and fills it with relaxed stores, then
//! publishes it with a release store of the ring's generation. The
//! buffer is *bounded*: it keeps the first [`EventRing::capacity`]
//! events after a [`reset_events`] and counts everything past that as
//! dropped ([`EventRing::dropped`]) — a coherent prefix of the run
//! beats a shredded suffix when the goal is inspecting a timeline, and
//! the drop count itself is surfaced as the `mc.ring_dropped_events`
//! metric so silent truncation is impossible.
//!
//! Like tracing and metrics, recording has a process-wide switch
//! ([`set_events`]); when it is off the per-event cost is one relaxed
//! atomic load at instrumentation setup points and nothing per event.
//! [`reset_events`] must not race active recording: call it between
//! runs, after parallel sections have joined (in-flight events from
//! before the reset are discarded via a generation tag).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static EVENTS: AtomicBool = AtomicBool::new(false);

/// Turns event recording on or off process-wide.
///
/// Toggle only between runs; instrumentation sites check the switch
/// once per run, not per event.
pub fn set_events(on: bool) {
    EVENTS.store(on, Ordering::Relaxed);
}

/// `true` when event recording is enabled.
#[inline]
pub fn events_enabled() -> bool {
    EVENTS.load(Ordering::Relaxed)
}

/// Default capacity of the global ring: enough for every fast-fidelity
/// run in the repo with headroom; a full e3 sweep overflows and reports
/// the overflow through [`EventRing::dropped`].
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 18;

/// What an [`Event`] describes. Discriminants are stable: they appear
/// in exported traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A span opened; `a` = interned span path id, `b` = thread id.
    SpanBegin = 0,
    /// A span closed; operands as in [`EventKind::SpanBegin`].
    SpanEnd = 1,
    /// A Monte-Carlo lane was seated with a fresh die at engine start;
    /// `a` = lane, `b` = die index.
    LaneSeat = 2,
    /// A lane finished its die; `a` = lane, `b` = die index.
    LaneRetire = 3,
    /// A lane was refilled with a queued die mid-run; `a` = lane,
    /// `b` = die index.
    LaneRefill = 4,
    /// A transient step was accepted; `a` = lane (or `LANE_NONE` for
    /// the scalar engine), `b` = Newton iterations spent, `value` =
    /// accepted dt in seconds.
    StepAccepted = 5,
    /// Pivot growth invalidated a cached analysis and forced a fresh
    /// symbolic pass; `a` = lane, `b` = analyses performed.
    Reanalysis = 6,
    /// End-of-super-iteration occupancy sample; `a` = busy lanes,
    /// `b` = total lanes, `value` = busy fraction.
    Occupancy = 7,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::SpanBegin,
            1 => EventKind::SpanEnd,
            2 => EventKind::LaneSeat,
            3 => EventKind::LaneRetire,
            4 => EventKind::LaneRefill,
            5 => EventKind::StepAccepted,
            6 => EventKind::Reanalysis,
            7 => EventKind::Occupancy,
            _ => return None,
        })
    }
}

/// Lane operand for events not tied to a batched lane (scalar engine).
pub const LANE_NONE: u32 = OPERAND_MASK;

/// Operands are stored in 28 bits each (values are truncated); plenty
/// for lane, die, path and thread ids.
const OPERAND_MASK: u32 = (1 << 28) - 1;

/// One recorded telemetry event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds since the process-wide epoch (first use of the
    /// telemetry clock).
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First operand (lane, span path id, …) — see [`EventKind`].
    pub a: u32,
    /// Second operand (die, thread id, …) — see [`EventKind`].
    pub b: u32,
    /// Floating-point payload (dt, occupancy fraction, …).
    pub value: f64,
}

/// Nanoseconds since the process-wide telemetry epoch.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Small dense id of the calling thread, for event operands.
pub fn current_tid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

struct Slot {
    t_ns: AtomicU64,
    /// `kind` (8 bits) | `a` (28 bits) | `b` (28 bits).
    meta: AtomicU64,
    value_bits: AtomicU64,
    /// 0 = empty; `generation + 1` = published for that generation.
    ready: AtomicU64,
}

/// The bounded lock-free event buffer (see the module docs for the
/// keep-first-overflow contract).
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Total events offered since the last reset; grows past
    /// `capacity` when events are dropped.
    next: AtomicU64,
    /// Bumped by [`EventRing::reset`] so stale in-flight writes from
    /// before a reset are never published.
    generation: AtomicU64,
}

impl EventRing {
    /// A ring holding at most `capacity` events per run.
    pub fn with_capacity(capacity: usize) -> EventRing {
        EventRing {
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    t_ns: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    value_bits: AtomicU64::new(0),
                    ready: AtomicU64::new(0),
                })
                .collect(),
            next: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Maximum events retained between resets.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event stamped with [`now_ns`]. Never blocks; past
    /// capacity the event is counted as dropped instead.
    pub fn push(&self, kind: EventKind, a: u32, b: u32, value: f64) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() as u64 {
            return; // dropped; `next` keeps the count
        }
        let generation = self.generation.load(Ordering::Acquire);
        let slot = &self.slots[idx as usize];
        slot.t_ns.store(now_ns(), Ordering::Relaxed);
        let meta =
            ((kind as u64) << 56) | (((a & OPERAND_MASK) as u64) << 28) | (b & OPERAND_MASK) as u64;
        slot.meta.store(meta, Ordering::Relaxed);
        slot.value_bits.store(value.to_bits(), Ordering::Relaxed);
        slot.ready.store(generation + 1, Ordering::Release);
    }

    /// Events recorded and retained since the last reset.
    pub fn len(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// `true` when nothing has been recorded since the last reset.
    pub fn is_empty(&self) -> bool {
        self.next.load(Ordering::Relaxed) == 0
    }

    /// Events offered past capacity (and therefore not retained) since
    /// the last reset.
    pub fn dropped(&self) -> u64 {
        self.next
            .load(Ordering::Relaxed)
            .saturating_sub(self.slots.len() as u64)
    }

    /// Copies the retained events out, in recording order. Slots whose
    /// writer has not yet published (or that predate the current
    /// generation) are skipped.
    pub fn snapshot(&self) -> Vec<Event> {
        let generation = self.generation.load(Ordering::Acquire);
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for slot in &self.slots[..n] {
            if slot.ready.load(Ordering::Acquire) != generation + 1 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let Some(kind) = EventKind::from_u8((meta >> 56) as u8) else {
                continue;
            };
            out.push(Event {
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                kind,
                a: ((meta >> 28) as u32) & OPERAND_MASK,
                b: (meta as u32) & OPERAND_MASK,
                value: f64::from_bits(slot.value_bits.load(Ordering::Relaxed)),
            });
        }
        out
    }

    /// Discards all retained events and the drop count. Must not race
    /// active recording (call between runs).
    pub fn reset(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.next.store(0, Ordering::Relaxed);
    }
}

/// The process-wide ring (capacity [`DEFAULT_EVENT_CAPACITY`]),
/// allocated on first use.
pub fn event_ring() -> &'static EventRing {
    static RING: OnceLock<EventRing> = OnceLock::new();
    RING.get_or_init(|| EventRing::with_capacity(DEFAULT_EVENT_CAPACITY))
}

/// Records one event into the global ring when [`events_enabled`];
/// no-op (one relaxed load) otherwise.
#[inline]
pub fn record_event(kind: EventKind, a: u32, b: u32, value: f64) {
    if events_enabled() {
        event_ring().push(kind, a, b, value);
    }
}

/// Clears the global ring (no-op if it was never touched). Part of
/// [`crate::reset`]; must not race active recording.
pub fn reset_events() {
    event_ring().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_snapshot_roundtrip() {
        let ring = EventRing::with_capacity(8);
        ring.push(EventKind::LaneSeat, 2, 5, 0.0);
        ring.push(EventKind::StepAccepted, 2, 3, 1.5e-12);
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::LaneSeat);
        assert_eq!((events[0].a, events[0].b), (2, 5));
        assert_eq!(events[1].kind, EventKind::StepAccepted);
        assert_eq!(events[1].value, 1.5e-12);
        assert!(events[1].t_ns >= events[0].t_ns);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_counts_drops_and_keeps_prefix() {
        let ring = EventRing::with_capacity(4);
        for i in 0..10u32 {
            ring.push(EventKind::Occupancy, i, 4, f64::from(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        // Keep-first: the retained prefix is the oldest events.
        assert_eq!(events[0].a, 0);
        assert_eq!(events[3].a, 3);
        ring.reset();
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.dropped(), 0);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn reset_discards_previous_generation() {
        let ring = EventRing::with_capacity(4);
        ring.push(EventKind::LaneSeat, 0, 0, 0.0);
        ring.reset();
        ring.push(EventKind::LaneRetire, 1, 1, 0.0);
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::LaneRetire);
    }

    #[test]
    fn concurrent_pushes_never_lose_more_than_capacity() {
        let ring = EventRing::with_capacity(64);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..100u32 {
                        ring.push(EventKind::StepAccepted, t, i, 1.0);
                    }
                });
            }
        });
        assert_eq!(ring.len() as u64 + ring.dropped(), 400);
        assert_eq!(ring.snapshot().len(), 64);
    }

    #[test]
    fn operands_truncate_to_28_bits() {
        let ring = EventRing::with_capacity(2);
        ring.push(EventKind::SpanBegin, u32::MAX, u32::MAX, 0.0);
        let e = ring.snapshot()[0];
        assert_eq!(e.a, OPERAND_MASK);
        assert_eq!(e.b, OPERAND_MASK);
    }

    #[test]
    fn disabled_record_event_is_a_noop() {
        // Gated: the switch and ring are process-wide and other gated
        // tests toggle them.
        let _g = crate::span::tests_gate();
        set_events(false);
        assert!(!events_enabled());
        let before = event_ring().len();
        record_event(EventKind::Occupancy, 0, 0, 0.5);
        assert_eq!(event_ring().len(), before);
    }
}
