//! Hierarchical span tracing.
//!
//! A *span* is a named region of execution. Spans nest: opening a span
//! while another is open on the same thread makes it a child, so a run
//! produces a tree of paths like `e3 > mc_population > mc_sample >
//! transient > newton`. Each thread records into a thread-local
//! collector (no locks on the enter/exit path beyond one relaxed atomic
//! load); collectors aggregate by path and flush into the process-wide
//! registry whenever their span stack empties and when the thread exits,
//! so spans recorded inside `std::thread::scope` workers survive the
//! join.
//!
//! When tracing is disabled (the default) the guard is inert: entering
//! and dropping a span costs one relaxed atomic load and no allocation.
//!
//! Spans crossing threads: a worker has no parent span on its own stack,
//! so fan-out code captures [`current_path`] before spawning and opens
//! worker spans with [`SpanGuard::enter_under`], attaching them to the
//! spawning span's path. Aggregated times of such spans sum CPU time
//! across workers and may exceed their parent's wall time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Turns span tracing on or off process-wide.
///
/// Toggle only between runs: spans opened while tracing was off are not
/// retroactively recorded, and spans open across a toggle record nothing.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// `true` when span tracing is enabled.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Opaque identifier of an interned span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathId(u32);

const NO_PARENT: u32 = u32::MAX;

/// Aggregate of one numeric field across all closings of a span path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldAgg {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl FieldAgg {
    fn new(v: f64) -> Self {
        Self {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &FieldAgg) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    fields: Vec<(&'static str, FieldAgg)>,
}

impl SpanStat {
    fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        for (k, agg) in &other.fields {
            match self.fields.iter_mut().find(|(mk, _)| mk == k) {
                Some((_, mine)) => mine.merge(agg),
                None => self.fields.push((k, *agg)),
            }
        }
    }
}

struct PathNode {
    name: String,
    parent: u32,
    /// Nesting depth of the path (0 for roots) — cheap to carry here,
    /// needed on the enter path for the event-mirroring cutoff.
    depth: u32,
}

/// Span paths at most this deep mirror their open/close into the event
/// ring (when events are enabled). Deeper spans — per-iteration solver
/// internals — would flood the ring for no timeline value; their time
/// still aggregates in the registry.
const SPAN_EVENT_MAX_DEPTH: u32 = 2;

struct Registry {
    paths: Vec<PathNode>,
    /// parent id → (name → id)
    index: HashMap<u32, HashMap<String, u32>>,
    stats: Vec<SpanStat>,
}

impl Registry {
    fn intern(&mut self, parent: u32, name: &str) -> (u32, u32) {
        if let Some(&id) = self.index.get(&parent).and_then(|m| m.get(name)) {
            return (id, self.paths[id as usize].depth);
        }
        let id = self.paths.len() as u32;
        let depth = if parent == NO_PARENT {
            0
        } else {
            self.paths[parent as usize].depth + 1
        };
        self.paths.push(PathNode {
            name: name.to_owned(),
            parent,
            depth,
        });
        self.stats.push(SpanStat::default());
        self.index
            .entry(parent)
            .or_default()
            .insert(name.to_owned(), id);
        (id, depth)
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            paths: Vec::new(),
            index: HashMap::new(),
            stats: Vec::new(),
        })
    })
}

struct Frame {
    id: u32,
    start: Instant,
    child_ns: u64,
    fields: Vec<(&'static str, f64)>,
    /// This frame emitted a `SpanBegin` event, so its exit must emit
    /// the matching `SpanEnd` even if events were switched off
    /// mid-span.
    ring: bool,
}

#[derive(Default)]
struct ThreadCollector {
    stack: Vec<Frame>,
    agg: HashMap<u32, SpanStat>,
    /// Local mirror of the global intern table: parent id → name →
    /// (id, depth).
    cache: HashMap<u32, HashMap<String, (u32, u32)>>,
}

impl ThreadCollector {
    fn intern(&mut self, parent: u32, name: &str) -> (u32, u32) {
        if let Some(&hit) = self.cache.get(&parent).and_then(|m| m.get(name)) {
            return hit;
        }
        let hit = registry()
            .lock()
            .expect("span registry")
            .intern(parent, name);
        self.cache
            .entry(parent)
            .or_default()
            .insert(name.to_owned(), hit);
        hit
    }

    fn enter(&mut self, parent: u32, name: &str) -> usize {
        let (id, depth) = self.intern(parent, name);
        let ring = depth <= SPAN_EVENT_MAX_DEPTH && crate::event::events_enabled();
        if ring {
            crate::event::record_event(
                crate::event::EventKind::SpanBegin,
                id,
                crate::event::current_tid(),
                0.0,
            );
        }
        self.stack.push(Frame {
            id,
            start: Instant::now(),
            child_ns: 0,
            fields: Vec::new(),
            ring,
        });
        self.stack.len()
    }

    fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        if frame.ring {
            crate::event::event_ring().push(
                crate::event::EventKind::SpanEnd,
                frame.id,
                crate::event::current_tid(),
                0.0,
            );
        }
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += elapsed;
        }
        let stat = self.agg.entry(frame.id).or_default();
        stat.count += 1;
        stat.total_ns += elapsed;
        stat.self_ns += elapsed.saturating_sub(frame.child_ns);
        for (k, v) in frame.fields {
            match stat.fields.iter_mut().find(|(mk, _)| *mk == k) {
                Some((_, agg)) => agg.add(v),
                None => stat.fields.push((k, FieldAgg::new(v))),
            }
        }
        if self.stack.is_empty() {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.agg.is_empty() {
            return;
        }
        let mut reg = registry().lock().expect("span registry");
        for (id, stat) in self.agg.drain() {
            reg.stats[id as usize].merge(&stat);
        }
    }
}

impl Drop for ThreadCollector {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static COLLECTOR: RefCell<ThreadCollector> = RefCell::new(ThreadCollector::default());
}

/// The path of the innermost span open on this thread, for parenting
/// spans opened on *other* threads via [`SpanGuard::enter_under`].
pub fn current_path() -> Option<PathId> {
    if !tracing_enabled() {
        return None;
    }
    COLLECTOR.with(|c| c.borrow().stack.last().map(|f| PathId(f.id)))
}

/// RAII guard of an open span; the span closes when the guard drops.
///
/// Guards must drop in reverse open order on their thread (the natural
/// behaviour when each guard is held in a local variable).
#[must_use = "a span records its duration when the guard drops"]
pub struct SpanGuard {
    /// Stack depth at enter; 0 marks an inert guard (tracing disabled).
    depth: usize,
}

impl SpanGuard {
    /// Opens a span named `name` under the innermost open span of the
    /// current thread (or at the root when none is open).
    #[inline]
    pub fn enter(name: &str) -> SpanGuard {
        if !tracing_enabled() {
            return SpanGuard { depth: 0 };
        }
        Self::enter_impl(None, name)
    }

    /// Opens a span under an explicit parent path — the bridge for
    /// work fanned out to threads that have no span stack of their own.
    /// `parent = None` opens at the root.
    #[inline]
    pub fn enter_under(parent: Option<PathId>, name: &str) -> SpanGuard {
        if !tracing_enabled() {
            return SpanGuard { depth: 0 };
        }
        Self::enter_impl(parent, name)
    }

    fn enter_impl(parent: Option<PathId>, name: &str) -> SpanGuard {
        COLLECTOR.with(|c| {
            let mut col = c.borrow_mut();
            let parent = match parent {
                Some(PathId(p)) => p,
                None => col.stack.last().map_or(NO_PARENT, |f| f.id),
            };
            let depth = col.enter(parent, name);
            SpanGuard { depth }
        })
    }

    /// Records a key/value field on this span; values aggregate
    /// (count/sum/min/max) across all closings of the same path.
    pub fn field(&self, key: &'static str, value: f64) {
        if self.depth == 0 {
            return;
        }
        COLLECTOR.with(|c| {
            let mut col = c.borrow_mut();
            if let Some(frame) = col.stack.get_mut(self.depth - 1) {
                frame.fields.push((key, value));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == 0 {
            return;
        }
        COLLECTOR.with(|c| c.borrow_mut().exit());
    }
}

/// One aggregated span path in a [`SpanReport`], in depth-first order.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEntry {
    /// Full path, segments joined with `>`.
    pub path: String,
    /// Leaf name (last path segment).
    pub name: String,
    /// Nesting depth: 0 for root spans.
    pub depth: usize,
    /// Times the span closed.
    pub count: u64,
    /// Total time inside the span, seconds (sums across threads for
    /// fanned-out spans).
    pub total_seconds: f64,
    /// Time not attributed to child spans, seconds.
    pub self_seconds: f64,
    /// Aggregated key/value fields.
    pub fields: Vec<(String, FieldAgg)>,
}

/// A snapshot of every span path recorded since the last [`reset_spans`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanReport {
    /// Entries in depth-first pre-order.
    pub entries: Vec<SpanEntry>,
}

impl SpanReport {
    /// Entries at nesting depth `depth`.
    pub fn at_depth(&self, depth: usize) -> impl Iterator<Item = &SpanEntry> {
        self.entries.iter().filter(move |e| e.depth == depth)
    }

    /// Sum of `total_seconds` over root (depth-0) entries.
    pub fn root_seconds(&self) -> f64 {
        self.at_depth(0).map(|e| e.total_seconds).sum()
    }

    /// Renders an indented text tree (for `--trace` output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = write!(
                out,
                "{:indent$}{:<30} {:>9}x  total {:>11.6} s  self {:>11.6} s",
                "",
                e.name,
                e.count,
                e.total_seconds,
                e.self_seconds,
                indent = 2 * e.depth
            );
            for (k, agg) in &e.fields {
                let _ = write!(
                    out,
                    "  {k}: mean {:.3} [{:.3}, {:.3}]",
                    agg.mean(),
                    agg.min,
                    agg.max
                );
            }
            out.push('\n');
        }
        out
    }
}

/// Flushes the calling thread's collector and snapshots the registry as
/// a [`SpanReport`]. Call after the root span has closed; spans still
/// open elsewhere are not included.
pub fn span_report() -> SpanReport {
    COLLECTOR.with(|c| c.borrow_mut().flush());
    let reg = registry().lock().expect("span registry");
    // Depth-first pre-order over ids with any recorded closings.
    let n = reg.paths.len();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (id, node) in reg.paths.iter().enumerate() {
        if node.parent == NO_PARENT {
            roots.push(id as u32);
        } else {
            children[node.parent as usize].push(id as u32);
        }
    }
    let mut entries = Vec::new();
    fn visit(
        id: u32,
        depth: usize,
        prefix: &str,
        reg: &Registry,
        children: &[Vec<u32>],
        entries: &mut Vec<SpanEntry>,
    ) {
        let node = &reg.paths[id as usize];
        let stat = &reg.stats[id as usize];
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix}>{}", node.name)
        };
        if stat.count > 0 {
            entries.push(SpanEntry {
                path: path.clone(),
                name: node.name.clone(),
                depth,
                count: stat.count,
                total_seconds: stat.total_ns as f64 * 1e-9,
                self_seconds: stat.self_ns as f64 * 1e-9,
                fields: stat
                    .fields
                    .iter()
                    .map(|(k, agg)| ((*k).to_owned(), *agg))
                    .collect(),
            });
        }
        for &c in &children[id as usize] {
            visit(c, depth + 1, &path, reg, children, entries);
        }
    }
    for &r in &roots {
        visit(r, 0, "", &reg, &children, &mut entries);
    }
    SpanReport { entries }
}

/// Leaf names of every interned span path, indexed by path id — lets
/// the trace exporter resolve the path ids carried by ring events.
/// Interned paths survive [`reset_spans`], so this works after a run.
pub(crate) fn path_names() -> Vec<String> {
    let reg = registry().lock().expect("span registry");
    reg.paths.iter().map(|p| p.name.clone()).collect()
}

/// Zeroes all recorded span statistics (interned paths are kept).
///
/// Also drops any pending aggregates of the calling thread. Other
/// threads' pending (unflushed) aggregates are *not* cleared; call this
/// between runs, after parallel sections have joined.
pub fn reset_spans() {
    COLLECTOR.with(|c| {
        let mut col = c.borrow_mut();
        col.agg.clear();
    });
    let mut reg = registry().lock().expect("span registry");
    for s in reg.stats.iter_mut() {
        *s = SpanStat::default();
    }
}

/// Serializes tests that touch the process-wide span registry.
#[cfg(test)]
pub(crate) fn tests_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_test() -> std::sync::MutexGuard<'static, ()> {
        tests_gate()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock_test();
        set_tracing(false);
        reset_spans();
        {
            let _s = SpanGuard::enter("ghost");
        }
        assert!(span_report().entries.is_empty());
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let _g = lock_test();
        set_tracing(true);
        reset_spans();
        {
            let _outer = SpanGuard::enter("outer");
            for _ in 0..3 {
                let inner = SpanGuard::enter("inner");
                inner.field("work", 2.0);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let report = span_report();
        set_tracing(false);
        let outer = report
            .entries
            .iter()
            .find(|e| e.path == "outer")
            .expect("outer recorded");
        let inner = report
            .entries
            .iter()
            .find(|e| e.path == "outer>inner")
            .expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        // Children are contained in the parent, and the parent's self
        // time excludes them.
        assert!(inner.total_seconds <= outer.total_seconds);
        assert!(outer.self_seconds <= outer.total_seconds - inner.total_seconds + 1e-6);
        let (k, agg) = &inner.fields[0];
        assert_eq!(k, "work");
        assert_eq!(agg.count, 3);
        assert!((agg.sum - 6.0).abs() < 1e-12);
        assert!(!report.render_text().is_empty());
    }

    #[test]
    fn worker_spans_attach_under_captured_parent() {
        let _g = lock_test();
        set_tracing(true);
        reset_spans();
        {
            let _outer = SpanGuard::enter("fanout");
            let parent = current_path();
            std::thread::scope(|scope| {
                for i in 0..4 {
                    scope.spawn(move || {
                        let s = SpanGuard::enter_under(parent, "worker");
                        s.field("i", i as f64);
                    });
                }
            });
        }
        let report = span_report();
        set_tracing(false);
        let worker = report
            .entries
            .iter()
            .find(|e| e.path == "fanout>worker")
            .expect("worker spans merged at join");
        assert_eq!(worker.count, 4);
        assert_eq!(worker.depth, 1);
        let (_, agg) = &worker.fields[0];
        assert_eq!(agg.count, 4);
        assert!((agg.sum - 6.0).abs() < 1e-12); // 0+1+2+3
    }
}
