//! Minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The repo deliberately has no serde dependency; manifests and bench
//! baselines are small, so a tiny hand-rolled tree is enough. Object
//! keys keep insertion order so emitted manifests are stable and
//! diff-friendly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values must be encoded as `Null`
    /// via [`Json::num_or_null`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// `Num(v)` when `v` is finite, `Null` otherwise (JSON has no
    /// NaN/inf literals).
    pub fn num_or_null(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline, suitable for committed files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Rejects trailing garbage and nesting deeper
/// than 128 levels.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our
                            // manifests; map them to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("e3 \"fast\"\n".into())),
            ("n".into(), Json::Num(42.0)),
            ("pi".into(), Json::Num(3.25)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Arr(vec![])]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&text).expect("parse"), doc);
        }
    }

    #[test]
    fn parses_the_committed_bench_baseline_shape() {
        let text = r#"{"schema": 1, "kernels": [{"name": "lu", "seconds": 0.012}]}"#;
        let doc = parse(text).expect("parse");
        let sec = doc
            .get("kernels")
            .and_then(Json::as_arr)
            .and_then(|k| k[0].get("seconds"))
            .and_then(Json::as_f64);
        assert_eq!(sec, Some(0.012));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "1 2", "nul", "\"abc"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::num_or_null(f64::NAN), Json::Null);
        let mut s = String::new();
        write_num(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }
}
