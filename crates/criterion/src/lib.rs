#![warn(missing_docs)]

//! A self-contained, offline subset of the
//! [criterion](https://docs.rs/criterion) benchmarking API.
//!
//! The build environment of this workspace has no access to crates.io, so
//! the real `criterion` crate cannot be resolved. This shim implements the
//! surface the workspace's benches use — `Criterion::benchmark_group`,
//! `sample_size`, `measurement_time`, `bench_function`, `Bencher::iter`,
//! the `criterion_group!`/`criterion_main!` macros and `black_box` — with
//! a simple warmup-then-sample timing loop printing mean/min/max per
//! iteration.
//!
//! Timing methodology (simpler than real criterion, adequate for the
//! before/after comparisons this repository records): one warmup
//! iteration, then `sample_size` samples, each a single call of the
//! benched closure, reported as mean ± spread.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors `Criterion::default().configure_from_args()`; arguments are
    /// accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs one stand-alone benchmark with default sampling settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: Duration::from_secs(2),
            target_samples: 10,
        };
        f(&mut b);
        report("", &id, &b.samples);
        self
    }
}

/// A group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget (accepted for API compatibility; this harness
    /// always runs exactly one warm-up iteration).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id, &b.samples);
        self
    }

    /// Ends the group (kept for API compatibility; drop does the work).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, collecting up to the group's sample count within the
    /// group's time budget (always at least one timed sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup iteration.
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    if samples.is_empty() {
        println!("  {label}: no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "  {label}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
        samples.len()
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warmup + up to 3 samples.
        assert!(runs >= 2, "ran {runs} times");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
