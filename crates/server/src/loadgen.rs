//! Closed-form load generator for the screening server: submits jobs
//! at a fixed arrival rate over one connection and reports sustained
//! throughput plus verdict-latency percentiles.
//!
//! Latency here is *client-observed*: the wall time from a job's
//! submit to each of its verdict lines arriving back, which includes
//! queueing, engine scheduling, and the socket round trip — the number
//! a wafer-screening floor actually experiences.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rotsv_obs::Json;

use crate::protocol::render_line;

/// What the load generator drives at the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4173`.
    pub addr: String,
    /// Jobs to submit in total.
    pub jobs: usize,
    /// Dies per job.
    pub dies_per_job: usize,
    /// Target interarrival gap between submits.
    pub interarrival: Duration,
    /// Ring sizes cycled across jobs (a topology mix exercises the
    /// group-keyed cache and cross-group scheduling).
    pub n_segments_mix: Vec<usize>,
    /// Supply voltage for every job.
    pub vdd: f64,
    /// Base RNG seed; job `i` uses `seed + i` so populations differ.
    pub seed: u64,
    /// `true` = coarse fast-fidelity benches (the benchmark setting).
    pub fast: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            jobs: 8,
            dies_per_job: 4,
            interarrival: Duration::from_millis(20),
            n_segments_mix: vec![1, 2],
            vdd: 1.1,
            seed: 1007,
            fast: true,
        }
    }
}

/// What a loadgen run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Verdicts received (one per die per voltage).
    pub total_verdicts: usize,
    /// Jobs the server rejected (backpressure).
    pub rejected: usize,
    /// Wall time from first submit to last `done` trailer.
    pub wall_s: f64,
    /// Sustained verdict throughput.
    pub dies_per_s: f64,
    /// Median client-observed verdict latency.
    pub p50_s: f64,
    /// 95th-percentile verdict latency.
    pub p95_s: f64,
    /// 99th-percentile verdict latency.
    pub p99_s: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[pos.min(sorted.len() - 1)]
}

/// Runs the load against a listening server and blocks until every
/// submitted job has finished (or been rejected).
///
/// # Errors
///
/// Socket errors, or a textual error when the server misbehaves
/// (unparsable response line, connection closed mid-run).
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let stream =
        TcpStream::connect(&config.addr).map_err(|e| format!("connect {}: {e}", config.addr))?;
    let reader_stream = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut writer = BufWriter::new(stream);
    let mut reader = BufReader::new(reader_stream);

    let start = Instant::now();
    let mut submitted_at: HashMap<u64, Instant> = HashMap::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut total_verdicts = 0usize;
    let mut rejected = 0usize;
    let mut open_jobs = 0usize;
    let mut line = String::new();

    for i in 0..config.jobs {
        // Responses queue in the socket buffer and the server's
        // unbounded writer channel while we pace submits; they are
        // drained below without risk of backpressure deadlock.
        let due = start + config.interarrival * i as u32;
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            std::thread::sleep((due - now).min(Duration::from_millis(2)));
        }
        let n_segments = config.n_segments_mix[i % config.n_segments_mix.len()];
        let job_id = i as u64;
        submitted_at.insert(job_id, Instant::now());
        open_jobs += 1;
        let req = render_line(vec![
            ("type".into(), Json::Str("submit".into())),
            ("id".into(), Json::Num(job_id as f64)),
            ("n_segments".into(), Json::Num(n_segments as f64)),
            ("dies".into(), Json::Num(config.dies_per_job as f64)),
            ("vdd".into(), Json::Num(config.vdd)),
            ("seed".into(), Json::Num((config.seed + i as u64) as f64)),
            ("fast".into(), Json::Bool(config.fast)),
        ]);
        writeln!(writer, "{req}").map_err(|e| format!("submit: {e}"))?;
        writer.flush().map_err(|e| format!("submit flush: {e}"))?;
    }

    while open_jobs > 0 {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-run".into());
        }
        let doc = rotsv_obs::json::parse(line.trim())
            .map_err(|e| format!("unparsable response {line:?}: {e}"))?;
        let ty = doc.get("type").and_then(Json::as_str).unwrap_or("");
        match ty {
            "verdict" => {
                total_verdicts += 1;
                let id = doc.get("id").and_then(Json::as_f64).unwrap_or(-1.0) as u64;
                if let Some(t0) = submitted_at.get(&id) {
                    latencies.push(t0.elapsed().as_secs_f64());
                }
            }
            "done" => open_jobs -= 1,
            "rejected" => {
                rejected += 1;
                open_jobs -= 1;
            }
            "admitted" | "pong" | "metrics" | "shutting_down" => {}
            "error" => return Err(format!("server error: {}", line.trim())),
            other => return Err(format!("unexpected response type {other:?}")),
        }
    }

    let wall_s = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(LoadgenReport {
        total_verdicts,
        rejected,
        wall_s,
        dies_per_s: if wall_s > 0.0 {
            total_verdicts as f64 / wall_s
        } else {
            0.0
        },
        p50_s: percentile(&latencies, 0.50),
        p95_s: percentile(&latencies, 0.95),
        p99_s: percentile(&latencies, 0.99),
    })
}
