//! The line-delimited JSON wire protocol.
//!
//! One request per line, one JSON object per line back. Requests:
//!
//! ```json
//! {"type": "submit", "id": 1, "n_segments": 2, "dies": 8,
//!  "vdd": [1.1, 0.8], "seed": 1007, "spread": "paper", "fast": true,
//!  "fault": {"kind": "leak", "index": 0, "r": 3000.0},
//!  "under_test": [0]}
//! {"type": "metrics"}
//! {"type": "ping"}
//! {"type": "shutdown"}
//! ```
//!
//! Responses: `admitted`, `rejected`, `verdict` (one per die × V_DD,
//! streamed as dies retire), `done` (with the job's run-manifest
//! trailer), `metrics`, `pong`, `shutting_down`, and `error`. Every
//! response carries the client-chosen `id` verbatim where one applies.

use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv_num::units::Ohms;
use rotsv_obs::Json;

/// Process-variation choice of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpreadSpec {
    /// The paper's 10%/5% inter/intra-die spread.
    Paper,
    /// No variation (every die nominal).
    None,
}

impl SpreadSpec {
    /// The concrete spread handed to [`rotsv::Die::new`].
    pub fn spread(self) -> ProcessSpread {
        match self {
            SpreadSpec::Paper => ProcessSpread::paper(),
            SpreadSpec::None => ProcessSpread::none(),
        }
    }
}

/// Fault hypothesis of a job, applied to one TSV index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Fault-free wafer.
    None,
    /// Resistive open at `index`: break position `x` ∈ (0, 1), series
    /// resistance `r` ohms.
    Open {
        /// TSV index carrying the fault.
        index: usize,
        /// Fractional break position along the TSV.
        x: f64,
        /// Series resistance, ohms.
        r: f64,
    },
    /// Leakage to substrate at `index` through `r` ohms.
    Leak {
        /// TSV index carrying the fault.
        index: usize,
        /// Leakage resistance, ohms.
        r: f64,
    },
}

impl FaultSpec {
    /// The per-segment fault list this hypothesis induces.
    pub fn faults(&self, n_segments: usize) -> Vec<TsvFault> {
        let mut faults = vec![TsvFault::None; n_segments];
        match *self {
            FaultSpec::None => {}
            FaultSpec::Open { index, x, r } => {
                faults[index] = TsvFault::ResistiveOpen { x, r: Ohms(r) };
            }
            FaultSpec::Leak { index, r } => {
                faults[index] = TsvFault::Leakage { r: Ohms(r) };
            }
        }
        faults
    }

    fn key_fragment(&self) -> String {
        match *self {
            FaultSpec::None => "none".into(),
            FaultSpec::Open { index, x, r } => {
                format!("open:{index}:{:016x}:{:016x}", x.to_bits(), r.to_bits())
            }
            FaultSpec::Leak { index, r } => format!("leak:{index}:{:016x}", r.to_bits()),
        }
    }
}

/// A validated wafer-screening job: topology, fault hypothesis, V_DD
/// set, die count.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Segments per ring-oscillator group.
    pub n_segments: usize,
    /// Dies to screen.
    pub dies: usize,
    /// Supply voltages; every die is measured at each.
    pub vdds: Vec<f64>,
    /// Population seed; die `i` derives from `die_seed(seed, i)`.
    pub seed: u64,
    /// Process-variation spread.
    pub spread: SpreadSpec,
    /// `true` → fast measurement fidelity ([`rotsv::TestBench::fast`]).
    pub fast: bool,
    /// Fault hypothesis.
    pub fault: FaultSpec,
    /// TSV indices enabled in run 1.
    pub under_test: Vec<usize>,
}

impl JobSpec {
    /// Measurement units this job expands to (2 runs × dies × V_DDs).
    pub fn unit_count(&self) -> usize {
        2 * self.dies * self.vdds.len()
    }

    /// Verdicts this job will stream (dies × V_DDs).
    pub fn verdict_count(&self) -> usize {
        self.dies * self.vdds.len()
    }

    /// The engine-group key of this job at `vdds[vdd_idx]`: everything
    /// that determines circuit topology and the shared transient spec —
    /// segments, fidelity, fault hypothesis, TSVs under test, and the
    /// exact voltage. Seed, spread and die count are deliberately
    /// excluded: they only move element *values*, so jobs differing in
    /// them interleave in one engine (that is the continuous-batching
    /// win), while per-die trajectories stay bit-identical regardless
    /// of what rides alongside.
    pub fn group_key(&self, vdd_idx: usize) -> String {
        format!(
            "n{};fast{};vdd{:016x};fault{};ut{:?}",
            self.n_segments,
            self.fast,
            self.vdds[vdd_idx].to_bits(),
            self.fault.key_fragment(),
            self.under_test,
        )
    }

    /// Validates ranges; returns a human-readable reason on failure.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_segments == 0 || self.n_segments > 16 {
            return Err(format!(
                "n_segments must be in 1..=16, got {}",
                self.n_segments
            ));
        }
        if self.dies == 0 {
            return Err("dies must be at least 1".into());
        }
        if self.vdds.is_empty() {
            return Err("vdd set must not be empty".into());
        }
        for &v in &self.vdds {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("vdd must be positive and finite, got {v}"));
            }
        }
        if self.under_test.is_empty() {
            return Err("under_test must name at least one TSV".into());
        }
        for &i in &self.under_test {
            if i >= self.n_segments {
                return Err(format!(
                    "under_test index {i} out of range for {} segments",
                    self.n_segments
                ));
            }
        }
        match self.fault {
            FaultSpec::None => {}
            FaultSpec::Open { index, x, r } => {
                if index >= self.n_segments {
                    return Err(format!("fault index {index} out of range"));
                }
                if !(x > 0.0 && x < 1.0) {
                    return Err(format!("open fault position x must be in (0, 1), got {x}"));
                }
                if !(r.is_finite() && r > 0.0) {
                    return Err(format!("fault resistance must be positive, got {r}"));
                }
            }
            FaultSpec::Leak { index, r } => {
                if index >= self.n_segments {
                    return Err(format!("fault index {index} out of range"));
                }
                if !(r.is_finite() && r > 0.0) {
                    return Err(format!("fault resistance must be positive, got {r}"));
                }
            }
        }
        Ok(())
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a screening job; `id` is echoed verbatim in every
    /// response belonging to the job.
    Submit {
        /// Client-chosen correlation id (`Json::Null` when absent).
        id: Json,
        /// The validated job.
        spec: JobSpec,
    },
    /// Ask for a Prometheus text snapshot of the server's metrics.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Begin graceful shutdown: new submits are rejected, admitted
    /// jobs drain, verdicts and manifests flush, then the server exits.
    Shutdown,
}

fn get_usize(doc: &Json, key: &str, default: usize) -> Result<usize, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("'{key}' must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
                return Err(format!("'{key}' must be a non-negative integer, got {n}"));
            }
            Ok(n as usize)
        }
    }
}

fn get_f64(doc: &Json, key: &str, default: f64) -> Result<f64, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("'{key}' must be a number")),
    }
}

fn get_bool(doc: &Json, key: &str, default: bool) -> Result<bool, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("'{key}' must be a boolean")),
    }
}

fn get_index_list(doc: &Json, key: &str, default: Vec<usize>) -> Result<Vec<usize>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("'{key}' entries must be numbers"))?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!("'{key}' entries must be non-negative integers"));
                }
                Ok(n as usize)
            })
            .collect(),
        Some(_) => Err(format!("'{key}' must be an array")),
    }
}

fn parse_fault(doc: &Json) -> Result<FaultSpec, String> {
    let Some(fault) = doc.get("fault") else {
        return Ok(FaultSpec::None);
    };
    if matches!(fault, Json::Null) {
        return Ok(FaultSpec::None);
    }
    let kind = fault
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("'fault.kind' must be a string")?;
    match kind {
        "none" => Ok(FaultSpec::None),
        "open" => Ok(FaultSpec::Open {
            index: get_usize(fault, "index", 0)?,
            x: get_f64(fault, "x", 0.5)?,
            r: get_f64(fault, "r", 3e3)?,
        }),
        "leak" => Ok(FaultSpec::Leak {
            index: get_usize(fault, "index", 0)?,
            r: get_f64(fault, "r", 3e3)?,
        }),
        other => Err(format!(
            "unknown fault kind '{other}' (expected none|open|leak)"
        )),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable reason for malformed JSON, an unknown
/// `type`, or an out-of-range job field; the server answers these with
/// an `error` response without dropping the connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = rotsv_obs::json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let ty = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("request must carry a string 'type'")?;
    match ty {
        "submit" => {
            let vdds = match doc.get("vdd") {
                None | Some(Json::Null) => vec![1.1],
                Some(Json::Num(v)) => vec![*v],
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|v| v.as_f64().ok_or("'vdd' entries must be numbers".to_owned()))
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err("'vdd' must be a number or an array".into()),
            };
            let spread = match doc.get("spread").and_then(Json::as_str) {
                None => SpreadSpec::Paper,
                Some("paper") => SpreadSpec::Paper,
                Some("none") => SpreadSpec::None,
                Some(other) => {
                    return Err(format!("unknown spread '{other}' (expected paper|none)"))
                }
            };
            let n_segments = get_usize(&doc, "n_segments", 1)?;
            let spec = JobSpec {
                n_segments,
                dies: get_usize(&doc, "dies", 1)?,
                vdds,
                seed: get_usize(&doc, "seed", 1007)? as u64,
                spread,
                fast: get_bool(&doc, "fast", true)?,
                fault: parse_fault(&doc)?,
                under_test: get_index_list(&doc, "under_test", vec![0])?,
            };
            spec.validate()?;
            Ok(Request::Submit {
                id: doc.get("id").cloned().unwrap_or(Json::Null),
                spec,
            })
        }
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown request type '{other}' (expected submit|metrics|ping|shutdown)"
        )),
    }
}

/// Renders a response object as one compact NDJSON line (no trailing
/// newline; the writer appends it).
pub fn render_line(members: Vec<(String, Json)>) -> String {
    Json::Obj(members).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_defaults_and_overrides() {
        let req = parse_request(r#"{"type":"submit","dies":3}"#).unwrap();
        let Request::Submit { id, spec } = req else {
            panic!("expected submit")
        };
        assert_eq!(id, Json::Null);
        assert_eq!(spec.dies, 3);
        assert_eq!(spec.n_segments, 1);
        assert_eq!(spec.vdds, vec![1.1]);
        assert_eq!(spec.seed, 1007);
        assert!(spec.fast);
        assert_eq!(spec.fault, FaultSpec::None);
        assert_eq!(spec.under_test, vec![0]);
        assert_eq!(spec.unit_count(), 6);

        let req = parse_request(
            r#"{"type":"submit","id":7,"n_segments":2,"dies":2,"vdd":[1.1,0.8],
                "seed":42,"spread":"none","fast":false,
                "fault":{"kind":"open","index":1,"x":0.25,"r":5000},
                "under_test":[0,1]}"#,
        )
        .unwrap();
        let Request::Submit { id, spec } = req else {
            panic!("expected submit")
        };
        assert_eq!(id, Json::Num(7.0));
        assert_eq!(spec.vdds.len(), 2);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.spread, SpreadSpec::None);
        assert!(!spec.fast);
        assert!(matches!(spec.fault, FaultSpec::Open { index: 1, .. }));
        assert_eq!(spec.unit_count(), 8);
    }

    #[test]
    fn invalid_submits_are_rejected_with_reasons() {
        for (line, needle) in [
            (r#"{"type":"submit","dies":0}"#, "dies"),
            (r#"{"type":"submit","dies":1,"vdd":[]}"#, "vdd"),
            (r#"{"type":"submit","dies":1,"vdd":-0.5}"#, "vdd"),
            (r#"{"type":"submit","dies":1,"under_test":[5]}"#, "range"),
            (
                r#"{"type":"submit","dies":1,"fault":{"kind":"open","x":1.5}}"#,
                "position",
            ),
            (r#"{"type":"nonsense"}"#, "unknown request type"),
            (r#"{"#, "malformed"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "line {line}: {err}");
        }
    }

    #[test]
    fn group_key_ignores_seed_and_spread_but_not_topology() {
        let base = JobSpec {
            n_segments: 2,
            dies: 4,
            vdds: vec![1.1],
            seed: 1,
            spread: SpreadSpec::Paper,
            fast: true,
            fault: FaultSpec::None,
            under_test: vec![0],
        };
        let mut other_seed = base.clone();
        other_seed.seed = 99;
        other_seed.spread = SpreadSpec::None;
        other_seed.dies = 17;
        assert_eq!(base.group_key(0), other_seed.group_key(0));

        let mut other_topo = base.clone();
        other_topo.n_segments = 3;
        assert_ne!(base.group_key(0), other_topo.group_key(0));

        let mut other_fault = base.clone();
        other_fault.fault = FaultSpec::Leak { index: 0, r: 3e3 };
        assert_ne!(base.group_key(0), other_fault.group_key(0));
    }
}
